"""Kernel slices: the units of work a compute lane executes.

Each task type captures the *expensive middle* of one heuristic
operation with everything it needs to run in another process:

* :class:`EvalRound` — one tabu candidate-evaluation round (the middle
  of ``TabuSearch.step`` / the body of ``ParallelEvaluator``);
* :class:`Recount` — a full clique recount of one color class;
* :class:`StepBatch` — a batch of complete tabu steps over migrated
  search state (``TabuSearch.export_state``), the unit ``RealEngine``
  offloads per advance.

Every task has two executors that return **identical** results and op
meters:

* the *reference* executor (``vectorized=False``) runs the same
  pure-Python kernels the inline code paths use today;
* the *vectorized* executor batches all candidate evaluations of a task
  through the numpy level-expansion kernels.

Simulated time is charged from the returned op counts, never from wall
time, so which executor ran (and on which process) is unobservable to
the simulation — that is the compute plane's determinism argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ramsey.graphs import (
    OpCounter,
    _above_masks,
    _count_cliques,
    _count_cliques_np,
    _count_cliques_with_edge_in,
    _expand_bits,
)
from ..ramsey.heuristics import TabuSearch

__all__ = [
    "EvalRound",
    "EvalResult",
    "Recount",
    "RecountResult",
    "StepBatch",
    "StepBatchResult",
    "run_task",
]

#: Masks must fit one machine word for the vectorized executors.
_NP_MAX_K = 63


# -- task & result records --------------------------------------------------
@dataclass(slots=True)
class EvalRound:
    """Evaluate candidate edge flips against one coloring.

    ``red`` is the red adjacency rows (``Coloring.red``); blue rows are
    derived (the coloring invariant makes them redundant on the wire).
    With ``tabu``/``aspiration_below`` set this is the middle of one
    ``TabuSearch`` step; with ``tabu=None`` it is a ``ParallelEvaluator``
    round (pure minimum over all candidates).
    """

    k: int
    n: int
    red: object  # list[int] | uint64 ndarray (shm view)
    edges: list
    tabu: Optional[list] = None
    aspiration_below: int = 0


@dataclass(slots=True)
class EvalResult:
    best_move: Optional[tuple]
    best_delta: int
    ops: int


@dataclass(slots=True)
class Recount:
    """Monochromatic clique count over both color classes."""

    k: int
    n: int
    red: object  # list[int] | uint64 ndarray (shm view)


@dataclass(slots=True)
class RecountResult:
    energy: int
    ops: int


@dataclass(slots=True)
class StepBatch:
    """Run up to ``max_steps`` full tabu steps over migrated state.

    ``state`` is ``TabuSearch.export_state()``; the result carries the
    continued state plus the exact ops charged, which the host adds to
    its own counter (the batch loop stops at the same ops/steps/found
    boundaries ``RealEngine.advance`` checks between inline steps).
    """

    state: dict
    max_steps: int
    ops_budget: Optional[float] = None


@dataclass(slots=True)
class StepBatchResult:
    state: dict
    ops: int
    steps: int


# -- shared helpers ---------------------------------------------------------
def _blue_from_red(k: int, red: list) -> list:
    full = (1 << k) - 1
    return [full & ~red[v] & ~(1 << v) for v in range(k)]


def _select(edges, tabu, margin, deltas) -> tuple[Optional[tuple], int]:
    """The tabu/aspiration filter + first-wins minimum, in draw order
    (the exact back half of the candidate loop in ``TabuSearch.step``)."""
    best: Optional[tuple] = None
    best_delta = 0
    for i, edge in enumerate(edges):
        delta = deltas[i]
        if tabu is not None and tabu[i] and not (delta < margin):
            continue
        if best is None or delta < best_delta:
            best, best_delta = edge, delta
    if best is None:
        return None, 0
    return (int(best[0]), int(best[1])), int(best_delta)


# -- reference executors ----------------------------------------------------
def _eval_round_py(task: EvalRound) -> EvalResult:
    k, n = task.k, task.n
    red = [int(m) for m in task.red]
    blue = _blue_from_red(k, red)
    ops = OpCounter()
    deltas = []
    for u, v in task.edges:
        same, other = (red, blue) if (red[u] >> v) & 1 else (blue, red)
        before = _count_cliques_with_edge_in(same, k, u, v, n, ops)
        after = _count_cliques_with_edge_in(other, k, u, v, n, ops)
        deltas.append(after - before)
    move, delta = _select(task.edges, task.tabu, task.aspiration_below, deltas)
    return EvalResult(move, delta, ops.ops)


def _recount_py(task: Recount) -> RecountResult:
    k, n = task.k, task.n
    red = [int(m) for m in task.red]
    blue = _blue_from_red(k, red)
    ops = OpCounter()
    energy = (_count_cliques(red, k, n, ops)
              + _count_cliques(blue, k, n, ops))
    return RecountResult(energy, ops.ops)


# -- vectorized executors ---------------------------------------------------
def _edge_counts_np(
    red: np.ndarray, blue: np.ndarray, k: int, n: int, jobs: list
) -> tuple[np.ndarray, int]:
    """Batched ``_count_cliques_with_edge_in`` over (color, u, v) jobs.

    Returns ``(counts, ops)`` with per-job clique counts and the exact
    total op meter the reference kernel charges for the same jobs.
    """
    count = len(jobs)
    if count == 0:
        return np.zeros(0, dtype=np.int64), 0
    ms = np.stack([red, blue])
    above = _above_masks(k)
    col = np.array([j[0] for j in jobs])
    uu = np.array([j[1] for j in jobs])
    vv = np.array([j[2] for j in jobs])
    sets = ms[col, uu] & ms[col, vv]  # common neighborhoods, one per job
    counted = 2 * k * count
    if n == 2:
        return np.ones(count, dtype=np.int64), counted
    counted += k * count  # the induced-subgraph build, k once per job
    jidx = np.arange(count)
    if n == 3:
        counted += k * count  # need==1 leaf per job
        return np.bitwise_count(sets).astype(np.int64), counted
    need = n - 2
    while need > 2:  # interior levels: 2k per visited bit
        parent, w = _expand_bits(sets, k)
        counted += 2 * k * len(w)
        sets = sets[parent] & ms[col[jidx[parent]], w] & above[w]
        jidx = jidx[parent]
        need -= 1
    # need == 2: flattened leaf level, 3k per bit + one popcount
    parent, w = _expand_bits(sets, k)
    counted += 3 * k * len(w)
    leaves = sets[parent] & ms[col[jidx[parent]], w] & above[w]
    popcounts = np.bitwise_count(leaves).astype(np.int64)
    counts = np.bincount(
        jidx[parent], weights=popcounts, minlength=count).astype(np.int64)
    return counts, counted


def _eval_round_np(task: EvalRound) -> EvalResult:
    k, n = task.k, task.n
    if not (2 <= n and k <= _NP_MAX_K) or not task.edges:
        return _eval_round_py(task)
    red = np.asarray(task.red, dtype=np.uint64)
    full = np.uint64((1 << k) - 1)
    self_bits = np.uint64(1) << np.arange(k, dtype=np.uint64)
    blue = full & ~red & ~self_bits
    # Two jobs per edge, in the reference order: same color then other.
    jobs = []
    red_py = red  # uint64 indexing below needs ints
    for u, v in task.edges:
        same = 0 if (int(red_py[u]) >> v) & 1 else 1
        jobs.append((same, u, v))
        jobs.append((1 - same, u, v))
    counts, ops = _edge_counts_np(red, blue, k, n, jobs)
    deltas = (counts[1::2] - counts[0::2]).tolist()
    move, delta = _select(task.edges, task.tabu, task.aspiration_below, deltas)
    return EvalResult(move, delta, ops)


def _recount_np(task: Recount) -> RecountResult:
    k, n = task.k, task.n
    if not (2 <= n and k <= _NP_MAX_K):
        return _recount_py(task)
    red = np.asarray(task.red, dtype=np.uint64)
    full = np.uint64((1 << k) - 1)
    self_bits = np.uint64(1) << np.arange(k, dtype=np.uint64)
    blue = full & ~red & ~self_bits
    red_total, red_ops = _count_cliques_np(red, k, n)
    blue_total, blue_ops = _count_cliques_np(blue, k, n)
    return RecountResult(red_total + blue_total, red_ops + blue_ops)


# -- step batches -----------------------------------------------------------
def _run_step_batch(task: StepBatch, vectorized: bool) -> StepBatchResult:
    ops = OpCounter()
    search = TabuSearch.from_state(task.state, ops=ops)
    evaluate = _eval_round_np if vectorized else _eval_round_py
    steps = 0
    while (
        (task.ops_budget is None or ops.ops < task.ops_budget)
        and steps < task.max_steps
        and not search.found
    ):
        round_ = search.prepare_round()
        outcome = evaluate(EvalRound(
            k=round_["k"], n=round_["n"], red=round_["red"],
            edges=round_["edges"], tabu=round_["tabu"],
            aspiration_below=round_["aspiration_below"]))
        search.apply_round(outcome.best_move, outcome.best_delta, outcome.ops)
        steps += 1
    return StepBatchResult(search.export_state(), ops.ops, steps)


# -- dispatch ---------------------------------------------------------------
def run_task(task, vectorized: bool = False):
    """Execute one kernel task; both executors are bit-identical."""
    if isinstance(task, EvalRound):
        return _eval_round_np(task) if vectorized else _eval_round_py(task)
    if isinstance(task, Recount):
        return _recount_np(task) if vectorized else _recount_py(task)
    if isinstance(task, StepBatch):
        return _run_step_batch(task, vectorized)
    raise TypeError(f"unknown kernel task {task!r}")
