"""Compute lanes: where kernel tasks execute.

A :class:`ComputeLane` is the pluggable seam between the simulation's
decision logic and the kernel execution substrate:

* :class:`InlineLane` — today's behavior and the default: tasks run
  synchronously in-process through the reference kernels. Costs one
  ``None`` check when unused.
* :class:`PoolLane` — tasks run on a persistent :class:`KernelPool` of
  forked workers through the vectorized kernels, colorings travel via
  shared memory, and a dead worker degrades to inline execution.

Because both lanes return bit-identical results and op meters, and
simulated time is charged from op counts, which lane ran is invisible
to the simulation — the same seed produces the same counter-examples,
wire bytes, and world metrics either way.

Telemetry is **lane-private**: each lane owns its own
:class:`MetricsRegistry`/:class:`Tracer` (queue depths, per-worker wall
latency, submit→complete spans) rather than writing into the world's
registry, precisely so the world metrics snapshot stays byte-identical
between serial and pooled runs — wall latencies are real time and real
time is nondeterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Protocol

from ..core.telemetry import MetricsRegistry, Tracer
from .kernels import run_task
from .pool import KernelPool

__all__ = ["ComputeLane", "InlineLane", "PoolLane", "make_lane"]


class ComputeLane(Protocol):
    """What the simulation sees of the execution substrate."""

    workers: int

    def run(self, task): ...

    def submit(self, task) -> int: ...

    def collect(self, block: bool = False) -> list[tuple]: ...

    def result(self, ticket: int): ...

    def drain(self) -> list[tuple]: ...

    def close(self) -> None: ...


class InlineLane:
    """Synchronous in-process execution — the reference substrate."""

    workers = 0

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=False)
        self.tasks_run = 0
        self.fallbacks = 0
        self.worker_busy_s: list[float] = []
        self._next_ticket = 0
        self._done: list[tuple] = []

    def run(self, task):
        self.tasks_run += 1
        return run_task(task, vectorized=False)

    def submit(self, task) -> int:
        ticket = self._next_ticket
        self._next_ticket += 1
        self._done.append((ticket, self.run(task)))
        return ticket

    def collect(self, block: bool = False) -> list[tuple]:
        done, self._done = self._done, []
        return done

    def result(self, ticket: int):
        """Take one specific completion, leaving the rest buffered (so
        several components can share the lane without stealing results)."""
        for i, (done_ticket, result) in enumerate(self._done):
            if done_ticket == ticket:
                self._done.pop(i)
                return result
        raise KeyError(f"ticket {ticket} is not pending on this lane")

    def drain(self) -> list[tuple]:
        return self.collect()

    def close(self) -> None:
        pass


class PoolLane:
    """Kernel execution on a worker pool, with lane-private telemetry.

    ``clock`` stamps the submit→complete spans (pass the simulation's
    ``env.now`` to get sim-time spans); worker latency histograms always
    use wall time — that is the quantity being measured.
    """

    def __init__(
        self,
        workers: int,
        arena_slots: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        trace: bool = False,
    ) -> None:
        self.pool = KernelPool(workers, arena_slots=arena_slots)
        self.workers = workers
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=trace)
        self.clock = clock or time.monotonic
        self.tasks_run = 0
        self._spans: dict[int, tuple] = {}  # ticket -> (span, wall_t0)
        self._buffer: list[tuple] = []  # noted completions awaiting collect
        self._submitted = self.metrics.counter("parallel.submitted")
        self._completed = self.metrics.counter("parallel.completed")
        self._fallback_counter = self.metrics.counter("parallel.fallback")

    @property
    def fallbacks(self) -> int:
        return self.pool.fallbacks

    @property
    def worker_busy_s(self) -> list[float]:
        """Per-worker kernel wall seconds, measured inside each worker."""
        return list(self.pool.worker_busy_s)

    # -- submission/collection --------------------------------------------
    def submit(self, task) -> int:
        ticket = self.pool.submit(task)
        self._submitted.inc()
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin("parallel.task", component="lane",
                                     start=self.clock())
            span.args["ticket"] = ticket
        self._spans[ticket] = (span, time.monotonic())
        self._update_depths()
        return ticket

    def collect(self, block: bool = False) -> list[tuple]:
        fresh = self.pool.collect(block=block and not self._buffer)
        self._note_completions(fresh)
        done = self._buffer + fresh
        self._buffer = []
        return done

    def drain(self) -> list[tuple]:
        """Non-blocking harvest — the engine drain hook's entry point."""
        return self.collect(block=False)

    def run(self, task):
        """Submit and wait for this task; completions for other tickets
        are buffered (already accounted) for the next ``collect``."""
        return self.result(self.submit(task))

    def result(self, ticket: int):
        """Wait for one specific completion, buffering the rest (so
        several components can share the lane without stealing results)."""
        for i, (done_ticket, result) in enumerate(self._buffer):
            if done_ticket == ticket:
                self._buffer.pop(i)
                return result
        while True:
            batch = self.pool.collect(block=True)
            if not batch:
                raise KeyError(f"ticket {ticket} is not pending on this lane")
            self._note_completions(batch)
            mine = None
            for done_ticket, result in batch:
                if done_ticket == ticket:
                    mine = (result,)
                else:
                    self._buffer.append((done_ticket, result))
            if mine is not None:
                return mine[0]

    def close(self) -> None:
        self.pool.close()

    # -- bookkeeping -------------------------------------------------------
    def _update_depths(self) -> None:
        for wid, depth in enumerate(self.pool.pending_counts()):
            self.metrics.gauge("parallel.queue_depth", worker=wid).set(depth)

    def _note_completions(self, done: list[tuple]) -> None:
        fallbacks = self.pool.fallbacks
        for ticket, _result in done:
            self.tasks_run += 1
            self._completed.inc()
            span, wall_t0 = self._spans.pop(ticket, (None, None))
            if wall_t0 is not None:
                self.metrics.histogram(
                    "parallel.latency_ms",
                ).observe((time.monotonic() - wall_t0) * 1e3)
            if span is not None:
                self.tracer.finish(span, self.clock())
        new_fallbacks = fallbacks - self._fallback_counter.value
        if new_fallbacks > 0:
            self._fallback_counter.inc(new_fallbacks)
        self._update_depths()


def make_lane(
    workers: int = 0,
    arena_slots: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
    trace: bool = False,
) -> "ComputeLane":
    """``workers <= 0`` → :class:`InlineLane` (the default substrate),
    otherwise a :class:`PoolLane` with that many forked workers."""
    if workers and workers > 0:
        return PoolLane(workers, arena_slots=arena_slots, clock=clock,
                        trace=trace)
    return InlineLane()
