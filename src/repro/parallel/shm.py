"""Shared-memory slots for passing colorings to pool workers.

One ``multiprocessing.shared_memory`` segment, carved into fixed-size
slots of uint64 words. The parent acquires a slot per in-flight task,
writes the adjacency rows into it, and ships only the slot index over
the pipe; workers (forked, so they inherit the mapping — no attach or
re-pickle) read the rows through numpy views and write result rows
back into the same slot. A slot is owned by exactly one in-flight task,
so no locking is needed.

Masks wider than 64 bits (k > 63) don't fit a word row; callers fall
back to inline pickled payloads for those — the arena is a fast path,
never a requirement.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional

import numpy as np

__all__ = ["ShmArena", "ROW_WORDS"]

#: One adjacency row: k <= 63 masks plus headroom, in uint64 words.
ROW_WORDS = 64


class ShmArena:
    """Slot allocator over one shared-memory segment."""

    def __init__(self, slots: int, rows_per_slot: int = 2) -> None:
        if slots <= 0:
            raise ValueError("arena needs at least one slot")
        self.slots = slots
        self.rows_per_slot = rows_per_slot
        self._slot_words = rows_per_slot * ROW_WORDS
        self._shm = shared_memory.SharedMemory(
            create=True, size=slots * self._slot_words * 8)
        self._words = np.ndarray(
            (slots * self._slot_words,), dtype=np.uint64, buffer=self._shm.buf)
        self._free = list(range(slots - 1, -1, -1))
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def free_slots(self) -> int:
        return len(self._free)

    # -- slot lifecycle ----------------------------------------------------
    def acquire(self) -> Optional[int]:
        """Claim a slot, or ``None`` when the arena is full (callers then
        fall back to inline payloads — never block on a slot)."""
        if not self._free:
            return None
        return self._free.pop()

    def release(self, slot: int) -> None:
        self._free.append(slot)

    # -- row access --------------------------------------------------------
    def row(self, slot: int, row: int) -> np.ndarray:
        """Zero-copy uint64 view of one row of a slot."""
        base = slot * self._slot_words + row * ROW_WORDS
        return self._words[base : base + ROW_WORDS]

    def write_row(self, slot: int, row: int, masks) -> None:
        view = self.row(slot, row)
        if isinstance(masks, np.ndarray):
            view[: len(masks)] = masks
        else:
            view[: len(masks)] = [int(m) for m in masks]

    def read_row(self, slot: int, row: int, k: int) -> list[int]:
        """Row as plain python ints (for rebuilding colorings)."""
        return [int(x) for x in self.row(slot, row)[:k]]

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._words = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
