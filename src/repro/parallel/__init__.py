"""The compute plane: kernel offload to real OS processes (§6 scaling).

``kernels`` defines the task slices and their bit-identical reference /
vectorized executors; ``shm`` passes colorings through shared memory;
``pool`` runs a persistent forked worker pool with crash fallback;
``lanes`` is the :class:`ComputeLane` seam the simulation plugs into;
``scaling`` is the throughput/parity harness behind
``benchmarks/bench_parallel.py``.
"""

from .kernels import (
    EvalResult,
    EvalRound,
    Recount,
    RecountResult,
    StepBatch,
    StepBatchResult,
    run_task,
)
from .lanes import ComputeLane, InlineLane, PoolLane, make_lane
from .pool import KernelPool
from .shm import ShmArena

__all__ = [
    "ComputeLane",
    "InlineLane",
    "PoolLane",
    "make_lane",
    "KernelPool",
    "ShmArena",
    "EvalRound",
    "EvalResult",
    "Recount",
    "RecountResult",
    "StepBatch",
    "StepBatchResult",
    "run_task",
]
