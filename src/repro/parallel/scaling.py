"""Scaling harness: tabu kernel throughput by worker count, with parity.

Drives W independent tabu searches through a compute lane in
:class:`StepBatch` slices, keeping every worker busy (one batch in
flight per search, resubmitted on completion), and measures aggregate
moves/s. The parity hash digests the complete final state of every
search — coloring, best coloring, energies, tabu list, RNG position —
so equal hashes across worker counts prove the pooled runs are
bit-identical to the inline one, not merely similar.
"""

from __future__ import annotations

import hashlib
import json
import os
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from ..ramsey.heuristics import TabuSearch
from .kernels import StepBatch
from .lanes import make_lane

__all__ = ["initial_states", "parity_hash", "run_lane", "run_scaling"]


def initial_states(
    searches: int, k: int, n: int, candidates: int, seed: int
) -> list[dict]:
    """One exported start state per search (built once, shared across
    worker counts so every lane replays the identical workload)."""
    return [
        TabuSearch(
            k, n, np.random.default_rng((seed, i)), candidates=candidates
        ).export_state()
        for i in range(searches)
    ]


def parity_hash(states: Sequence[dict]) -> str:
    """Content digest of full search states, independent of completion
    order (searches are independent, so sorting loses nothing)."""
    canon = sorted(
        json.dumps(state, sort_keys=True, default=int) for state in states
    )
    return hashlib.sha256("\n".join(canon).encode()).hexdigest()[:16]


def run_lane(
    lane,
    states: Sequence[dict],
    batches: int,
    steps_per_batch: int,
) -> dict:
    """Run ``batches`` step-batches per search through ``lane``; returns
    throughput plus the parity hash of the final states."""
    current = [dict(s) for s in states]
    remaining = [batches] * len(current)
    inflight: dict[int, int] = {}  # ticket -> search index
    moves = 0
    ops = 0
    t0 = perf_counter()
    for i, state in enumerate(current):
        if remaining[i] > 0:
            remaining[i] -= 1
            inflight[lane.submit(StepBatch(state, steps_per_batch))] = i
    while inflight:
        for ticket, result in lane.collect(block=True):
            i = inflight.pop(ticket)
            current[i] = result.state
            moves += result.steps
            ops += result.ops
            if remaining[i] > 0:
                remaining[i] -= 1
                inflight[lane.submit(
                    StepBatch(result.state, steps_per_batch))] = i
    wall = perf_counter() - t0
    return {
        "moves": moves,
        "ops": ops,
        "wall_s": wall,
        "moves_per_s": moves / wall if wall > 0 else 0.0,
        "parity_hash": parity_hash(current),
        "fallbacks": getattr(lane, "fallbacks", 0),
        # Per-worker kernel wall seconds (measured inside each worker
        # process). Empty for the inline lane — the parent did the work.
        "worker_wall_s": [
            round(s, 6) for s in getattr(lane, "worker_busy_s", [])
        ],
    }


def run_scaling(
    worker_counts: Sequence[int] = (0, 1, 2, 4),
    searches: int = 4,
    k: int = 43,
    n: int = 5,
    candidates: int = 32,
    steps_per_batch: int = 25,
    batches: int = 6,
    seed: int = 0,
    rounds: int = 1,
) -> dict:
    """The full curve: one row per worker count (0 = inline lane).

    ``speedup`` is against the inline row; ``parity_ok`` asserts every
    row reached the identical final states. ``host_cpus`` is recorded
    because the measured speedup composes vectorization (the pool's
    batch kernels) with real cores — on a single-core host the
    vectorization term is what remains.
    """
    base = initial_states(searches, k, n, candidates, seed)
    host_cpus = os.cpu_count() or 1
    rows = []
    for workers in worker_counts:
        best: Optional[dict] = None
        for _ in range(max(rounds, 1)):
            lane = make_lane(workers)
            try:
                outcome = run_lane(lane, base, batches, steps_per_batch)
            finally:
                lane.close()
            if best is None or outcome["moves_per_s"] > best["moves_per_s"]:
                if best is not None and outcome["parity_hash"] != best["parity_hash"]:
                    raise AssertionError("parity hash changed between rounds")
                best = outcome
        row = {"workers": workers, **best}
        if workers > host_cpus:
            # Oversubscribed: workers time-slice the same cores, so the
            # measured speedup understates what real cores would give.
            row["warning"] = (
                f"{workers} workers > {host_cpus} host cpus: "
                f"oversubscribed, speedup is vectorization only")
        rows.append(row)
    inline_rate = next(
        (r["moves_per_s"] for r in rows if r["workers"] == 0),
        rows[0]["moves_per_s"])
    for row in rows:
        row["speedup_vs_inline"] = (
            row["moves_per_s"] / inline_rate if inline_rate else 0.0)
    return {
        "schema": "repro-parallel/1",
        "host_cpus": host_cpus,
        "config": {
            "searches": searches, "k": k, "n": n, "candidates": candidates,
            "steps_per_batch": steps_per_batch, "batches": batches,
            "seed": seed, "rounds": rounds,
        },
        "rows": rows,
        "parity_ok": len({r["parity_hash"] for r in rows}) == 1,
    }
