"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sc98``    run the SC98 scenario and print/export the paper's figures
``ramsey``  run a counter-example search locally (real kernels)
``bench``   compute-plane scaling (``--parallel``) and transport
            (``--net``) benchmarks
``pet``     run the distributed PET reconstruction demo
``trace``   run a scenario with causal tracing on; export Chrome trace
            (``--job ID --from DIR`` walks one job's end-to-end trace
            out of a serve/live run's ``spans.json`` instead)
``metrics`` run a scenario and print/export its metrics snapshot
``live``    run the world as real OS processes on localhost
``serve``   stand up the HTTP/JSON job gateway and storm it with
            synthetic users (``--simulate`` for the deterministic twin)
``explore`` run a model-exploration algorithm (grid sweep or hill
            climber) whose evaluations execute on the grid
            (``--simulate`` for the deterministic twin)
``top``     live dashboard over a running gateway (submissions/s, queue
            depth, per-site utilisation, route latency)
``info``    print version and system inventory

(``live-node`` is internal: the supervisor spawns one per world node.)

Every experiment-shaped command (``sc98``, ``bench``, ``trace``,
``metrics``, ``live``, ``serve``, ``explore``) shares one flag vocabulary —
``--seed``, ``--duration``, ``--out`` — declared once in
:func:`_common_parent` so defaults and help text cannot drift apart.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

__all__ = ["main"]


def _common_parent(
    *,
    seed: int,
    duration: Optional[float] = None,
    duration_help: Optional[str] = None,
    out_help: str = "directory for JSON exports",
) -> argparse.ArgumentParser:
    """One parent parser per experiment command carrying the shared
    ``--seed`` / ``--duration`` / ``--out`` flags (``duration=None``
    omits ``--duration`` for commands without a time axis)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=seed,
                        help=f"deterministic run seed (default {seed})")
    if duration is not None:
        parent.add_argument("--duration", type=float, default=duration,
                            help=duration_help or
                            f"seconds to run (default {duration:g})")
    parent.add_argument("--out", type=str, default=None, help=out_help)
    return parent


def _cmd_sc98(args: argparse.Namespace) -> int:
    from .experiments import (
        SC98Config,
        build_sc98,
        render_fig2,
        render_fig3a,
        render_fig3b,
        render_grid_criteria,
        render_headlines,
    )
    from .experiments.export import write_results

    cfg = SC98Config(
        scale=args.scale,
        seed=args.seed,
        duration=args.duration,
        k=args.k,
        n=args.n,
        engine=args.engine,
        compute_pool=args.compute_pool,
        parallel_des=args.parallel_des,
        max_steps_per_advance=args.max_steps_per_advance,
    )
    world = build_sc98(cfg)
    lane_desc = ""
    if cfg.engine == "real":
        lane_desc = (f", engine real, "
                     f"{'pool=' + str(cfg.compute_pool) if cfg.compute_pool else 'inline lane'}")
    if cfg.parallel_des:
        lane_desc += ", windowed parallel DES"
    print(f"running SC98 scenario (scale {args.scale}, seed {args.seed}"
          f"{lane_desc}) ...")
    t0 = time.time()
    results = world.run()
    print(f"simulated {cfg.duration / 3600:.1f} h in {time.time() - t0:.1f} s\n")
    print(render_headlines(results))
    if args.figures:
        print()
        print(render_fig2(results))
        print()
        print(render_fig3a(results))
        print()
        print(render_fig3b(results))
        print()
        print(render_grid_criteria(results))
    if args.out:
        paths = write_results(results, args.out)
        print("\nwrote: " + ", ".join(paths))
    return 0


def _cmd_ramsey(args: argparse.Namespace) -> int:
    import numpy as np

    from .ramsey import Coloring, OpCounter, is_counter_example, make_search

    ops = OpCounter()
    rng = np.random.default_rng(args.seed)
    search = make_search(args.heuristic, args.k, args.n, rng, ops=ops)
    print(f"searching K_{args.k} for a coloring with no monochromatic "
          f"K_{args.n} ({args.heuristic}, seed {args.seed}) ...")
    t0 = time.time()
    steps = search.run(max_steps=args.steps)
    elapsed = time.time() - t0
    snap = search.snapshot()
    print(f"steps: {steps}, best energy: {snap.best_energy}, "
          f"metered ops: {ops.ops:,} ({ops.ops / max(elapsed, 1e-9):,.0f}/s)")
    if search.found:
        coloring = Coloring.from_hex(args.k, snap.best_coloring)
        verified = is_counter_example(coloring, args.n)
        print(f"counter-example FOUND: R({args.n},{args.n}) > {args.k} "
              f"(independently verified: {verified})")
        print(f"witness (hex edge vector): {snap.best_coloring}")
        return 0
    print("no counter-example within the step budget "
          f"(best energy {snap.best_energy})")
    return 1


def _cmd_bench_net(args: argparse.Namespace) -> int:
    import json

    from .api import run_netbench

    counts = tuple(int(c) for c in args.connections.split(","))
    print(f"transport curves over connection counts {counts} "
          f"({args.net_duration:.1f}s cells) ...")
    report = run_netbench(connection_counts=counts,
                          duration=args.net_duration, payload=0)
    print(f"{'bench':>7} {'mode':>16} {'conns':>6} {'msgs/s':>10} "
          f"{'p50 ms':>8} {'p99 ms':>8} {'speedup':>8}")
    for row in report["rows"]:
        speed = row.get("speedup_vs_blocking")
        print(f"{row['bench']:>7} {row['mode']:>16} "
              f"{row['connections']:>6} {row['msgs_per_s']:>10,.0f} "
              f"{row.get('p50_ms', 0.0):>8.1f} "
              f"{row.get('p99_ms', 0.0):>8.1f} "
              f"{'' if speed is None else f'{speed:.2f}x':>8}")
    print(f"host cpus: {report['host_cpus']}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote: {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    if args.net:
        return _cmd_bench_net(args)
    if not args.parallel:
        print("nothing to do: pass --parallel for the compute-plane "
              "scaling benchmark or --net for the transport benchmark")
        return 2
    from .api import run_scaling

    worker_counts = tuple(int(w) for w in args.workers.split(","))
    print(f"scaling tabu kernel batches over pool sizes {worker_counts} "
          f"(K_{args.k}, n={args.n}, {args.searches} searches, "
          f"{args.candidates} candidates) ...")
    report = run_scaling(
        worker_counts=worker_counts,
        searches=args.searches,
        k=args.k,
        n=args.n,
        candidates=args.candidates,
        steps_per_batch=args.steps_per_batch,
        batches=args.batches,
        seed=args.seed,
        rounds=args.rounds,
    )
    print(f"{'workers':>8} {'moves/s':>12} {'speedup':>8} "
          f"{'parity':>18} {'fallbacks':>9}")
    for row in report["rows"]:
        print(f"{row['workers']:>8} {row['moves_per_s']:>12,.0f} "
              f"{row['speedup_vs_inline']:>7.2f}x "
              f"{row['parity_hash']:>18} {row['fallbacks']:>9}")
        if row.get("warning"):
            print(f"{'':>8} warning: {row['warning']}")
    print(f"parity: {'OK' if report['parity_ok'] else 'MISMATCH'} "
          f"(host cpus: {report['host_cpus']})")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote: {args.out}")
    return 0 if report["parity_ok"] else 1


def _cmd_pet(args: argparse.Namespace) -> int:
    import numpy as np

    from .apps.pet import (
        Accumulator,
        execute_task,
        forward_project,
        image_correlation,
        make_phantom,
        make_tasks,
        task_cost,
    )
    from .apps.runner import run_farm

    angles = [float(a) for a in np.linspace(0, 180, args.angles, endpoint=False)]
    phantom = make_phantom(args.size)
    sino = forward_project(phantom, angles)
    tasks = make_tasks(sino, angles, args.size, chunk=max(args.angles // 8, 1))
    acc = Accumulator(size=args.size)
    print(f"farming {len(tasks)} backprojection tasks over "
          f"{args.workers} workers ...")
    run = run_farm(tasks, execute=execute_task, cost=task_cost,
                   on_result=acc, n_workers=args.workers)
    corr = image_correlation(acc.image, phantom)
    print(f"done in {run.sim_seconds:.0f} simulated seconds; "
          f"phantom correlation {corr:.3f}")
    return 0 if corr > 0.8 else 1


def _run_observed(args: argparse.Namespace, trace: bool):
    """Build and run the scenario named by ``args``; returns
    (report dict, telemetry, engine profiler or None)."""
    profiler = None
    if getattr(args, "profile_engine", False):
        from .simgrid.profile import EngineProfiler

        profiler = EngineProfiler()
    if args.scenario == "observe":
        from .experiments.observe import ObserveConfig, ObserveWorld

        cfg = ObserveConfig(seed=args.seed, duration=args.duration)
        world = ObserveWorld(cfg, trace=trace)
        world.env.profiler = profiler
        report = world.run()
        return report, world.telemetry, profiler
    from .experiments.chaos import ChaosConfig, ChaosWorld
    from .experiments.observe import requeue_chains

    cfg = ChaosConfig(seed=args.seed, duration=args.duration)
    world = ChaosWorld(args.chaos_profile, cfg, trace=trace)
    world.env.profiler = profiler
    report = world.run().to_dict()
    if trace:
        report["requeue_chains"] = requeue_chains(world.telemetry)
    return report, world.telemetry, profiler


def _observed_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scenario", choices=["observe", "chaos"],
                   default="observe")
    p.add_argument("--chaos-profile", default="crash-heavy",
                   help="fault profile when --scenario chaos")
    p.add_argument("--profile-engine", action="store_true",
                   help="profile the event loop and handler latencies")


def _cmd_trace_job(args: argparse.Namespace) -> int:
    """``repro trace --job ID --from DIR``: walk one job's end-to-end
    causal chain out of a recorded run's spans (no scenario run)."""
    from .obs import job_trace, load_spans, render_job_trace

    if not args.from_path:
        print("--job needs --from <run dir or spans.json> "
              "(a `repro serve --out`/`repro live --out` artifact)")
        return 2
    try:
        spans = load_spans(args.from_path)
    except (OSError, ValueError) as exc:
        print(f"cannot load spans from {args.from_path!r}: {exc}")
        return 2
    try:
        trace = job_trace(spans, args.job)
    except KeyError:
        print(f"no spans for job {args.job!r} in {args.from_path}")
        return 1
    print(render_job_trace(trace))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import os

    from .core.telemetry import render_timeline, write_metrics_json, write_trace_json

    from .experiments.report import render_trace_summary

    if args.job:
        return _cmd_trace_job(args)
    report, telemetry, profiler = _run_observed(args, trace=True)
    chains = report.get("requeue_chains", [])
    print(render_trace_summary(telemetry))
    print(f"\n{len(chains)} fault->requeue chain(s)")
    for chain in chains:
        print(f"  unit {chain['unit_id']} on {chain['client']}: "
              f"{' <- '.join(chain['faults']) or 'no fault linked'} -> "
              f"{len(chain['drops'])} drop(s) -> {chain['retransmits']} "
              f"retransmit(s) -> {chain['call']} {chain['call_outcome']} "
              f"-> requeued at t={chain['requeued_at']:.1f}s")
    if args.timeline:
        print()
        print(render_timeline(telemetry, limit=args.timeline))
    if profiler is not None:
        print()
        print(profiler.render())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        # The profiler lane is wall-clock and only present under
        # --profile-engine, so default exports stay byte-diffable.
        extra = profiler.chrome_events() if profiler is not None else None
        paths = [
            write_trace_json(telemetry, os.path.join(args.out, "trace.json"),
                             extra_events=extra),
            write_metrics_json(telemetry, os.path.join(args.out, "metrics.json")),
        ]
        report_path = os.path.join(args.out, "report.json")
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        paths.append(report_path)
        print("\nwrote: " + ", ".join(paths))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import os

    from .core.telemetry import write_metrics_json

    report, telemetry, profiler = _run_observed(args, trace=False)
    snapshot = telemetry.snapshot()
    print(json.dumps(snapshot, indent=1, sort_keys=True))
    if profiler is not None:
        print()
        print(profiler.render())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = write_metrics_json(telemetry, os.path.join(args.out, "metrics.json"))
        print(f"\nwrote: {path}")
    return 0


def _cmd_pool(args: argparse.Namespace) -> int:
    import json

    from .experiments.bigpool import (build_pool, churn_plan, export_state,
                                      gossip_rollup, inject_write,
                                      run_until_converged)

    config_kw = dict(n_hosts=args.hosts, n_sites=args.sites,
                     n_records=args.records, seed=args.seed)
    if args.window:
        config_kw["window"] = args.window
    pool = build_pool(**config_kw)
    if args.churn:
        churn_plan(pool.config).install(pool.env, pool.network)
    pool.run(until=args.warm)
    inject_write(pool)
    result = run_until_converged(pool, deadline=args.deadline)
    rollup = gossip_rollup(pool.servers)
    if args.json:
        doc = export_state(pool)
        doc["convergence"] = result
        doc["rollup"] = rollup
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(f"pool: {args.hosts} hosts / {args.sites} sites / "
              f"{args.records} records (seed {args.seed}"
              f"{', churn' if args.churn else ''})")
        print(f"converged: {result['converged']} after "
              f"{result['rounds']:.0f} rounds ({result['time']:.1f}s sim)")
        print(f"digest rounds: {rollup['digest_rounds']:,}  "
              f"delta records: {rollup['delta_records']:,}")
        print(f"sync bytes: {rollup['bytes_sent']:,}  "
              f"saved vs full-sync: {rollup['bytes_saved']:,}")
        print(f"suspicion transitions: {rollup['suspicion']}  "
              f"evictions: {rollup['evictions']}")
    if args.gateway:
        from .control.client import GatewayClient

        with GatewayClient(args.gateway) as client:
            client.publish_gossip(rollup)
        print(f"published rollup to {args.gateway}")
    return 0 if result["converged"] else 1


def _cmd_live(args: argparse.Namespace) -> int:
    from .experiments.report import render_live_summary
    from .live import run_live, sc98_topology

    topology = sc98_topology(
        clients=args.clients,
        gossips=args.gossips,
        schedulers=args.schedulers,
        persistents=args.persistents,
        loggers=args.loggers,
        k=args.k,
        n=args.n,
        speed=args.speed,
        seed=args.seed,
    )
    kill_at = args.kill_at if args.kill_at and args.kill_at > 0 else None
    print(f"standing up {len(topology.nodes)} node processes on localhost "
          f"for {args.duration:.0f}s wall "
          f"{'(chaos: kill at t=%.1fs)' % kill_at if kill_at else ''}...")
    report = run_live(
        topology,
        duration=args.duration,
        kill_at=kill_at,
        kill_node=args.kill_node,
        out=args.out,
        progress=lambda text: print(f"  {text}"),
    )
    print()
    print(render_live_summary(report.to_dict()))
    if report.artifacts:
        print("\nwrote: " + ", ".join(
            report.artifacts[k] for k in sorted(report.artifacts)))
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import os

    kill_at = args.kill_at if args.kill_at and args.kill_at > 0 else None
    if args.simulate:
        from .control import run_sim_serve

        print(f"simulated twin: {args.storm} job users, {args.clients} "
              f"workers, {args.duration:.0f}s simulated"
              + (f" (gateway restart at t={kill_at:.1f}s)" if kill_at else "")
              + " ...")
        report = run_sim_serve(
            seed=args.seed, users=args.storm, workers=args.clients,
            duration=args.duration, restart_after=kill_at)
        gw = report["gateway"]
        print(f"requests: {gw['requests']}, accepted: "
              f"{report['accepted_total']}, lost: "
              f"{len(report['jobs_lost'])}, restarts: {gw['restarts']} "
              f"(requeued {gw['requeued_on_restart']})")
        for violation in report["violations"]:
            print(f"VIOLATION: {violation}")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "serve_sim.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote: {path}")
        return 0 if not report["violations"] else 1

    from .control import ServeConfig, run_serve

    config = ServeConfig(
        clients=args.clients, gateways=args.gateways,
        storm_clients=args.storm, duration=args.duration,
        kill_at=kill_at, kill_node=args.kill_node,
        churn_every=args.churn_every, seed=args.seed,
        k=args.k, n=args.n,
        cancel_fraction=args.cancel_fraction)
    kill_target = args.kill_node or "the gateway"
    print(f"standing up {args.gateways} gateway(s) + {args.clients} "
          f"client(s) and storming with {args.storm} HTTP users for "
          f"{args.duration:.0f}s wall"
          + (f" (chaos: kill {kill_target} at t={kill_at:.1f}s)"
             if kill_at else "")
          + " ...")
    report = run_serve(config, out=args.out,
                       progress=lambda text: print(f"  {text}"))
    storm = report.storm
    print(f"\nstorm: {storm['submitted']} submitted, {storm['queried']} "
          f"queried, {storm['cancelled']} cancelled, "
          f"{storm['rejected']} rejected, {storm['errors']} errors")
    states = ", ".join(f"{state}={count}" for state, count
                       in sorted(report.job_states.items()))
    print(f"jobs: {report.accepted} accepted, "
          f"{len(report.jobs_lost)} lost ({states or 'no states'})")
    for violation in report.violations:
        print(f"VIOLATION: {violation}")
    if not report.violations:
        print("invariants: OK (no accepted job lost)")
    if report.artifacts:
        print("wrote: " + ", ".join(
            report.artifacts[k] for k in sorted(report.artifacts)))
    return 0 if report.ok else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    import json
    import os

    kill_at = args.kill_at if args.kill_at and args.kill_at > 0 else None
    if args.simulate:
        from .explore import run_sim_explore

        ops_budget = args.ops_budget or 20_000.0
        print(f"simulated twin: {args.algo!r} over fn={args.fn!r}, "
              f"{args.clients} workers, {args.duration:.0f}s simulated"
              + (f" (gateway restart at t={kill_at:.1f}s)" if kill_at else "")
              + (f" ({args.corrupt_first} corrupted result(s))"
                 if args.corrupt_first else "")
              + " ...")
        report = run_sim_explore(
            seed=args.seed, algo=args.algo, fn=args.fn,
            workers=args.clients, duration=args.duration,
            scale=args.scale, ops_budget=ops_budget,
            restart_after=kill_at, corrupt_first=args.corrupt_first)
        driver = report["driver"]
        work = report["gateway"]["work"]
        print(f"ME: {driver['evals']} evaluations consumed, "
              f"best={driver.get('best')}")
        print(f"work queue: {work['completed']} completed, "
              f"{work['requeued']} requeued, "
              f"{work['results_rejected']} results rejected, "
              f"{report['gateway']['restarts']} gateway restart(s)")
        for violation in report["violations"]:
            print(f"VIOLATION: {violation}")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "explore_sim.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote: {path}")
        return 0 if not report["violations"] else 1

    from .explore import ExploreConfig, run_explore

    config = ExploreConfig(
        algo=args.algo, fn=args.fn, clients=args.clients,
        duration=args.duration, scale=args.scale,
        ops_budget=args.ops_budget or 75_000.0,
        kill_at=kill_at, kill_node=args.kill_node,
        batch=args.batch, seed=args.seed)
    print(f"standing up the grid and running {args.algo!r} over "
          f"fn={args.fn!r} for up to {args.duration:.0f}s wall"
          + (f" (chaos: kill at t={kill_at:.1f}s)" if kill_at else "")
          + " ...")
    report = run_explore(config, out=args.out,
                         progress=lambda text: print(f"  {text}"))
    summary = report["summary"]
    jobs = report["jobs"]
    print(f"\nME: {summary['evals']} evaluations consumed in "
          f"{summary['elapsed']:.1f}s, best={summary.get('best')}")
    print(f"jobs: {jobs['pushed']} pushed, {jobs['done']} done, "
          f"{jobs['requeues_total']} requeue(s); queue p99 "
          f"{report['queue']['pop_p99_ms']} ms")
    for violation in report["violations"]:
        print(f"VIOLATION: {violation}")
    if not report["violations"]:
        print("invariants: OK (every evaluation done exactly once)")
    if report.get("artifacts"):
        print("wrote: " + ", ".join(
            report["artifacts"][k] for k in sorted(report["artifacts"])))
    return 0 if report["ok"] else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs import run_top

    return run_top(args.contact, interval=args.interval,
                   duration=args.duration, once=args.once)


def _cmd_live_node(args: argparse.Namespace) -> int:
    from .live import run_node

    return run_node(args.manifest, args.node, deadline=args.deadline,
                    incarnation=args.incarnation)


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    if getattr(args, "api", False):
        import json

        from . import api

        print(json.dumps(api.surface(), indent=1, sort_keys=True))
        return 0
    print(f"repro {repro.__version__} — EveryWare (SC'99) reproduction")
    print(__doc__)
    inventory = [
        ("repro.core.linguafranca", "typed packet messaging, TCP + sim transports"),
        ("repro.core.forecasting", "NWS forecaster bank, dynamic benchmarking, sensors"),
        ("repro.core.gossip", "state exchange pool + clique protocol"),
        ("repro.core.services", "schedulers, persistent state, logging, task farm"),
        ("repro.simgrid", "deterministic discrete-event Grid substrate"),
        ("repro.infra", "the seven SC98 infrastructure adapters"),
        ("repro.ramsey", "the Ramsey Number Search application"),
        ("repro.apps", "PET reconstruction + G-Net data mining"),
        ("repro.experiments", "SC98 scenario + figure regeneration"),
        ("repro.live", "live deployment plane: real processes on localhost"),
        ("repro.control", "workload control plane: HTTP/JSON job gateway"),
        ("repro.obs", "observability plane: job tracing, flight recorder, "
                      "Prometheus exposition, repro top"),
        ("repro.explore", "model exploration: EMEWS-style task queue + "
                          "ME algorithms"),
    ]
    for module, blurb in inventory:
        print(f"  {module:<28} {blurb}")
    from .live.topology import ROLES

    print("\nlive-plane entrypoints:")
    print(f"  {'repro live':<28} stand up, supervise, and report a world")
    print(f"  {'repro serve':<28} gateway world + synthetic HTTP storm")
    print(f"  {'repro explore':<28} ME algorithm driving grid evaluations")
    print(f"  {'repro live-node':<28} one node process "
          "(spawned by the supervisor)")
    print("  node roles: " + ", ".join(ROLES))

    from . import explore as _explore  # noqa: F401  (registers kinds)
    from .core.services.kinds import registry

    print("\napp kinds (client-side execution registry):")
    for name in registry.names():
        print(f"  {name:<28} {registry.get(name).description}")
    print("\napi surface: repro info --api (layered; see repro.api)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "sc98", help="run the SC98 scenario",
        parents=[_common_parent(
            seed=1998, duration=12 * 3600.0,
            duration_help="simulated seconds (default: the paper's 12 h)",
            out_help="directory for CSV/JSON exports")])
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--k", type=int, default=43,
                   help="Ramsey search target K_k (default 43, the R(5,5) run)")
    p.add_argument("--n", type=int, default=5,
                   help="forbidden monochromatic clique size")
    p.add_argument("--engine", choices=["model", "real"], default="model",
                   help="client compute engine: cost-model or real kernels")
    p.add_argument("--compute-pool", type=int, default=0, metavar="N",
                   help="offload real-engine kernels to N pool workers "
                        "(0 = inline lane; results are bit-identical)")
    p.add_argument("--parallel-des", action="store_true",
                   help="conservative parallel DES: site-partitioned "
                        "windowed execution with compute-lane barriers "
                        "(byte-identical outcomes to the serial run)")
    p.add_argument("--max-steps-per-advance", type=int, default=2000,
                   help="real-engine step cap per advance (smoke runs)")
    p.add_argument("--figures", action="store_true",
                   help="print the full figure tables")
    p.set_defaults(func=_cmd_sc98)

    p = sub.add_parser(
        "bench", help="run micro/scaling benchmarks",
        parents=[_common_parent(
            seed=0, out_help="write the benchmark report JSON here")])
    p.add_argument("--parallel", action="store_true",
                   help="run the compute-plane scaling benchmark")
    p.add_argument("--net", action="store_true",
                   help="run the transport benchmark (echo storms and "
                        "send fan-out, blocking stack vs async reactor)")
    p.add_argument("--connections", type=str, default="64,256,1000",
                   help="comma-separated connection counts (--net)")
    p.add_argument("--net-duration", type=float, default=2.0,
                   help="measured seconds per transport cell (--net)")
    p.add_argument("--workers", type=str, default="0,1,2,4",
                   help="comma-separated pool sizes (0 = inline lane)")
    p.add_argument("--searches", type=int, default=4)
    p.add_argument("--k", type=int, default=43)
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--candidates", type=int, default=64)
    p.add_argument("--steps-per-batch", type=int, default=25)
    p.add_argument("--batches", type=int, default=4)
    p.add_argument("--rounds", type=int, default=2,
                   help="best-of rounds per worker count")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("ramsey", help="run a local counter-example search")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--heuristic", choices=["tabu", "anneal", "minconflict"],
                   default="tabu")
    p.add_argument("--steps", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_ramsey)

    p = sub.add_parser("pet", help="distributed PET reconstruction demo")
    p.add_argument("--size", type=int, default=48)
    p.add_argument("--angles", type=int, default=36)
    p.add_argument("--workers", type=int, default=4)
    p.set_defaults(func=_cmd_pet)

    observed_parent = dict(
        seed=7, duration=420.0,
        duration_help="simulated seconds (default 420)",
        out_help="directory for trace/metrics JSON exports")
    p = sub.add_parser("trace", help="run a traced scenario; export Chrome trace",
                       parents=[_common_parent(**observed_parent)])
    _observed_arguments(p)
    p.add_argument("--timeline", type=int, nargs="?", const=200, default=0,
                   help="print a text timeline (optionally: max lines)")
    p.add_argument("--job", type=str, default=None, metavar="ID",
                   help="walk one job's end-to-end trace out of a "
                        "recorded run (requires --from) instead of "
                        "running a scenario")
    p.add_argument("--from", dest="from_path", type=str, default=None,
                   metavar="PATH",
                   help="run directory (or spans.json) holding the "
                        "recorded spans for --job")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("metrics", help="run a scenario; print metrics snapshot",
                       parents=[_common_parent(**observed_parent)])
    _observed_arguments(p)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "pool",
        help="build a 1k-10k host gossip pool; inject a write, converge")
    p.add_argument("--hosts", type=int, default=1024,
                   help="pool size (default 1024)")
    p.add_argument("--sites", type=int, default=16)
    p.add_argument("--records", type=int, default=32,
                   help="pre-seeded shared state records")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--warm", type=float, default=30.0, metavar="S",
                   help="sim seconds to run before injecting the write")
    p.add_argument("--deadline", type=float, default=2000.0, metavar="S",
                   help="sim-time budget for convergence")
    p.add_argument("--window", type=float, default=0.0, metavar="S",
                   help="use the windowed parallel engine with this window")
    p.add_argument("--churn", action="store_true",
                   help="install the deterministic churn plan "
                        "(crashes + a healed partition)")
    p.add_argument("--json", action="store_true",
                   help="print the full deterministic state export")
    p.add_argument("--gateway", metavar="HOST:PORT",
                   help="publish the rollup to a live gateway's "
                        "POST /telemetry/gossip")
    p.set_defaults(func=_cmd_pool)

    p = sub.add_parser(
        "live", help="run the world as real processes on localhost",
        parents=[_common_parent(
            seed=0, duration=12.0,
            duration_help="wall seconds to run the world",
            out_help="directory for manifest, node logs, merged "
                     "report/metrics/trace JSON")])
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--gossips", type=int, default=2)
    p.add_argument("--schedulers", type=int, default=1)
    p.add_argument("--persistents", type=int, default=1)
    p.add_argument("--loggers", type=int, default=1)
    p.add_argument("--k", type=int, default=8,
                   help="Ramsey target K_k (small: live runs measure the "
                        "deployment plane, not the search)")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--speed", type=float, default=300_000.0,
                   help="per-client compute budget, ops per wall second")
    p.add_argument("--kill-at", type=float, default=0.0, metavar="T",
                   help="chaos: SIGKILL a node T seconds in (0 = off)")
    p.add_argument("--kill-node", type=str, default=None,
                   help="which node --kill-at kills (default: first client)")
    p.set_defaults(func=_cmd_live)

    p = sub.add_parser(
        "serve", help="stand up the HTTP job gateway and storm it",
        parents=[_common_parent(
            seed=0, duration=10.0,
            duration_help="wall seconds of storm (simulated seconds "
                          "with --simulate)",
            out_help="directory for manifest, node logs, and the serve "
                     "report JSON")])
    p.add_argument("--clients", type=int, default=2,
                   help="Ramsey client nodes executing submitted jobs")
    p.add_argument("--gateways", type=int, default=1)
    p.add_argument("--storm", type=int, default=50, metavar="N",
                   help="concurrent synthetic HTTP users")
    p.add_argument("--churn-every", type=int, default=0, metavar="K",
                   help="storm connections reconnect after K responses "
                        "(0 = keep-alive throughout)")
    p.add_argument("--kill-at", type=float, default=0.0, metavar="T",
                   help="chaos: SIGKILL the gateway T seconds in (0 = off); "
                        "with --simulate, a deterministic in-sim restart")
    p.add_argument("--k", type=int, default=8,
                   help="Ramsey target K_k for submitted job specs")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--kill-node", type=str, default=None,
                   help="which node --kill-at kills (default: the first "
                        "gateway; kill a client to watch one job's trace "
                        "span two incarnations)")
    p.add_argument("--cancel-fraction", type=float, default=0.1,
                   metavar="F",
                   help="fraction of storm turns that cancel a job "
                        "(0 with --kill-node: a cancelled in-flight job "
                        "is dropped on requeue, which would make the "
                        "two-incarnation trace demo nondeterministic)")
    p.add_argument("--simulate", action="store_true",
                   help="run the deterministic simulated twin instead of "
                        "real processes")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "explore", help="run a model-exploration algorithm over the grid",
        parents=[_common_parent(
            seed=0, duration=60.0,
            duration_help="wall seconds for the ME pump (simulated "
                          "seconds with --simulate)",
            out_help="directory for manifest, node logs, and the "
                     "explore report JSON")])
    p.add_argument("--algo", choices=["sweep", "hill"], default="sweep",
                   help="ME algorithm: deterministic grid sweep or "
                        "iterative hill climber (default sweep)")
    p.add_argument("--fn", choices=["sphere", "rastrigin", "forecast"],
                   default="forecast",
                   help="black-box objective to explore (default forecast)")
    p.add_argument("--clients", type=int, default=2,
                   help="computational clients executing evaluations "
                        "(sim workers with --simulate)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale factor (grid density / "
                        "generations)")
    p.add_argument("--ops-budget", type=float, default=0.0,
                   help="simulated ops per evaluation (0 = plane "
                        "default: 75k live, 20k sim)")
    p.add_argument("--kill-at", type=float, default=0.0, metavar="T",
                   help="chaos: SIGKILL a client T seconds in (0 = off); "
                        "with --simulate, a deterministic in-sim "
                        "gateway restart")
    p.add_argument("--kill-node", type=str, default=None,
                   help="which node --kill-at kills (default: first "
                        "client)")
    p.add_argument("--corrupt-first", type=int, default=0, metavar="N",
                   help="--simulate only: worker 0 corrupts its first N "
                        "results (exercises the §3.1 result check)")
    p.add_argument("--no-batch", dest="batch", action="store_false",
                   help="submit one POST /jobs per task instead of "
                        "POST /jobs/batch")
    p.add_argument("--simulate", action="store_true",
                   help="run the deterministic simulated twin instead of "
                        "real processes")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "top", help="live dashboard over a running gateway")
    p.add_argument("contact", type=str,
                   help="gateway HTTP contact, host:port")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period, seconds (default 1.0)")
    p.add_argument("--duration", type=float, default=None,
                   help="stop after this many seconds (default: run "
                        "until interrupted)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (no screen clearing)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("live-node",
                       help="internal: run one live node (supervisor-spawned)")
    p.add_argument("--manifest", type=str, required=True)
    p.add_argument("--node", type=str, required=True)
    p.add_argument("--deadline", type=float, required=True,
                   help="wall seconds before the node stops itself")
    p.add_argument("--incarnation", type=int, default=0)
    p.set_defaults(func=_cmd_live_node)

    p = sub.add_parser("info", help="version and inventory")
    p.add_argument("--api", action="store_true",
                   help="print the layered repro.api surface as JSON")
    p.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
