#!/usr/bin/env python
"""NOW G-Net-style distributed data mining on EveryWare (§6).

The paper's second planned application. A synthetic market-basket
database (with planted correlated item pairs) is mined for frequent
itemsets; the database never moves — each farm task carries only a
(seed, offset, count) triple and workers regenerate their partition
deterministically. The merged result is checked against a serial pass.

Run: ``python examples/gnet_mining.py``
"""

from repro.apps.gnet import (
    PLANTED_PAIRS,
    CountMerger,
    execute_task,
    make_tasks,
    mine_serial,
    task_cost,
)
from repro.api import run_farm

N_TX = 4000
N_ITEMS = 24
SEED = 11
MIN_SUPPORT = 0.25


def main() -> None:
    tasks = make_tasks(N_TX, N_ITEMS, SEED, chunk=400)
    merger = CountMerger()
    print(f"mining {N_TX:,} transactions ({N_ITEMS} items) across "
          f"{len(tasks)} partitions on 4 workers; the data ships as seeds, "
          "not rows ...")
    run = run_farm(tasks, execute=execute_task, cost=task_cost,
                   on_result=merger, n_workers=4,
                   kill_worker_at=30.0, reissue_timeout=120.0)

    items, pairs = merger.mine(MIN_SUPPORT)
    print(f"\nfarm finished in {run.sim_seconds:.0f} simulated seconds "
          f"(reissues: {run.master.reissues})")
    print(f"frequent items (support >= {MIN_SUPPORT:.0%}): {items}")
    print(f"frequent pairs: {pairs}")
    for pair in PLANTED_PAIRS:
        tag = "found" if pair in pairs else "MISSED"
        support = merger.pairs.get(pair, 0) / merger.n_transactions
        print(f"  planted pair {pair}: {tag} (support {support:.1%})")

    serial = mine_serial(N_TX, N_ITEMS, SEED, MIN_SUPPORT)
    print(f"\ndistributed result equals the serial pass: "
          f"{(items, pairs) == serial}")


if __name__ == "__main__":
    main()
