#!/usr/bin/env python
"""The NWS forecasting subsystem on realistic load traces.

Generates a regime-switching "server response time" trace (quiet
overnight, bursty under contention — the kind of series EveryWare's
dynamic benchmarking produces), runs the full forecaster bank over it,
and shows why adaptive method selection wins: no single method is best
everywhere, but the bank tracks whichever currently is.

Also demonstrates dynamic time-out discovery (§2.2): the derived time-out
hugs the true response-time regime instead of a static guess.

Run: ``python examples/forecasting_demo.py``
"""

import numpy as np

from repro.api import ForecastRegistry, ForecasterBank, default_bank


def make_trace(n=1200, seed=3):
    """Response times with three regimes and heavy-tailed spikes."""
    rng = np.random.default_rng(seed)
    trace = []
    level = 0.05
    for i in range(n):
        if i == 400:
            level = 0.50  # contention sets in (SCInet reconfigured...)
        if i == 800:
            level = 0.12  # partial recovery
        value = level * (1 + 0.15 * rng.standard_normal())
        if rng.random() < 0.03:
            value *= rng.uniform(3, 10)  # a straggler
        trace.append(max(value, 0.001))
    return trace


def main() -> None:
    trace = make_trace()

    # Score every individual method and the adaptive chooser.
    bank = ForecasterBank()
    chooser_err, scored = 0.0, 0
    method_history = []
    for value in trace:
        fc = bank.forecast()
        if fc is not None:
            chooser_err += abs(fc.value - value)
            scored += 1
            method_history.append(fc.method)
        bank.update(value)

    print("per-method MAE over the whole trace:")
    for name, mae in sorted(bank.errors().items(), key=lambda kv: kv[1]):
        print(f"  {name:>12}: {mae:.4f}")
    chooser_mae = chooser_err / scored
    best_single = min(bank.errors().values())
    print(f"\nadaptive chooser MAE: {chooser_mae:.4f} "
          f"(best single method: {best_single:.4f})")

    switches = sum(1 for a, b in zip(method_history, method_history[1:]) if a != b)
    used = sorted(set(method_history))
    print(f"chooser switched methods {switches} times across {len(used)} methods: {used}")

    # Dynamic time-outs across the regime change.
    print("\ndynamic time-out discovery (multiplier 4x):")
    registry = ForecastRegistry()
    checkpoints = {0: None, 399: None, 410: None, 500: None, 801: None, 1100: None}
    for i, value in enumerate(trace):
        registry.record("server", value)
        if i in checkpoints:
            checkpoints[i] = registry.timeout("server", multiplier=4.0)
    for i, timeout in checkpoints.items():
        print(f"  after sample {i:>4}: time-out = {timeout:.2f} s")
    print("\na static time-out tuned to the quiet regime (~0.2 s) would "
          "misjudge every response during contention — the needless "
          "retries the paper saw with static time-outs (§2.2).")


if __name__ == "__main__":
    main()
