#!/usr/bin/env python
"""Replay the SC98 High-Performance Computing Challenge run.

Builds the full experiment of the paper's §4 — all seven infrastructures,
the Figure-1 service topology, the judging-morning load story — and
prints the regenerated figures: total sustained performance (Fig. 2),
per-infrastructure rate and host count (Figs. 3a/3b, with the log-scale
4a/4b variants), and the §4.1 headline numbers paper-vs-run.

Run: ``python examples/sc98_replay.py [--scale 0.25]``
(scale 1.0 reproduces the full ~350-host, 12-hour run; takes a few
minutes of wall time.)
"""

import argparse
import time

from repro.api import (
    SC98Config,
    build_sc98,
    render_fig2,
    render_fig3a,
    render_fig3b,
    render_grid_criteria,
    render_headlines,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="host-count scale (1.0 = full SC98 size)")
    parser.add_argument("--seed", type=int, default=1998)
    args = parser.parse_args()

    cfg = SC98Config(scale=args.scale, seed=args.seed)
    world = build_sc98(cfg)
    n_hosts = None
    print(f"building SC98 world at scale {args.scale} ...")
    t0 = time.time()
    results = world.run()
    n_hosts = sum(len(a.hosts) for a in world.adapters)
    print(f"simulated {cfg.duration / 3600:.0f} h across {n_hosts} hosts "
          f"in {time.time() - t0:.1f} s of wall time\n")

    print(render_fig2(results))
    print()
    print(render_fig3a(results))
    print()
    print(render_fig3a(results, log=True).splitlines()[0] + " — see sparklines above")
    print()
    print(render_fig3b(results))
    print()
    print(render_headlines(results))
    print()
    print(render_grid_criteria(results))
    print()
    print(f"operational notes: {results.condor_reclamations} Condor "
          f"reclamations, {results.lsf_kills} LSF sleep-kills, "
          f"{results.legion_translated} messages through the Legion translator")


if __name__ == "__main__":
    main()
