#!/usr/bin/env python
"""PET image reconstruction on the EveryWare service framework (§6).

One of the two applications the paper planned to build next. A synthetic
emission phantom is forward-projected into a sinogram; filtered
backprojection is then farmed over a small simulated Grid, one chunk of
projection angles per task, with a worker killed mid-run to show the
framework's failure-driven reissue. The distributed reconstruction is
compared against both a serial reconstruction and the phantom.

Run: ``python examples/pet_reconstruction.py``
"""

import numpy as np

from repro.apps.pet import (
    Accumulator,
    execute_task,
    forward_project,
    image_correlation,
    make_phantom,
    make_tasks,
    reconstruct_serial,
    task_cost,
)
from repro.api import run_farm

SIZE = 64
N_ANGLES = 48


def ascii_image(image, width=48):
    """Coarse ASCII rendering of a nonnegative image."""
    shades = " .:-=+*#%@"
    img = np.asarray(image, dtype=float)
    img = np.clip(img, 0, None)
    step = max(img.shape[0] // 24, 1)
    small = img[::step, ::step]
    hi = small.max() or 1.0
    rows = []
    for row in small:
        rows.append("".join(shades[int(v / hi * (len(shades) - 1))] for v in row))
    return "\n".join(rows)


def main() -> None:
    angles = [float(a) for a in np.linspace(0, 180, N_ANGLES, endpoint=False)]
    phantom = make_phantom(SIZE)
    print("simulating the scanner: forward projecting the phantom "
          f"({N_ANGLES} angles) ...")
    sino = forward_project(phantom, angles)

    tasks = make_tasks(sino, angles, SIZE, chunk=6)
    acc = Accumulator(size=SIZE)
    print(f"farming {len(tasks)} backprojection tasks over 4 heterogeneous "
          "workers (one dies mid-run) ...")
    run = run_farm(tasks, execute=execute_task, cost=task_cost,
                   on_result=acc, n_workers=4,
                   kill_worker_at=15.0, reissue_timeout=120.0)

    serial = reconstruct_serial(sino, angles, SIZE)
    corr_serial = image_correlation(acc.image, serial)
    corr_phantom = image_correlation(acc.image, phantom)

    print(f"\nfarm finished in {run.sim_seconds:.0f} simulated seconds; "
          f"reissues after worker loss: {run.master.reissues}")
    print(f"per-worker tasks: {[w.tasks_done for w in run.workers]}")
    print(f"correlation with serial FBP: {corr_serial:.4f}")
    print(f"correlation with phantom:    {corr_phantom:.3f}")

    print("\nphantom:")
    print(ascii_image(phantom))
    print("\ndistributed reconstruction:")
    print(ascii_image(acc.image))


if __name__ == "__main__":
    main()
