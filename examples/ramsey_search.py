#!/usr/bin/env python
"""A miniature Grid running the real Ramsey application end to end.

Builds the paper's Figure-1 topology — scheduler, Gossip, persistent
state manager (with counter-example verification), logging server — on a
simulated grid of heterogeneous hosts, and runs *real* op-counted search
kernels in the clients. The run searches K_14 for R(4,4) counter-examples
(abundant below R(4,4)=18, so the mini-grid actually finds some), shows
work distribution, gossip spread of the best result, and the verified
persistent checkpoint.

Run: ``python examples/ramsey_search.py``
"""

import numpy as np

from repro.api import (
    RAMSEY_BEST,
    Coloring,
    ComparatorRegistry,
    ConstantLoad,
    Environment,
    GossipServer,
    Host,
    HostSpec,
    LoggingServer,
    MeanRevertingLoad,
    Network,
    PersistentStateServer,
    QueueWorkSource,
    RamseyClient,
    RealEngine,
    RngStreams,
    SchedulerServer,
    SimDriver,
    counter_example_validator,
    is_counter_example,
    ramsey_comparator,
    unit_generator,
)

K, N = 14, 4  # search K_14 for mono-K_4-free colorings (harder, still < R(4,4)=18)
N_CLIENTS = 4


def main() -> None:
    env = Environment()
    streams = RngStreams(seed=1998)
    net = Network(env, streams, jitter=0.1)

    def host(name, speed=2e6, load=None):
        h = Host(env, HostSpec(name=name, speed=speed,
                               load_model=load or ConstantLoad(1.0)), streams)
        net.add_host(h)
        h.start()
        return h

    comparators = ComparatorRegistry()
    comparators.register(RAMSEY_BEST, ramsey_comparator)
    gossip = GossipServer("gossip", ["gossip/gossip"], comparators=comparators,
                          poll_period=10, sync_period=15)
    SimDriver(env, net, host("gossip"), "gossip", gossip, streams).start()

    work = QueueWorkSource(generator=unit_generator(K, N, base_seed=42,
                                                    ops_budget=2e9))
    sched = SchedulerServer("sched", work, report_period=30)
    SimDriver(env, net, host("sched"), "sched", sched, streams).start()

    pst = PersistentStateServer("pst")
    pst.add_validator(counter_example_validator)
    SimDriver(env, net, host("pst"), "pst", pst, streams).start()

    logsrv = LoggingServer("log")
    SimDriver(env, net, host("log"), "log", logsrv, streams).start()

    clients = []
    for i in range(N_CLIENTS):
        # Heterogeneous: client speeds differ 4x, and load fluctuates.
        h = host(f"cli{i}", speed=1e6 * (1 + i),
                 load=MeanRevertingLoad(mean=0.7, sigma=0.004))
        client = RamseyClient(
            f"cli{i}",
            schedulers=["sched/sched"],
            engine=RealEngine(max_steps_per_advance=400),
            infra="unix",
            loggers=["log/log"],
            persistent="pst/pst",
            gossip_well_known=["gossip/gossip"],
            work_period=10,
            report_period=30,
            seed=i,
        )
        SimDriver(env, net, h, "cli", client, streams).start()
        clients.append(client)

    print(f"searching K_{K} for colorings with no monochromatic K_{N} "
          f"(R(4,4) = 18, so these exist) ...")
    env.run(until=1800)

    print(f"\nafter {env.now:.0f} simulated seconds:")
    print(f"  units assigned:   {sched.stats.units_assigned}")
    print(f"  progress reports: {sched.stats.reports}")
    found = sum(c.counter_examples_found for c in clients)
    print(f"  counter-examples found by clients: {found}")
    print(f"  persistent stores (verified): {pst.stats.stores}, "
          f"denied: {pst.stats.denials}")

    for key in pst.backend.keys():
        obj = pst.backend.get(key)
        coloring = Coloring.from_hex(obj["k"], obj["coloring"])
        ok = is_counter_example(coloring, obj["n"])
        print(f"  checkpoint {key}: independently re-verified: {ok}")

    print("\nbest result as seen through the gossip service:")
    for c in clients:
        best = c.store.get_data(RAMSEY_BEST)
        if best:
            print(f"  {c.name}: k={best['k']} energy={best['energy']:.0f} "
                  f"(origin {best.get('origin', '?')})")

    perf = logsrv.by_kind("perf")
    total_ops = sum(r.data["ops"] for r in perf)
    print(f"\nlogging server recorded {len(perf)} perf reports, "
          f"{total_ops:,.0f} useful integer ops delivered")


if __name__ == "__main__":
    main()
