#!/usr/bin/env python
"""Gossip pool under partition: subclique split, merge, and state healing.

Reproduces §2.3's clique-protocol behavior in a watchable run: a
three-gossip pool synchronizing four application components splits when
the network partitions (each side elects its own leader and keeps its
side consistent) and merges when the partition heals, after which state
written on either side reaches everyone.

Run: ``python examples/gossip_cluster.py``
"""

from repro.api import (
    ComparatorRegistry,
    Component,
    Environment,
    GossipAgent,
    GossipServer,
    Host,
    HostSpec,
    Network,
    RngStreams,
    SimDriver,
    StateStore,
)


class Worker(Component):
    """A component with one synchronized state type."""

    def __init__(self, name, well_known):
        super().__init__(name)
        self.well_known = well_known
        self.store = None
        self.agent = None

    def on_start(self, now):
        self.store = StateStore(self.contact)
        self.store.register("NOTE")
        self.agent = GossipAgent(self.store, self.well_known, register_period=20)
        return self.agent.on_start(now, self.contact)

    def on_message(self, message, now):
        if GossipAgent.handles(message.mtype):
            return self.agent.on_message(message, now, self.contact)
        return []

    def on_timer(self, key, now):
        if GossipAgent.handles_timer(key):
            return self.agent.on_timer(key, now, self.contact)
        return []


def main() -> None:
    env = Environment()
    streams = RngStreams(seed=5)
    net = Network(env, streams, jitter=0.1)
    well_known = [f"g{i}/gossip" for i in range(3)]
    sites = ["east", "east", "west"]

    gossips = []
    for i in range(3):
        h = Host(env, HostSpec(name=f"g{i}", site=sites[i]), streams)
        net.add_host(h)
        g = GossipServer(f"g{i}", well_known,
                         comparators=ComparatorRegistry(),
                         poll_period=5, sync_period=8,
                         token_period=8, token_timeout=25)
        SimDriver(env, net, h, "gossip", g, streams).start()
        gossips.append(g)

    workers = []
    wsites = ["east", "east", "west", "west"]
    for i in range(4):
        h = Host(env, HostSpec(name=f"w{i}", site=wsites[i]), streams)
        net.add_host(h)
        w = Worker(f"w{i}", well_known)
        SimDriver(env, net, h, "app", w, streams).start()
        workers.append(w)

    def show(label):
        print(f"\n[{env.now:7.0f}s] {label}")
        for g in gossips:
            print(f"  {g.name}: leader={g.clique.leader} "
                  f"members={sorted(g.clique.members)}")
        for w in workers:
            print(f"  {w.name}: NOTE={w.store.get_data('NOTE')}")

    env.run(until=60)
    show("pool formed, components registered")

    workers[0].store.set_local("NOTE", {"msg": "written in the east"}, env.now)
    env.run(until=150)
    show("after an east-side write spread everywhere")

    print("\n--- partitioning east | west ---")
    net.set_partitions([["east"], ["west"]])
    env.run(until=350)
    workers[2].store.set_local("NOTE", {"msg": "written in the WEST during partition"},
                               env.now)
    env.run(until=500)
    show("during partition (two subcliques; west write stays west)")

    print("\n--- healing the partition ---")
    net.set_partitions([])
    env.run(until=900)
    show("after merge (one clique again; the fresher write heals everywhere)")

    assert all(w.store.get_data("NOTE") is not None for w in workers)
    leaders = {g.clique.leader for g in gossips}
    assert len(leaders) == 1, "pool must re-merge under one leader"
    print("\nmerged under one leader; state consistent. done.")


if __name__ == "__main__":
    main()
