#!/usr/bin/env python
"""Quickstart: the EveryWare toolkit in five minutes.

Demonstrates, on one machine, each toolkit layer from the paper:

1. the lingua franca over **real TCP sockets** (packet framing, typed
   messages, request/response with time-outs);
2. the **forecasting service** predicting response times and deriving a
   dynamic time-out;
3. the **Ramsey search kernel** finding an actual counter-example
   proving R(3,3) > 5, verified independently.

Run: ``python examples/quickstart.py``
"""

import threading
import time

import numpy as np

from repro.api import (
    Coloring,
    ForecastRegistry,
    Message,
    TabuSearch,
    TcpClient,
    TcpServer,
    event_tag,
    is_counter_example,
)


def main() -> None:
    # -- 1. lingua franca over real sockets --------------------------------
    print("== lingua franca over TCP ==")

    def handler(message: Message):
        if message.mtype == "PING":
            return message.reply("PONG", sender="", body={"got": message.body})
        return None

    server = TcpServer("127.0.0.1", 0, handler)
    host, port = server.address
    stop = threading.Event()
    pump = threading.Thread(
        target=lambda: [server.step(0.02) for _ in iter(stop.is_set, True)],
        daemon=True)
    pump.start()

    client = TcpClient(sender="quickstart")
    registry = ForecastRegistry()
    tag = event_tag(f"{host}:{port}", "PING")
    for i in range(10):
        started = time.monotonic()
        reply = client.request(host, port, Message(
            mtype="PING", sender="", body={"i": i}),
            timeout=registry.timeout(tag, default=2.0))
        rtt = time.monotonic() - started
        assert reply is not None and reply.mtype == "PONG"
        registry.record(tag, rtt)
    stop.set()
    pump.join(timeout=1)
    server.close()

    fc = registry.forecast(tag)
    print(f"  10 request/response round trips OK")
    print(f"  forecast rtt = {fc.value * 1e3:.2f} ms (method: {fc.method})")
    print(f"  dynamic time-out = {registry.timeout(tag):.3f} s "
          f"(vs naive static default 10 s)")

    # -- 2. Ramsey search ---------------------------------------------------
    print("== Ramsey counter-example search ==")
    search = TabuSearch(5, 3, np.random.default_rng(0))
    search.run(max_steps=2000)
    assert search.found
    best = Coloring.from_hex(5, search.snapshot().best_coloring)
    assert is_counter_example(best, 3)
    print(f"  found a 2-coloring of K_5 with no monochromatic triangle")
    print(f"  => R(3,3) > 5 (in fact R(3,3) = 6), verified independently")
    print(f"  steps: {search.steps}, metered integer ops: {search.ops.ops:,}")
    print("quickstart complete.")


if __name__ == "__main__":
    main()
