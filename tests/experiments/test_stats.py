"""Tests for the robustness-statistics helpers."""

import numpy as np
import pytest

from repro.experiments.stats import SweepOutcome, bootstrap_ci, seed_sweep, shape_metrics


def test_bootstrap_ci_brackets_mean():
    rng = np.random.default_rng(0)
    data = rng.normal(10, 2, 200)
    point, lo, hi = bootstrap_ci(data)
    assert lo < point < hi
    assert point == pytest.approx(10, abs=0.5)
    assert hi - lo < 1.5  # a 200-sample mean CI is tight


def test_bootstrap_ci_single_value_degenerate():
    assert bootstrap_ci([5.0]) == (5.0, 5.0, 5.0)


def test_bootstrap_ci_empty_rejected():
    with pytest.raises(ValueError):
        bootstrap_ci([])


def test_bootstrap_ci_custom_statistic():
    data = [1, 2, 3, 4, 100]
    point, lo, hi = bootstrap_ci(data, statistic=np.median)
    assert point == 3
    assert lo <= point <= hi


def test_bootstrap_ci_deterministic_given_seed():
    data = list(range(20))
    assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)


def test_sweep_outcome_ratios():
    o = SweepOutcome(seed=1, peak=2.0, dip=1.0, recovery=1.6,
                     total_cv=0.1, median_part_cv=0.2)
    assert o.dip_ratio == 0.5
    assert o.recovery_ratio == 0.8


def test_seed_sweep_runs_and_orders():
    outcomes = seed_sweep([3, 4], scale=0.08, duration=1800.0)
    assert [o.seed for o in outcomes] == [3, 4]
    for o in outcomes:
        assert o.peak > 0
        assert np.isfinite(o.total_cv)
        # 30-minute runs never reach the judging window:
        assert np.isnan(o.dip)


def test_shape_metrics_from_run():
    from repro.experiments import SC98Config, build_sc98

    results = build_sc98(SC98Config(scale=0.08, duration=1800.0, seed=9)).run()
    o = shape_metrics(results)
    assert o.seed == 9
    assert o.peak == results.peak()[1]
