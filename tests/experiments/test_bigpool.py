"""Big-pool world builder: scale worlds stay correct and deterministic."""

import json

import pytest

from repro.experiments.bigpool import (
    PoolConfig,
    build_pool,
    churn_plan,
    export_json,
    export_state,
    inject_write,
    run_until_converged,
)


def small(n_hosts=32, **kw):
    kw.setdefault("n_sites", 4)
    kw.setdefault("n_records", 8)
    return build_pool(n_hosts=n_hosts, **kw)


def test_pool_starts_converged():
    pool = small()
    assert pool.converged()
    pool.run(until=30.0)
    assert pool.converged()
    # Pre-seeded records are shared objects, not per-member copies.
    assert pool.servers[0].freshest["POOL_STATE_0000"] is (
        pool.servers[1].freshest["POOL_STATE_0000"])


def test_write_spreads_to_every_member():
    pool = small()
    pool.run(until=20.0)
    record = inject_write(pool)
    result = run_until_converged(pool, deadline=600.0)
    assert result["converged"]
    for server in pool.servers:
        assert server.freshest[record.mtype].origin == record.origin


def test_convergence_is_logarithmic_ish():
    rounds = {}
    for n in (16, 64):
        pool = small(n_hosts=n)
        pool.run(until=20.0)
        inject_write(pool)
        result = run_until_converged(pool, deadline=600.0)
        assert result["converged"]
        rounds[n] = result["rounds"]
    # 4x the pool must cost far less than 4x the rounds.
    assert rounds[64] <= 2.5 * max(rounds[16], 1.0)


def test_same_seed_runs_export_identically():
    exports = []
    for _ in range(2):
        pool = small()
        pool.run(until=20.0)
        inject_write(pool)
        run_until_converged(pool, deadline=300.0)
        exports.append(export_json(pool))
    assert exports[0] == exports[1]


def test_different_seeds_diverge_in_traffic_not_state():
    totals = []
    for seed in (11, 12):
        pool = small(seed=seed)
        pool.run(until=20.0)
        inject_write(pool)
        run_until_converged(pool, deadline=300.0)
        snap = export_state(pool)
        totals.append(snap["totals"]["bytes_sent"])
        assert pool.converged()
    assert totals[0] != totals[1]  # different peer picks, same outcome


def test_windowed_engine_matches_serial():
    exports = []
    for window in (None, 5.0):
        pool = small(window=window)
        pool.run(until=20.0)
        inject_write(pool)
        run_until_converged(pool, deadline=300.0)
        exports.append(export_json(pool))
    assert exports[0] == exports[1]


def test_export_is_json_stable():
    pool = small()
    pool.run(until=25.0)
    snap = export_state(pool)
    assert json.loads(json.dumps(snap)) == snap
    assert len(snap["members"]) == 32
    assert snap["totals"]["digest_rounds"] > 0


def test_churn_plan_is_deterministic_and_survivable():
    config = PoolConfig(n_hosts=32, n_sites=4, n_records=8)
    plan_a = churn_plan(config)
    plan_b = churn_plan(config)
    assert [repr(i) for i in plan_a.injectors] == [
        repr(i) for i in plan_b.injectors]
    pool = build_pool(config)
    churn_plan(config).install(pool.env, pool.network)
    pool.run(until=40.0)
    inject_write(pool)
    result = run_until_converged(pool, deadline=900.0)
    # The pool converges among surviving members despite crashes and the
    # partition (the partition heals at 90+90; crashed hosts stay out of
    # the convergence check via active_servers).
    assert result["converged"]
    assert len(pool.active_servers()) < len(pool.servers)


def test_full_sync_mode_also_converges():
    pool = small(sync_mode="full")
    pool.run(until=20.0)
    record = inject_write(pool)
    result = run_until_converged(pool, deadline=900.0)
    assert result["converged"]
    for server in pool.servers:
        assert server.freshest[record.mtype].origin == record.origin


def test_config_validation():
    with pytest.raises(ValueError):
        build_pool(PoolConfig(n_hosts=8), n_hosts=16)
    with pytest.raises(ValueError):
        build_pool(n_hosts=8, sync_mode="bogus")
