"""Tests for the chaos scenario matrix: determinism and recovery.

These are the acceptance checks for the fault-injection subsystem — the
matrix must be reproducible under a fixed seed, and the persistent
counter-example storage must survive every profile intact.
"""

import json

import pytest

from repro.core.linguafranca.endpoint import SimEndpoint
from repro.core.linguafranca.messages import Message
from repro.core.services.persistent import PST_STORE, PersistentStateServer
from repro.core.simdriver import SimDriver
from repro.experiments.chaos import ChaosConfig, build_plan, run_chaos
from repro.ramsey.known import paley_coloring
from repro.ramsey.verify import counter_example_validator, verify_counter_example_object
from repro.simgrid.engine import Environment
from repro.simgrid.faults import FaultPlan
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams


def cfg(**kw):
    kw.setdefault("duration", 1500.0)
    return ChaosConfig(**kw)


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        build_plan("meteor-strike", cfg())


def test_same_seed_reruns_are_byte_identical():
    a = run_chaos("crash-heavy", cfg(duration=1200.0)).to_dict()
    b = run_chaos("crash-heavy", cfg(duration=1200.0)).to_dict()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_crash_heavy_preserves_counter_examples():
    report = run_chaos("crash-heavy", cfg(duration=1200.0))
    assert report.faults["crashes"] >= 5
    assert report.faults["reboots"] >= 5
    # Work was interrupted and recovered...
    assert report.work_lost > 0
    assert report.units_completed > 0
    # ...but nothing persistent was lost or corrupted.
    assert report.counter_example_keys
    assert report.counter_examples_corrupted == 0
    assert report.counter_examples_preserved == len(report.counter_example_keys)


def test_partition_heavy_heals_and_resyncs():
    report = run_chaos("partition-heavy", cfg())
    assert report.faults["partitions"] == 2
    assert report.faults["heals"] == 2
    assert report.network["dropped_partition"] > 0
    # The gossip pool re-merged after the last heal.
    assert report.resync_time is not None
    assert report.resync_time >= 0.0
    assert report.counter_examples_corrupted == 0


def test_infra_loss_recovers():
    report = run_chaos("infra-loss", cfg())
    assert report.faults["outages"] == 2
    assert report.faults["restores"] == 2
    # The chaos window duplicated live traffic.
    assert report.network["duplicated_fault"] > 0
    # Clients were lost with their infrastructures and came back.
    assert report.clients_lost > 0
    assert report.active_hosts_end > 0
    assert report.counter_examples_corrupted == 0


def test_duplicated_and_reordered_stores_never_corrupt_storage():
    """A chaos window that duplicates and reorders every datagram, plus a
    rogue corrupt store request, must leave only valid objects behind."""
    env = Environment()
    streams = RngStreams(seed=31)
    net = Network(env, streams, jitter=0.0)
    hosts = []
    for name in ("pst", "cli"):
        h = Host(env, HostSpec(name=name, site="x"), streams)
        net.add_host(h)
        h.start()
        hosts.append(h)

    server = PersistentStateServer("pst")
    server.add_validator(counter_example_validator)
    SimDriver(env, net, hosts[0], "p", server, streams).start()
    sender = SimEndpoint(env, net, Address("cli", "c"))

    FaultPlan().chaos(0.0, 500.0, duplicate=0.9, delay=0.8,
                      delay_max=20.0).install(env, net)

    good = paley_coloring(17)
    valid_obj = {"k": 17, "n": 4, "coloring": good.to_hex()}

    def drive(env):
        for i in range(10):
            sender.send("pst/p", Message(
                mtype=PST_STORE, sender="cli/c",
                body={"key": "ramsey/r4/k17", "object": valid_obj}))
            yield env.timeout(3.0)
        sender.send("pst/p", Message(
            mtype=PST_STORE, sender="cli/c",
            body={"key": "ramsey/bogus", "object": {"k": 17, "n": 4,
                                                    "coloring": "zz"}}))

    env.process(drive(env))
    env.run(until=600.0)

    assert net.stats.duplicated_fault > 0
    assert net.stats.delayed_fault > 0
    # The rogue object was rejected; every surviving key verifies.
    assert server.stats.denials >= 1
    keys = server.backend.keys()
    assert keys == ["ramsey/r4/k17"]
    for key in keys:
        verify_counter_example_object(server.backend.get(key))
