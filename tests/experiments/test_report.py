"""Tests for figure rendering on synthetic results."""

import numpy as np
import pytest

from repro.experiments.metrics import SeriesBundle
from repro.experiments.report import (
    render_fig2,
    render_fig3a,
    render_fig3b,
    render_grid_criteria,
    render_headlines,
)
from repro.experiments.sc98 import SC98Config, SC98Results, clock_to_offset


@pytest.fixture
def synthetic_results():
    cfg = SC98Config(scale=1.0)
    n = cfg.n_buckets
    times = np.arange(n) * cfg.bucket
    rng = np.random.default_rng(0)
    base = 2e9 + 2e8 * rng.standard_normal(n)
    # Sculpt the §4.1 story: surge, dip, recovery.
    t_test = clock_to_offset(9, 46)
    t_judge = clock_to_offset(11, 0)
    t_demo = clock_to_offset(11, 12)
    base[int(t_test // cfg.bucket)] = 2.39e9
    base[int(t_judge // cfg.bucket) + 1] = 1.1e9
    base[int(t_demo // cfg.bucket)] = 2.0e9
    per_infra = {
        "unix": base * 0.4,
        "nt": base * 0.35,
        "condor": base * 0.15,
        "globus": base * 0.05,
        "legion": base * 0.04,
        "java": np.abs(rng.standard_normal(n)) * 1e7,
        "netsolve": np.full(n, 8e6),
    }
    total = np.sum(list(per_infra.values()), axis=0)
    hosts = {name: np.full(n, 10.0) for name in per_infra}
    series = SeriesBundle(times=times, total_rate=total,
                          rate_by_infra=per_infra, hosts_by_infra=hosts)
    return SC98Results(config=cfg, series=series)


def test_headline_extraction(synthetic_results):
    r = synthetic_results
    peak_t, peak = r.peak()
    assert peak == r.series.total_rate.max()
    assert r.judging_dip() <= r.series.total_rate.max()
    assert r.recovery() >= r.judging_dip()
    assert np.isfinite(r.rate_at(0.0))


def test_rate_at_clamps_out_of_range(synthetic_results):
    r = synthetic_results
    assert r.rate_at(-100) == r.series.total_rate[0]
    assert r.rate_at(1e9) == r.series.total_rate[-1]


def test_render_fig2_contains_axis_and_shape(synthetic_results):
    text = render_fig2(synthetic_results)
    assert "Figure 2" in text
    assert "23:36:56" in text
    assert "shape: [" in text
    assert "E+09" in text


def test_render_fig3a_lists_all_infras(synthetic_results):
    text = render_fig3a(synthetic_results)
    for name in ("unix", "nt", "condor", "globus", "legion", "java", "netsolve"):
        assert name in text
    log_text = render_fig3a(synthetic_results, log=True)
    assert "Figure 4a" in log_text


def test_render_fig3b(synthetic_results):
    text = render_fig3b(synthetic_results)
    assert "Host Count" in text
    assert "max=10" in text
    assert "Figure 4b" in render_fig3b(synthetic_results, log=True)


def test_render_headlines_has_paper_values(synthetic_results):
    text = render_headlines(synthetic_results)
    assert "2.39E+09" in text
    assert "1.10E+09" in text
    assert "2.00E+09" in text


def test_render_grid_criteria(synthetic_results):
    text = render_grid_criteria(synthetic_results)
    assert "consistent" in text
    assert "pervasive: 7 infrastructures" in text


def test_judging_windows_empty_when_run_too_short():
    cfg = SC98Config(scale=1.0, duration=3600.0)
    n = cfg.n_buckets
    series = SeriesBundle(
        times=np.arange(n) * cfg.bucket,
        total_rate=np.ones(n),
        rate_by_infra={"unix": np.ones(n)},
        hosts_by_infra={"unix": np.ones(n)},
    )
    r = SC98Results(config=cfg, series=series)
    assert np.isnan(r.judging_dip())
    assert np.isnan(r.recovery())
