"""Integration tests for the SC98 scenario (scaled down for test speed)."""

import numpy as np
import pytest

from repro.experiments import SC98Config, build_sc98
from repro.experiments.sc98 import clock_to_offset


@pytest.fixture(scope="module")
def short_run():
    """Two simulated hours at small scale: topology + measurement checks."""
    cfg = SC98Config(scale=0.12, duration=2 * 3600.0, seed=7)
    world = build_sc98(cfg)
    results = world.run()
    return world, results


def test_all_seven_infrastructures_deliver(short_run):
    world, results = short_run
    delivering = {name for name, series in results.series.rate_by_infra.items()
                  if float(np.sum(series)) > 0}
    assert delivering == {"unix", "condor", "nt", "globus", "legion",
                          "netsolve", "java"}


def test_total_is_sum_of_parts(short_run):
    world, results = short_run
    s = results.series
    stacked = np.sum(list(s.rate_by_infra.values()), axis=0)
    assert np.allclose(stacked, s.total_rate, rtol=1e-9)


def test_host_counts_sampled_for_every_infra(short_run):
    world, results = short_run
    hosts = results.series.hosts_by_infra
    assert set(hosts) == {"unix", "condor", "nt", "globus", "legion",
                          "netsolve", "java"}
    # Condor is the biggest pool, NetSolve the smallest fixed one.
    assert hosts["condor"].max() > hosts["netsolve"].max()


def test_rates_conservative_wrt_capacity(short_run):
    """Delivered ops never exceed the deployed hardware's peak capacity —
    the paper's 'conservative estimate' property."""
    world, results = short_run
    capacity = sum(h.spec.speed for a in world.adapters for h in a.hosts)
    assert results.series.total_rate.max() <= capacity


def test_figure1_topology_complete(short_run):
    """The Fig. 1 component census: schedulers, gossips, persistent state
    managers, logging servers, NWS-style forecasters inside services."""
    world, _ = short_run
    core = world.core
    assert len(core.schedulers) == 3
    assert len(core.gossips) == 3
    assert len(core.loggers) == 2
    assert len(core.persistents) == 1
    # The gossip pool converged under the clique protocol.
    for gossip in core.gossips:
        assert gossip.clique is not None
        assert sorted(gossip.clique.members) == sorted(core.gossip_contacts)
    # Schedulers actually forecast client rates (dynamic benchmarking).
    assert any(len(s.forecasts.tags()) > 0 for s in core.schedulers)


def test_clients_spread_across_schedulers(short_run):
    world, _ = short_run
    hellos = [s.stats.hellos for s in world.core.schedulers]
    assert sum(hellos) > 0
    assert sum(1 for h in hellos if h > 0) >= 2  # not all on one server


def test_legion_traffic_goes_through_translator(short_run):
    world, results = short_run
    assert results.legion_translated > 0


def test_condor_reclamation_happens(short_run):
    world, results = short_run
    assert results.condor_reclamations > 0


def test_judging_dip_and_recovery_shape():
    """Run a window around the judging event only: rates must dip hard at
    11:00 and climb back by the 11:10 demo (Fig. 2 / §4.1 story)."""
    t_start = clock_to_offset(10, 0)
    cfg = SC98Config(scale=0.12, duration=clock_to_offset(11, 36), seed=11)
    world = build_sc98(cfg)
    results = world.run()
    s = results.series
    pre_mask = (s.times >= clock_to_offset(10, 20)) & (s.times < clock_to_offset(10, 55))
    pre = float(np.mean(s.total_rate[pre_mask]))
    dip = results.judging_dip()
    rec = results.recovery()
    assert dip < 0.65 * pre, f"dip {dip:.3g} not deep vs pre {pre:.3g}"
    assert rec > 1.5 * dip, f"recovery {rec:.3g} vs dip {dip:.3g}"
    assert rec < 1.1 * pre  # recovered, but to a busier floor


def test_scaled_counts():
    cfg = SC98Config(scale=0.5)
    assert cfg.scaled(120) == 60
    assert cfg.scaled(3) == 2
    assert cfg.scaled(1, minimum=1) == 1
    assert cfg.n_buckets == 144
