"""Tests for metric buckets, series collection, and report rendering."""

import numpy as np
import pytest

from repro.core.component import NullRuntime
from repro.core.linguafranca.messages import Message
from repro.core.services.logging import LoggingServer
from repro.experiments.metrics import (
    TimeBuckets,
    coefficient_of_variation,
    collect_rate_series,
)
from repro.experiments.report import (
    format_rate,
    render_series_table,
    sparkline,
)
from repro.experiments.sc98 import clock_to_offset, offset_to_clock


def test_time_buckets_rates():
    b = TimeBuckets(start=0, width=10, n=3)
    assert b.add(5, 100)
    assert b.add(9.99, 50)
    assert b.add(25, 30)
    assert not b.add(31, 1)  # beyond range
    assert not b.add(-1, 1)
    assert list(b.rates()) == [15.0, 0.0, 3.0]
    assert list(b.times()) == [0, 10, 20]


def test_time_buckets_means_with_empty():
    b = TimeBuckets(start=0, width=10, n=2)
    b.add(1, 4)
    b.add(2, 6)
    means = b.means()
    assert means[0] == 5.0
    assert np.isnan(means[1])


def test_time_buckets_validate():
    with pytest.raises(ValueError):
        TimeBuckets(0, 0, 5)
    with pytest.raises(ValueError):
        TimeBuckets(0, 10, 0)


def test_collect_rate_series_from_logging_servers():
    srv = LoggingServer("log")
    srv.bind_runtime(NullRuntime(contact="log/srv"))
    # Two infra streams: unix at t=10s, condor at t=310s.
    srv.on_message(Message(mtype="LOG_APPEND", sender="a/cli", body={
        "records": [{"k": "perf", "d": {"ops": 3000.0, "infra": "unix"}}]}), 10.0)
    srv.on_message(Message(mtype="LOG_APPEND", sender="b/cli", body={
        "records": [{"k": "perf", "d": {"ops": 600.0, "infra": "condor"}}]}), 310.0)
    total, per_infra = collect_rate_series([srv], start=0, width=300, n=2)
    assert total[0] == pytest.approx(10.0)  # 3000 ops / 300 s
    assert total[1] == pytest.approx(2.0)
    assert per_infra["unix"][0] == pytest.approx(10.0)
    assert per_infra["condor"][1] == pytest.approx(2.0)
    assert per_infra["unix"][1] == 0.0


def test_cv_stable_vs_noisy():
    stable = np.full(100, 10.0)
    noisy = np.concatenate([np.full(50, 1.0), np.full(50, 19.0)])
    assert coefficient_of_variation(stable) == 0.0
    assert coefficient_of_variation(noisy) > 0.5


def test_cv_edge_cases():
    assert np.isnan(coefficient_of_variation(np.array([])))
    assert coefficient_of_variation(np.zeros(5)) == float("inf")
    # skip parameter drops the startup transient
    series = np.array([0.0, 0.0, 10.0, 10.0, 10.0])
    assert coefficient_of_variation(series, skip=2) == 0.0


def test_clock_offset_roundtrip():
    assert clock_to_offset(23, 36, 56) == 0.0
    assert offset_to_clock(0) == "23:36:56"
    # Midnight wrap.
    assert clock_to_offset(0, 0, 0) == pytest.approx(23 * 60 + 4)
    assert clock_to_offset(11, 0, 0) == pytest.approx(40984.0)
    assert offset_to_clock(40984.0) == "11:00:00"


def test_sparkline_shapes():
    assert len(sparkline([1, 2, 3, 4])) == 4
    assert sparkline([0, 0, 0]) == "   "
    ramp = sparkline([0, 5, 10])
    assert ramp[0] < ramp[-1]
    # Log mode compresses magnitude gaps.
    lin = sparkline([1, 10, 1e6])
    log = sparkline([1, 10, 1e6], log=True)
    assert lin[1] == " "  # 10 invisible on linear scale vs 1e6
    assert log[1] != " "


def test_format_rate():
    assert format_rate(2.39e9) == "2.39E+09"
    assert format_rate(float("nan")) == "nan"


def test_render_series_table():
    times = np.array([0.0, 300.0, 600.0])
    table = render_series_table(times, {"total": np.array([1e9, 2e9, 3e9])}, every=1)
    assert "23:36:56" in table
    assert "1.00E+09" in table
    lines = table.splitlines()
    assert len(lines) == 2 + 3  # header + rule + 3 rows
