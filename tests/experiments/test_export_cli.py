"""Tests for CSV/JSON export and the command-line interface."""

import csv
import io
import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import SC98Config, SC98Results, build_sc98
from repro.experiments.export import (
    headlines_json,
    hosts_csv,
    rates_csv,
    write_results,
)
from repro.experiments.metrics import SeriesBundle


@pytest.fixture(scope="module")
def tiny_results():
    cfg = SC98Config(scale=0.08, duration=1800.0, seed=4)
    world = build_sc98(cfg)
    return world.run()


def test_rates_csv_well_formed(tiny_results):
    text = rates_csv(tiny_results)
    rows = list(csv.reader(io.StringIO(text)))
    header, data = rows[0], rows[1:]
    assert header[:3] == ["offset_s", "clock", "total_iops"]
    assert len(data) == tiny_results.config.n_buckets
    assert data[0][1] == "23:36:56"
    # Total column equals the sum of the infra columns, row by row.
    for row in data:
        total = float(row[2])
        parts = sum(float(x) for x in row[3:])
        # %.6g formatting rounds each column independently.
        assert total == pytest.approx(parts, rel=1e-3, abs=1e-3)


def test_hosts_csv_well_formed(tiny_results):
    rows = list(csv.reader(io.StringIO(hosts_csv(tiny_results))))
    assert rows[0][0] == "offset_s"
    assert set(rows[0][2:]) == {"unix", "condor", "nt", "globus", "legion",
                                "netsolve", "java"}
    assert len(rows) == 1 + tiny_results.config.n_buckets


def test_headlines_json_shape(tiny_results):
    payload = json.loads(headlines_json(tiny_results))
    assert payload["paper"]["peak"] == 2.39e9
    assert payload["run"]["scale"] == tiny_results.config.scale
    assert "peak_clock" in payload["run"]


def test_write_results_creates_files(tiny_results, tmp_path):
    paths = write_results(tiny_results, str(tmp_path / "export"))
    assert len(paths) == 3
    for path in paths:
        assert (tmp_path / "export").exists()
        with open(path, encoding="utf-8") as fh:
            assert fh.read().strip()


# ---------------------------------------------------------------- CLI


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "EveryWare" in out
    assert "repro.ramsey" in out


def test_cli_ramsey_finds_witness(capsys):
    assert main(["ramsey", "--k", "5", "--n", "3", "--steps", "3000"]) == 0
    out = capsys.readouterr().out
    assert "counter-example FOUND" in out
    assert "verified: True" in out


def test_cli_ramsey_reports_failure_exit_code(capsys):
    # K_6/n=3 is unsolvable: budget exhausts, exit code 1.
    assert main(["ramsey", "--k", "6", "--n", "3", "--steps", "300"]) == 1
    out = capsys.readouterr().out
    assert "no counter-example" in out


def test_cli_sc98_with_export(tmp_path, capsys):
    code = main(["sc98", "--scale", "0.08", "--seed", "4",
                 "--out", str(tmp_path / "x")])
    assert code == 0
    out = capsys.readouterr().out
    assert "Headline numbers" in out
    assert (tmp_path / "x" / "rates.csv").exists()
    assert (tmp_path / "x" / "headlines.json").exists()
