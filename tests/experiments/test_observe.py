"""Tests for the observability smoke scenario and its exports: the
fault → drop → retransmit → give-up → requeue span chain, fault-counter
agreement between chaos stats and telemetry, and byte-identical
same-seed exports."""

import json

import pytest

from repro.cli import main
from repro.core.telemetry import export_chrome_trace
from repro.experiments.observe import ObserveConfig, ObserveWorld, requeue_chains
from repro.experiments.report import render_trace_summary


@pytest.fixture(scope="module")
def world():
    w = ObserveWorld(ObserveConfig())
    w.run()
    return w


def test_requeue_chain_reaches_the_injected_fault(world):
    chains = requeue_chains(world.telemetry)
    assert chains, "no fault->requeue chain extracted"
    chain = chains[0]
    assert chain["client"] == "cli0/cli"
    assert chain["call"] == "call SCH_WORK"
    assert chain["call_outcome"] == "gave-up"
    assert chain["retransmits"] >= 1
    assert chain["drops"] and all(d == "drop dropped_down"
                                  for d in chain["drops"])
    assert chain["faults"] == ["fault crashes cli0"]


def test_work_recovered_after_requeue(world):
    # The doomed client's unit went back to the queue and the scheduler
    # kept the survivor busy.
    assert world.scheduler.stats.units_requeued == 1
    assert world.scheduler.stats.units_assigned >= 2


def test_fault_counters_agree_with_plan_stats(world):
    """Satellite check: chaos reports (FaultPlan.stats) and telemetry
    counters are two views of the same firings."""
    counters = world.telemetry.metrics.counters_matching("fault.")
    fs = world.plan.stats
    assert counters.get("fault.crashes", 0) == fs.crashes == 1
    assert counters.get("fault.reboots", 0) == fs.reboots == 1
    assert counters.get("fault.skipped", 0) == fs.skipped == 0


def test_network_drop_counters_match_stats(world):
    counters = world.telemetry.metrics.counters_matching("net.")
    stats = world.network.stats
    assert counters["net.delivered"] == stats.delivered
    assert counters["net.dropped_down"] == stats.dropped_down


def test_same_seed_exports_are_byte_identical():
    def export():
        w = ObserveWorld(ObserveConfig(duration=180.0))
        report = w.run()
        trace = json.dumps(export_chrome_trace(w.telemetry), sort_keys=True)
        metrics = json.dumps(w.telemetry.snapshot(), sort_keys=True)
        return trace, metrics, json.dumps(report, sort_keys=True)

    assert export() == export()


def test_chrome_export_has_required_keys(world):
    doc = export_chrome_trace(world.telemetry)
    assert doc["traceEvents"]
    for ev in doc["traceEvents"]:
        for key in ("name", "ph", "ts", "pid"):
            assert key in ev


def test_trace_summary_renders(world):
    text = render_trace_summary(world.telemetry)
    assert "Trace summary" in text
    assert "requeue" in text
    assert "faults: crashes=1" in text


def test_untraced_run_keeps_metrics_but_no_spans():
    w = ObserveWorld(ObserveConfig(duration=120.0), trace=False)
    w.run()
    assert w.telemetry.tracer.spans == []
    counters = w.telemetry.metrics.counters_matching("msg.sent")
    assert sum(counters.values()) > 0


def test_cli_trace_writes_exports(tmp_path, capsys):
    out = tmp_path / "obs"
    code = main(["trace", "--scenario", "observe", "--duration", "180",
                 "--out", str(out), "--timeline", "5"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Trace summary" in captured
    trace = json.loads((out / "trace.json").read_text())
    assert trace["traceEvents"]
    metrics = json.loads((out / "metrics.json").read_text())
    assert "counters" in metrics
    report = json.loads((out / "report.json").read_text())
    assert report["scenario"] == "observe"


def test_cli_metrics_prints_snapshot(capsys):
    code = main(["metrics", "--scenario", "observe", "--duration", "120"])
    assert code == 0
    snap = json.loads(capsys.readouterr().out)
    assert "counters" in snap and "gauges" in snap
