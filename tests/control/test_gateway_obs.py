"""The gateway's observability routes and end-to-end job tracing.

Covers the DESIGN §14 surface sans-IO: Prometheus text at /metrics,
the legacy JSON snapshot at /metrics.json, the JSONL /events feed,
pushed per-site utilisation gauges, and the ingress span / TraceContext
that rides the journal and the work unit across the wire.
"""

import json

from repro.control import FileJournal, GatewayCore, WorkQueue, render_payload
from repro.control.gateway import TEXT_ROUTES
from repro.core.telemetry import Telemetry
from repro.obs.events import parse_jsonl
from repro.obs.prom import parse_prometheus, sample_value


def _core(telemetry=None, work=None):
    work = work if work is not None else WorkQueue(prefix="t")
    return GatewayCore("gw-test", work, telemetry=telemetry)


def _json(obj) -> bytes:
    return json.dumps(obj).encode("utf-8")


# -- exposition routes --------------------------------------------------------
def test_metrics_is_prometheus_and_metrics_json_is_snapshot():
    core = _core()
    core.handle("POST", "/jobs", _json({"k": 8}), now=0.0)

    status, text, route = core.handle("GET", "/metrics", b"", now=1.0)
    assert (status, route) == (200, "GET /metrics")
    samples = parse_prometheus(text)  # must parse strictly
    assert sample_value(samples, "http_requests",
                        route="POST /jobs", status="201") == 1

    status, doc, route = core.handle("GET", "/metrics.json", b"", now=1.0)
    assert (status, route) == (200, "GET /metrics.json")
    assert isinstance(doc, dict) and "counters" in doc


def test_render_payload_sets_text_content_types():
    frame = render_payload(200, "a 1\n", "GET /metrics")
    assert TEXT_ROUTES["GET /metrics"].encode() in frame
    assert b"a 1\n" in frame
    frame = render_payload(200, "{}\n", "GET /events")
    assert b"application/x-ndjson" in frame
    frame = render_payload(200, {"ok": True}, "GET /health")
    assert b"application/json" in frame


def test_events_feed_tails_job_lifecycle():
    core = _core()
    core.handle("POST", "/jobs", _json({}), now=1.0)
    core.work.next_unit()
    core.work.complete("t-1", {"answer": 42}, now=2.0)

    status, text, route = core.handle("GET", "/events", b"", now=3.0)
    assert (status, route) == (200, "GET /events")
    events = parse_jsonl(text)
    assert [e["event"] for e in events] == ["submitted", "assigned", "done"]
    assert all(e["job"] == "t-1" for e in events)

    # since= is strictly-greater; limit caps.
    _, text, _ = core.handle("GET", f"/events?since={events[0]['seq']}",
                             b"", now=3.0)
    assert [e["event"] for e in parse_jsonl(text)] == ["assigned", "done"]
    _, text, _ = core.handle("GET", "/events?since=-1&limit=1", b"", now=3.0)
    assert len(parse_jsonl(text)) == 1
    status, doc, _ = core.handle("GET", "/events?since=nope", b"", now=3.0)
    assert status == 400


def test_sites_push_lands_as_labelled_gauges():
    core = _core()
    body = {"sites": {"ucsd": {"delivered_ops": 750.0,
                               "available_ops": 1000.0,
                               "utilisation": 0.75, "clients": 2},
                      "utk": {"utilisation": 0.5}}}
    status, doc, route = core.handle("POST", "/telemetry/sites",
                                     _json(body), now=1.0)
    assert (status, route) == (200, "POST /telemetry/sites")
    assert doc == {"ok": True, "sites": 2}
    samples = parse_prometheus(
        core.handle("GET", "/metrics", b"", now=2.0)[1])
    assert sample_value(samples, "site_utilisation", site="ucsd") == 0.75
    assert sample_value(samples, "site_delivered_ops", site="ucsd") == 750
    assert sample_value(samples, "site_utilisation", site="utk") == 0.5

    assert core.handle("POST", "/telemetry/sites", b"[]", now=0.0)[0] == 400
    assert core.handle("POST", "/telemetry/sites", b"{nope", now=0.0)[0] == 400


def test_gossip_push_lands_as_gauges():
    core = _core()
    body = {"gossip": {"digest_rounds": 120, "delta_records": 37,
                       "bytes_sent": 51200, "bytes_saved": 480000,
                       "members": 8, "registered": 64,
                       "suspicion": {"suspect": 3, "dead": 1}}}
    status, doc, route = core.handle("POST", "/telemetry/gossip",
                                     _json(body), now=1.0)
    assert (status, route) == (200, "POST /telemetry/gossip")
    assert doc == {"ok": True}
    samples = parse_prometheus(
        core.handle("GET", "/metrics", b"", now=2.0)[1])
    assert sample_value(samples, "gossip_digest_rounds") == 120
    assert sample_value(samples, "gossip_delta_records") == 37
    assert sample_value(samples, "gossip_bytes_saved") == 480000
    assert sample_value(samples, "gossip_suspicion_transitions",
                        to="suspect") == 3
    assert sample_value(samples, "gossip_suspicion_transitions",
                        to="dead") == 1

    assert core.handle("POST", "/telemetry/gossip", b"[]", now=0.0)[0] == 400
    assert core.handle("POST", "/telemetry/gossip", b"{no", now=0.0)[0] == 400


def test_gossip_rollup_round_trips_from_a_live_pool():
    from repro.experiments.bigpool import (build_pool, gossip_rollup,
                                           inject_write)

    pool = build_pool(n_hosts=16, n_sites=2, n_records=8)
    pool.run(until=30.0)
    inject_write(pool)
    pool.run(until=60.0)
    rollup = gossip_rollup(pool.servers)
    assert rollup["digest_rounds"] > 0
    assert rollup["delta_records"] > 0
    assert rollup["bytes_saved"] > 0

    core = _core()
    status, _, _ = core.handle("POST", "/telemetry/gossip",
                               _json({"gossip": rollup}), now=1.0)
    assert status == 200
    samples = parse_prometheus(
        core.handle("GET", "/metrics", b"", now=2.0)[1])
    assert sample_value(samples, "gossip_digest_rounds") == float(
        rollup["digest_rounds"])
    assert sample_value(samples, "gossip_members") == 16.0

    # The pool members also expose the same plane first-hand through
    # their own telemetry registries (counters, not pushed gauges).
    counters = pool.servers[0].telemetry.metrics.snapshot()["counters"]
    assert any(k.startswith("gossip.delta_records") for k in counters)
    assert any(k.startswith("gossip.bytes_saved") for k in counters)
    assert any(k.startswith("gossip.sync_bytes") for k in counters)


# -- end-to-end trace propagation --------------------------------------------
def test_submit_roots_trace_and_unit_carries_context():
    tel = Telemetry(trace=True, id_base=1000)
    core = _core(telemetry=tel)
    status, doc, _ = core.handle("POST", "/jobs", _json({"k": 8}), now=1.0)
    assert status == 201

    ingress = next(s for s in tel.tracer.spans if s.name == "job ingress")
    assert ingress.args["job_id"] == doc["id"]
    job = core.work.get(doc["id"])
    assert job.trace == (ingress.trace_id, ingress.span_id)

    unit = core.work.next_unit()
    # The context rides inside the unit dict, across the SCH_WORK wire.
    assert unit["trace"] == [ingress.trace_id, ingress.span_id]

    names = [s.name for s in tel.tracer.spans
             if s.trace_id == ingress.trace_id]
    assert "journal flush" in names
    assert "job assign" in names

    core.work.requeue(unit)
    core.work.complete(doc["id"], {"ok": 1}, now=5.0)
    names = [s.name for s in tel.tracer.spans
             if s.trace_id == ingress.trace_id]
    assert "job requeue" in names
    assert "job done" in names
    requeue = next(s for s in tel.tracer.spans if s.name == "job requeue")
    assert requeue.outcome == "requeue"


def test_trace_disabled_emits_no_spans_and_no_trace_field():
    core = _core()  # default Telemetry: tracing off
    _, doc, _ = core.handle("POST", "/jobs", _json({}), now=0.0)
    assert core.telemetry.tracer.spans == []
    assert core.work.get(doc["id"]).trace is None
    unit = core.work.next_unit()
    assert "trace" not in unit


def test_trace_survives_journal_replay(tmp_path):
    journal = str(tmp_path / "jobs.jsonl")
    tel = Telemetry(trace=True, id_base=7000)
    core = _core(telemetry=tel,
                 work=WorkQueue(journal=FileJournal(journal), prefix="t"))
    _, doc, _ = core.handle("POST", "/jobs", _json({"k": 8}), now=1.0)
    trace = core.work.get(doc["id"]).trace
    assert trace is not None
    core.work.close()

    # A restarted gateway replays the journal: the TraceContext must
    # come back so post-restart spans still join the original trace.
    reborn = WorkQueue(journal=FileJournal(journal), prefix="t")
    assert reborn.get(doc["id"]).trace == tuple(trace)
    unit = reborn.next_unit()
    assert unit["trace"] == list(trace)
    reborn.close()
