"""The HTTP face of the reactor: framing edges and hostile byte streams.

Decoder tests are sans-IO; the server tests pump a real HttpServer from
a helper thread (the library itself stays single-threaded) and attack it
with raw sockets — malformed request lines, oversized uploads, slowloris
dribbles — asserting the §2.3 robustness rule: a hostile byte stream is
answered with a correct 4xx, never a wedged reactor.
"""

import json
import socket
import threading
import time

import pytest

from repro.control import (
    GatewayClient,
    GatewayCore,
    HttpDecoder,
    HttpError,
    HttpResponseDecoder,
    HttpServer,
    WorkQueue,
    json_response,
)


def _request(method="GET", path="/health", body=b"", version="HTTP/1.1",
             extra=""):
    head = (f"{method} {path} {version}\r\n"
            f"Content-Length: {len(body)}\r\n{extra}\r\n")
    return head.encode("latin-1") + body


# -- decoder: framing ---------------------------------------------------------

def test_decoder_parses_simple_get():
    decoder = HttpDecoder()
    decoder.feed(_request())
    request = decoder.next_request()
    assert request.method == "GET"
    assert request.path == "/health"
    assert request.error is None
    assert request.close is False  # HTTP/1.1 keep-alive default


def test_decoder_honors_connection_close_and_http10():
    decoder = HttpDecoder()
    decoder.feed(_request(extra="Connection: close\r\n"))
    assert decoder.next_request().close is True
    decoder = HttpDecoder()
    decoder.feed(_request(version="HTTP/1.0"))
    assert decoder.next_request().close is True
    decoder = HttpDecoder()
    decoder.feed(_request(version="HTTP/1.0",
                          extra="Connection: keep-alive\r\n"))
    assert decoder.next_request().close is False


def test_decoder_handles_pipelined_requests():
    decoder = HttpDecoder()
    decoder.feed(_request(path="/a") + _request("POST", "/b", b'{"x":1}'))
    first = decoder.next_request()
    second = decoder.next_request()
    assert (first.path, second.path) == ("/a", "/b")
    assert second.json() == {"x": 1}
    assert decoder.next_request() is None


def test_decoder_survives_slowloris_byte_dribble():
    decoder = HttpDecoder()
    wire = _request("POST", "/jobs", b'{"kind": "noop"}')
    for i in range(len(wire) - 1):
        decoder.feed(wire[i:i + 1])
        assert decoder.next_request() is None  # never a partial request
    decoder.feed(wire[-1:])
    request = decoder.next_request()
    assert request.error is None
    assert request.json() == {"kind": "noop"}


def test_decoder_waits_for_split_body():
    decoder = HttpDecoder()
    wire = _request("POST", "/jobs", b'{"a": 1}')
    decoder.feed(wire[:-4])
    assert decoder.next_request() is None
    decoder.feed(wire[-4:])
    assert decoder.next_request().json() == {"a": 1}


@pytest.mark.parametrize("wire, status", [
    (b"NONSENSE\r\n\r\n", 400),                      # no method/path/version
    (b"BREW /pot HTTP/1.1\r\n\r\n", 400),            # unknown method
    (b"GET /x HTTP/2.0\r\n\r\n", 400),               # unsupported version
    (b"GET noslash HTTP/1.1\r\n\r\n", 400),          # path without /
    (_request(extra="Transfer-Encoding: chunked\r\n"), 400),
    (b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400),
    (b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
    (b"GET / HTTP/1.1\r\nBad Header Line\r\n\r\n", 400),
])
def test_decoder_rejects_malformed_framing(wire, status):
    decoder = HttpDecoder()
    decoder.feed(wire)
    request = decoder.next_request()
    assert request.error is not None
    assert request.error[0] == status
    assert request.close is True
    # The decoder is poisoned: no resync on a boundary-less stream.
    decoder.feed(_request())
    assert decoder.next_request() is None


def test_decoder_refuses_oversized_declared_body_with_413():
    decoder = HttpDecoder(max_body=1024)
    decoder.feed(b"POST /jobs HTTP/1.1\r\nContent-Length: 2048\r\n\r\n")
    request = decoder.next_request()
    assert request.error[0] == 413  # refused at the header, body unread


def test_decoder_caps_header_block():
    decoder = HttpDecoder(max_header=256)
    decoder.feed(b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 300)
    request = decoder.next_request()
    assert request.error[0] == 400


def test_response_decoder_roundtrips_server_frames():
    decoder = HttpResponseDecoder()
    decoder.feed(json_response(201, {"id": "t-1"}))
    status, headers, body = decoder.next_response()
    assert status == 201
    assert headers["content-type"] == "application/json"
    assert json.loads(body) == {"id": "t-1"}
    with pytest.raises(HttpError):
        decoder.feed(b"garbage not http\r\n\r\n")
        decoder.next_response()


# -- server: real sockets -----------------------------------------------------

class GatewayUnderTest:
    """An HttpServer wrapping a GatewayCore, pumped from a thread."""

    def __init__(self):
        self.work = WorkQueue(prefix="t")
        self.core = GatewayCore("gw-test", self.work)
        self.server = HttpServer("127.0.0.1", 0, self._app)
        self.contact = "%s:%d" % self.server.address
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _app(self, request):
        status, doc, _route = self.core.handle(
            request.method, request.path, request.body, time.monotonic())
        return json_response(status, doc, close=request.close)

    def _run(self):
        while not self._stop.is_set():
            self.server.step(0.02)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=2)
        self.server.close()


def test_job_api_over_real_sockets():
    with GatewayUnderTest() as world:
        with GatewayClient(world.contact) as client:
            accepted = client.submit({"kind": "noop"})
            assert accepted["state"] == "queued"
            job_id = accepted["id"]
            assert client.job(job_id)["spec"] == {"kind": "noop"}
            assert client.job("t-404") is None
            status1, doc1 = client.cancel(job_id)
            status2, doc2 = client.cancel(job_id)  # double-cancel: idempotent
            assert (status1, status2) == (200, 200)
            assert doc1["state"] == doc2["state"] == "cancelled"
            assert client.health()["ok"] is True
            assert client.queue()["state_cancelled"] == 1


def test_malformed_bytes_answered_400_and_closed():
    with GatewayUnderTest() as world:
        host, port = world.server.address
        with socket.create_connection((host, port), timeout=2) as sock:
            sock.sendall(b"THIS IS NOT HTTP\r\n\r\n")
            decoder = HttpResponseDecoder()
            response = None
            while response is None:
                chunk = sock.recv(4096)
                assert chunk, "server closed without answering"
                decoder.feed(chunk)
                response = decoder.next_response()
            status, _, body = response
            assert status == 400
            assert b"error" in body
            # The connection is closed after the error flushes.
            sock.settimeout(2)
            assert sock.recv(4096) == b""
        assert world.server.protocol_errors == 1


def test_oversized_upload_refused_413_at_header():
    with GatewayUnderTest() as world:
        host, port = world.server.address
        with socket.create_connection((host, port), timeout=2) as sock:
            sock.sendall(f"POST /jobs HTTP/1.1\r\n"
                         f"Content-Length: {300 * 1024}\r\n\r\n"
                         .encode("latin-1"))
            decoder = HttpResponseDecoder()
            response = None
            while response is None:
                chunk = sock.recv(4096)
                assert chunk
                decoder.feed(chunk)
                response = decoder.next_response()
            assert response[0] == 413
        assert len(world.work.jobs) == 0


def test_slowloris_does_not_stall_other_clients():
    with GatewayUnderTest() as world:
        host, port = world.server.address
        with socket.create_connection((host, port), timeout=2) as slow:
            slow.sendall(b"GET /heal")  # ...and then just sit there
            time.sleep(0.05)
            # A well-behaved client on another connection is unaffected.
            with GatewayClient(world.contact) as client:
                t0 = time.monotonic()
                assert client.health()["ok"] is True
                assert time.monotonic() - t0 < 1.0
            slow.sendall(b"th HTTP/1.1\r\n\r\n")  # finish the dribble
            decoder = HttpResponseDecoder()
            response = None
            while response is None:
                chunk = slow.recv(4096)
                assert chunk
                decoder.feed(chunk)
                response = decoder.next_response()
            assert response[0] == 200


def test_client_reconnects_after_gateway_restart():
    """The probe-after-kill path: a cached client connection goes stale
    when the gateway dies; the next request retries on a fresh socket
    against the reborn gateway on the same contact."""
    first = GatewayUnderTest()
    host, port = first.server.address
    with first:
        client = GatewayClient(first.contact)
        accepted = client.submit({"kind": "noop"})
    # The gateway is dead; its replacement binds the same port and
    # replays the (here: shared in-memory) store.
    reborn = GatewayUnderTest()
    reborn.server.close()
    reborn.work = first.work
    reborn.core = GatewayCore("gw-reborn", first.work)
    for _ in range(50):
        try:
            reborn.server = HttpServer(host, port, reborn._app)
            break
        except OSError:
            time.sleep(0.1)
    with reborn:
        job = client.job(accepted["id"])
        assert job is not None and job["id"] == accepted["id"]
        assert client.health()["node"] == "gw-reborn"
    client.close()
