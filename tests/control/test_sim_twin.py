"""The simulated twin of ``repro serve``: deterministic, byte-stable.

Simulated users submit/query/cancel jobs through the same GatewayCore
routing table the live HTTP plane serves, simulated workers execute
them through the same unmodified SchedulerServer — and the whole run is
a pure function of the seed, including a mid-run gateway restart.
"""

import json

from repro.control import run_sim_serve


def _dumps(report):
    return json.dumps(report, sort_keys=True)


def test_run_twice_is_byte_identical():
    kwargs = dict(seed=11, users=3, workers=2, duration=25.0)
    assert _dumps(run_sim_serve(**kwargs)) == _dumps(run_sim_serve(**kwargs))


def test_restart_is_deterministic_and_loses_nothing():
    kwargs = dict(seed=3, users=3, workers=2, duration=30.0,
                  restart_after=12.0)
    first = run_sim_serve(**kwargs)
    second = run_sim_serve(**kwargs)
    assert _dumps(first) == _dumps(second)  # chaos included in the contract
    assert first["gateway"]["restarts"] == 1
    assert first["jobs_lost"] == []
    assert first["violations"] == []
    assert first["accepted_total"] > 0


def test_workers_actually_execute_submitted_jobs():
    report = run_sim_serve(seed=5, users=3, workers=2, duration=30.0)
    work = report["gateway"]["work"]
    done = work["state_done"]
    assert done > 0
    # Worker-side completions may exceed state_done: a report can still
    # be in flight at the horizon, or race a cancel and be dropped.
    assert sum(report["workers"].values()) >= done
    # Everything accepted is accounted for in a terminal-or-live state.
    counts = report["gateway"]["work"]
    assert (counts["state_queued"] + counts["state_assigned"]
            + counts["state_done"] + counts["state_cancelled"]
            == report["accepted_total"])


def test_seed_changes_the_world():
    a = run_sim_serve(seed=1, users=3, workers=2, duration=20.0)
    b = run_sim_serve(seed=2, users=3, workers=2, duration=20.0)
    assert _dumps(a) != _dumps(b)
