"""The durable WorkQueue: lifecycle, idempotency, journal replay.

The queue is the hinge of the control plane — the HTTP routers mutate it
from above, an unmodified SchedulerServer drains it from below, and the
journal is the reason a SIGKILLed gateway never loses an accepted job.
"""

import pytest

from repro.control import FileJournal, MemoryJournal, WorkQueue


def test_submit_assign_complete_lifecycle():
    work = WorkQueue(prefix="t")
    job = work.submit({"kind": "noop"}, now=1.0)
    assert job.id == "t-1"
    assert job.state == "queued"
    assert len(work) == 1

    unit = work.next_unit()
    assert unit == {"kind": "noop", "id": "t-1"}
    assert work.get("t-1").state == "assigned"
    assert len(work) == 0

    work.complete("t-1", {"answer": 42}, now=2.0)
    done = work.get("t-1")
    assert done.state == "done"
    assert done.result == {"answer": 42}
    assert done.finished_at == 2.0
    assert work.stats()["completed"] == 1


def test_next_unit_carries_spec_plus_id_only():
    work = WorkQueue(prefix="t")
    work.submit({"k": 8, "n": 4, "seed": 7}, now=0.0)
    unit = work.next_unit()
    assert unit == {"k": 8, "n": 4, "seed": 7, "id": "t-1"}
    # The stored spec is a copy: mutating the unit can't corrupt the job.
    unit["k"] = 99
    assert work.get("t-1").spec["k"] == 8


def test_cancel_is_idempotent_and_unknown_is_none():
    work = WorkQueue(prefix="t")
    work.submit({}, now=0.0)
    first = work.cancel("t-1", now=1.0)
    again = work.cancel("t-1", now=2.0)
    assert first.state == "cancelled"
    assert again.state == "cancelled"
    assert again.finished_at == 1.0  # the second cancel is a no-op
    assert work.cancelled == 1
    assert work.cancel("t-404", now=3.0) is None
    # A cancelled-while-queued job never reaches a client.
    assert work.next_unit() is None


def test_cancel_done_job_is_noop_keeps_result():
    work = WorkQueue(prefix="t")
    work.submit({}, now=0.0)
    work.next_unit()
    work.complete("t-1", {"answer": 1}, now=1.0)
    job = work.cancel("t-1", now=2.0)
    assert job.state == "done"
    assert job.result == {"answer": 1}


def test_cancel_while_assigned_drops_late_result():
    work = WorkQueue(prefix="t")
    work.submit({}, now=0.0)
    unit = work.next_unit()
    work.cancel(unit["id"], now=1.0)
    work.complete(unit["id"], {"answer": 1}, now=2.0)
    job = work.get(unit["id"])
    assert job.state == "cancelled"
    assert job.result is None
    assert work.results_dropped == 1


def test_requeue_goes_to_front_and_skips_terminal():
    work = WorkQueue(prefix="t")
    work.submit({"a": 1}, now=0.0)
    work.submit({"a": 2}, now=0.0)
    unit = work.next_unit()
    assert unit["id"] == "t-1"
    work.requeue(unit)
    assert work.get("t-1").state == "queued"
    assert work.get("t-1").requeues == 1
    # Requeued in-flight work outranks never-assigned work.
    assert work.next_unit()["id"] == "t-1"
    # Requeue of a cancelled unit dies silently.
    unit2 = work.next_unit()
    work.cancel(unit2["id"], now=1.0)
    work.requeue(unit2)
    assert work.next_unit() is None


@pytest.mark.parametrize("kind", ["memory", "file"])
def test_replay_requeues_nonterminal_preserves_terminal(kind, tmp_path):
    # A MemoryJournal survives a *simulated* restart as the same object;
    # a FileJournal survives a real one as the same path.
    memory = MemoryJournal()

    def make():
        if kind == "file":
            return FileJournal(str(tmp_path / "q.jsonl"))
        return memory

    journal = make()
    work = WorkQueue(journal=journal, prefix="t")
    work.submit({"a": 1}, now=1.0)   # will finish
    work.submit({"a": 2}, now=2.0)   # will be cancelled
    work.submit({"a": 3}, now=3.0)   # assigned at crash time
    work.submit({"a": 4}, now=4.0)   # still queued at crash time
    work.next_unit()                 # t-1 assigned
    work.complete("t-1", {"answer": 1}, now=5.0)
    work.cancel("t-2", now=6.0)
    work.next_unit()                 # t-3 assigned, crash before report
    work.close()

    reborn = WorkQueue(journal=make(), prefix="t")
    assert reborn.get("t-1").state == "done"
    assert reborn.get("t-1").result == {"answer": 1}
    assert reborn.get("t-2").state == "cancelled"
    # Queued AND assigned jobs come back queued — requeued, not dropped.
    assert reborn.get("t-3").state == "queued"
    assert reborn.get("t-4").state == "queued"
    assert len(reborn) == 2
    # Id allocation continues past the replayed high-water mark.
    assert reborn.submit({}, now=7.0).id == "t-5"


def test_replay_return_value_counts_requeued(tmp_path):
    journal = FileJournal(str(tmp_path / "q.jsonl"))
    work = WorkQueue(journal=journal, prefix="t")
    work.submit({}, now=0.0)
    work.submit({}, now=0.0)
    work.cancel("t-2", now=1.0)
    work.close()
    reborn = WorkQueue(journal=FileJournal(str(tmp_path / "q.jsonl")),
                       prefix="t")
    assert reborn.replay() == 1


def test_file_journal_survives_torn_tail_write(tmp_path):
    path = str(tmp_path / "q.jsonl")
    journal = FileJournal(path)
    work = WorkQueue(journal=journal, prefix="t")
    work.submit({"a": 1}, now=0.0)
    work.submit({"a": 2}, now=0.0)
    work.close()
    # A crash mid-append leaves a torn, unparseable last line.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "done", "id": "t-2", "resu')
    reborn = WorkQueue(journal=FileJournal(path), prefix="t")
    # The torn record is skipped; everything before it replays intact.
    assert reborn.get("t-1").state == "queued"
    assert reborn.get("t-2").state == "queued"


def test_stats_are_json_safe_counters():
    import json

    work = WorkQueue(prefix="t")
    work.submit({}, now=0.0)
    stats = work.stats()
    json.dumps(stats)
    assert stats["state_queued"] == 1
    assert stats["state_total"] == 1
    assert stats["depth"] == 1


# -- batch submission (POST /jobs/batch) ------------------------------------

class _SpyJournal(MemoryJournal):
    """Counts journal calls: a batch must cost ONE append_many."""

    def __init__(self):
        super().__init__()
        self.appends = 0
        self.batches = 0

    def append(self, record):
        self.appends += 1
        super().append(record)

    def append_many(self, records):
        self.batches += 1
        super().append_many(records)


def test_submit_batch_mints_ids_in_order_one_journal_call():
    spy = _SpyJournal()
    work = WorkQueue(journal=spy, prefix="t")
    jobs = work.submit_batch([{"i": 0}, {"i": 1}, {"i": 2}], now=1.0)
    assert [j.id for j in jobs] == ["t-1", "t-2", "t-3"]
    assert all(j.state == "queued" for j in jobs)
    assert (spy.appends, spy.batches) == (0, 1)  # one flush for N specs
    assert work.stats()["submitted"] == 3
    # FIFO: the batch drains in list order.
    assert [work.next_unit()["id"] for _ in range(3)] == ["t-1", "t-2", "t-3"]


def test_submit_batch_replays_like_single_submits(tmp_path):
    path = str(tmp_path / "q.jsonl")
    work = WorkQueue(journal=FileJournal(path), prefix="t")
    work.submit_batch([{"i": 0}, {"i": 1}], now=1.0)
    work.next_unit()                       # t-1 assigned at crash time
    work.close()
    reborn = WorkQueue(journal=FileJournal(path), prefix="t")
    assert reborn.get("t-1").state == "queued"   # requeued, not lost
    assert reborn.get("t-2").state == "queued"
    assert reborn.get("t-1").spec == {"i": 0}
    assert reborn.submit({}, now=2.0).id == "t-3"


# -- cancel vs in-flight completions (live AND replay must agree) -----------

def test_cancel_then_late_complete_live_and_replay_agree(tmp_path):
    path = str(tmp_path / "q.jsonl")
    work = WorkQueue(journal=FileJournal(path), prefix="t")
    work.submit({"a": 1}, now=0.0)
    unit = work.next_unit()
    work.cancel(unit["id"], now=1.0)
    # The client the scheduler assigned t-1 to reports late:
    work.complete(unit["id"], {"answer": 1}, now=2.0)
    assert work.get("t-1").state == "cancelled"
    assert work.get("t-1").result is None
    assert work.results_dropped == 1
    work.close()
    # Replay of the same journal must agree byte-for-byte on the state.
    reborn = WorkQueue(journal=FileJournal(path), prefix="t")
    assert reborn.get("t-1").state == "cancelled"
    assert reborn.get("t-1").result is None
    assert reborn.get("t-1").to_dict() == work.get("t-1").to_dict()


def test_replay_ignores_done_record_after_cancel(tmp_path):
    # A journal that *does* carry a done record after a cancel (e.g.
    # written by a pre-hardening gateway, or interleaved across a
    # restart) must not resurrect the job: terminal states are final.
    import json as _json

    path = str(tmp_path / "q.jsonl")
    records = [
        {"op": "submit", "id": "t-1", "spec": {"a": 1}, "t": 0.0},
        {"op": "cancel", "id": "t-1", "t": 1.0},
        {"op": "done", "id": "t-1", "result": {"answer": 1}, "t": 2.0},
    ]
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(_json.dumps(record) + "\n")
    work = WorkQueue(journal=FileJournal(path), prefix="t")
    assert work.get("t-1").state == "cancelled"
    assert work.get("t-1").result is None
    assert work.next_unit() is None


def test_replay_ignores_cancel_record_after_done(tmp_path):
    import json as _json

    path = str(tmp_path / "q.jsonl")
    records = [
        {"op": "submit", "id": "t-1", "spec": {"a": 1}, "t": 0.0},
        {"op": "done", "id": "t-1", "result": {"answer": 1}, "t": 1.0},
        {"op": "cancel", "id": "t-1", "t": 2.0},
    ]
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(_json.dumps(record) + "\n")
    work = WorkQueue(journal=FileJournal(path), prefix="t")
    assert work.get("t-1").state == "done"
    assert work.get("t-1").result == {"answer": 1}


# -- §3.1 result checks: distrust remote results ----------------------------

def _register_reject_kind():
    from repro.core.services.kinds import ResultCheckError, register_kind

    def check(spec, result):
        if not isinstance(result, dict) or result.get("bad"):
            raise ResultCheckError("corrupted result")

    register_kind("test.reject", check_result=check, replace=True,
                  description="test kind whose checker rejects bad=True")


def test_rejected_result_requeues_without_journal_record(tmp_path):
    _register_reject_kind()
    path = str(tmp_path / "q.jsonl")
    work = WorkQueue(journal=FileJournal(path), prefix="t")
    work.submit({"kind": "test.reject"}, now=0.0)
    unit = work.next_unit()
    work.complete(unit["id"], {"bad": True}, now=1.0)
    # Rejected: requeued for honest re-execution, nothing recorded.
    assert work.get("t-1").state == "queued"
    assert work.results_rejected == 1
    assert work.stats()["results_rejected"] == 1
    assert work.completed == 0
    unit = work.next_unit()
    work.complete(unit["id"], {"value": 7}, now=2.0)
    assert work.get("t-1").state == "done"
    assert work.get("t-1").result == {"value": 7}
    work.close()
    # The journal never saw the rejected completion.
    reborn = WorkQueue(journal=FileJournal(path), prefix="t")
    assert reborn.get("t-1").state == "done"
    assert reborn.get("t-1").result == {"value": 7}


def test_rejected_result_after_reaper_requeue_only_counts():
    _register_reject_kind()
    work = WorkQueue(prefix="t")
    work.submit({"kind": "test.reject"}, now=0.0)
    unit = work.next_unit()
    work.requeue(unit)                     # the reaper got there first
    work.complete(unit["id"], {"bad": True}, now=1.0)
    assert work.get("t-1").state == "queued"
    assert work.results_rejected == 1
    assert work.get("t-1").requeues == 1   # no double requeue


def test_unregistered_kind_results_accepted_unchecked():
    work = WorkQueue(prefix="t")
    work.submit({"kind": "noop"}, now=0.0)
    unit = work.next_unit()
    work.complete(unit["id"], {"bad": True}, now=1.0)
    assert work.get("t-1").state == "done"
    assert work.results_rejected == 0
