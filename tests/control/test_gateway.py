"""GatewayCore routing: one table, exercised sans-IO.

These are the semantics both planes inherit — the live HttpServer and
the simulated twin drive this exact router, so every status code and
idempotency rule proven here holds there too.
"""

import pytest

from repro.control import GatewayCore, WorkQueue


@pytest.fixture()
def core():
    return GatewayCore("gw-test", WorkQueue(prefix="t"))


def _json(obj) -> bytes:
    import json

    return json.dumps(obj).encode("utf-8")


def test_submit_returns_201_and_assigned_id(core):
    status, doc, route = core.handle(
        "POST", "/jobs", _json({"kind": "noop"}), now=1.0)
    assert (status, route) == (201, "POST /jobs")
    assert doc["id"] == "t-1"
    assert doc["state"] == "queued"
    assert doc["submitted_at"] == 1.0


def test_submit_rejects_malformed_bodies(core):
    for body in (b"{not json", b"", b"[1, 2]", b'"a string"',
                 _json({"id": "t-9", "kind": "forged"})):
        status, doc, route = core.handle("POST", "/jobs", body, now=0.0)
        assert status == 400, body
        assert "error" in doc
        assert route == "POST /jobs"
    assert core.rejected == 5
    assert len(core.work.jobs) == 0


def test_get_job_roundtrip_and_404(core):
    core.handle("POST", "/jobs", _json({"k": 8}), now=1.0)
    status, doc, route = core.handle("GET", "/jobs/t-1", b"", now=2.0)
    assert (status, route) == (200, "GET /jobs/{id}")
    assert doc["id"] == "t-1"
    assert doc["spec"] == {"k": 8}
    status, doc, _ = core.handle("GET", "/jobs/t-404", b"", now=2.0)
    assert status == 404


def test_cancel_idempotent_and_409_once_done(core):
    core.handle("POST", "/jobs", _json({}), now=0.0)
    status1, doc1, route = core.handle(
        "POST", "/jobs/t-1/cancel", b"", now=1.0)
    status2, doc2, _ = core.handle("POST", "/jobs/t-1/cancel", b"", now=2.0)
    assert route == "POST /jobs/{id}/cancel"
    assert (status1, status2) == (200, 200)  # double-cancel is idempotent
    assert doc1["state"] == doc2["state"] == "cancelled"
    assert doc2["finished_at"] == 1.0

    core.handle("POST", "/jobs", _json({}), now=3.0)
    core.work.next_unit()
    core.work.complete("t-2", {"answer": 1}, now=4.0)
    status, doc, _ = core.handle("POST", "/jobs/t-2/cancel", b"", now=5.0)
    assert status == 409
    assert doc["state"] == "done"
    status, _, _ = core.handle("POST", "/jobs/t-404/cancel", b"", now=5.0)
    assert status == 404


def test_list_queue_health_metrics(core):
    for i in range(3):
        core.handle("POST", "/jobs", _json({"i": i}), now=float(i))
    status, doc, _ = core.handle("GET", "/jobs", b"", now=3.0)
    assert status == 200
    assert doc["counts"]["queued"] == 3
    assert doc["jobs"] == ["t-1", "t-2", "t-3"]
    assert doc["truncated"] is False

    status, doc, _ = core.handle("GET", "/queue", b"", now=3.0)
    assert status == 200
    assert doc["depth"] == 3

    status, doc, _ = core.handle("GET", "/health", b"", now=10.0)
    assert status == 200
    assert doc["ok"] is True
    assert doc["node"] == "gw-test"
    assert doc["uptime"] == 10.0
    assert doc["jobs"]["queued"] == 3

    status, doc, _ = core.handle("GET", "/metrics.json", b"", now=10.0)
    assert status == 200
    assert any(k.startswith("http.requests") for k in doc["counters"])

    # /metrics itself is Prometheus text exposition now (DESIGN §14).
    status, text, _ = core.handle("GET", "/metrics", b"", now=10.0)
    assert status == 200
    assert isinstance(text, str)
    assert "http_requests" in text


def test_unknown_routes_404_wrong_methods_405(core):
    assert core.handle("GET", "/nope", b"", now=0.0)[0] == 404
    assert core.handle("DELETE", "/jobs", b"", now=0.0)[0] == 405
    assert core.handle("POST", "/jobs/t-1", b"", now=0.0)[0] == 405
    assert core.handle("GET", "/jobs/t-1/cancel", b"", now=0.0)[0] == 405
    assert core.handle("POST", "/health", b"", now=0.0)[0] == 404


def test_path_normalisation(core):
    core.handle("POST", "/jobs", _json({}), now=0.0)
    # Trailing slashes and query strings route identically.
    assert core.handle("GET", "/jobs/t-1/", b"", now=0.0)[0] == 200
    assert core.handle("GET", "/health?probe=1", b"", now=0.0)[0] == 200


def test_requests_accounted_per_route_and_status(core):
    core.handle("POST", "/jobs", _json({}), now=0.0)
    core.handle("GET", "/jobs/t-404", b"", now=0.0)
    assert core.requests == 2
    assert core.rejected == 1
    counters = core.telemetry.metrics.snapshot()["counters"]
    assert any("POST /jobs" in k and "201" in k for k in counters)
    assert any("404" in k for k in counters)


# -- POST /jobs/batch (one flush for a whole ME generation) -----------------

def test_batch_submit_returns_201_with_all_ids(core):
    status, doc, route = core.handle(
        "POST", "/jobs/batch",
        _json({"specs": [{"i": 0}, {"i": 1}, {"i": 2}]}), now=1.0)
    assert (status, route) == (201, "POST /jobs/batch")
    assert doc["ids"] == ["t-1", "t-2", "t-3"]
    assert doc["count"] == 3
    assert doc["state"] == "queued"
    assert doc["submitted_at"] == 1.0
    assert all(core.work.get(i).state == "queued" for i in doc["ids"])


def test_batch_submit_rejects_malformed_atomically(core):
    bad_bodies = (
        b"{not json",
        b"",
        _json([1, 2]),                      # not an object
        _json({"specs": []}),               # empty batch
        _json({"specs": "nope"}),           # not a list
        _json({"jobs": [{}]}),              # wrong key
        _json({"specs": [{"i": 0}, "nope"]}),          # non-dict spec
        _json({"specs": [{"i": 0}, {"id": "t-9"}]}),   # forged id
    )
    for body in bad_bodies:
        status, doc, route = core.handle(
            "POST", "/jobs/batch", body, now=0.0)
        assert status == 400, body
        assert "error" in doc
        assert route == "POST /jobs/batch"
    # Atomic: no spec from any rejected batch was accepted.
    assert len(core.work.jobs) == 0
    assert core.rejected == len(bad_bodies)


def test_batch_submit_caps_batch_size(core):
    from repro.control.gateway import MAX_BATCH_JOBS

    body = _json({"specs": [{} for _ in range(MAX_BATCH_JOBS + 1)]})
    status, doc, _ = core.handle("POST", "/jobs/batch", body, now=0.0)
    assert status == 400
    assert len(core.work.jobs) == 0


def test_batch_route_methods_and_id_routing(core):
    # Wrong method on the batch route is 405, not a /jobs/{id} lookup.
    assert core.handle("GET", "/jobs/batch", b"", now=0.0)[0] == 405
    assert core.handle("DELETE", "/jobs/batch", b"", now=0.0)[0] == 405
    # And /jobs/{id} still routes: "batch" is not a job id.
    core.handle("POST", "/jobs", _json({}), now=0.0)
    status, doc, route = core.handle("GET", "/jobs/t-1", b"", now=0.0)
    assert (status, route) == (200, "GET /jobs/{id}")
