"""End-to-end: the control plane as real OS processes on localhost.

One deliberately-small serve world (gateway + gossip + persistent +
logger + Ramsey client), one HTTP storm, one chaos SIGKILL of the
gateway mid-storm. This is the tier-1 guarantee for ROADMAP item 2: the
gateway serves real sockets, jobs flow to real clients, and no accepted
job is lost across a gateway kill/restart.
"""

import json

import pytest

from repro.control import ServeConfig, check_serve_invariants, run_serve


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("serveworld")
    config = ServeConfig(clients=1, gateways=1, gossips=1, persistents=1,
                         loggers=1, storm_clients=10, duration=6.0,
                         kill_at=2.5, seed=0)
    return run_serve(config, out=str(out)), out


def test_no_accepted_job_lost_across_kill_restart(report):
    rep, _ = report
    assert rep.violations == []
    assert rep.ok
    assert rep.accepted > 0
    assert rep.jobs_lost == []


def test_gateway_was_killed_and_restarted(report):
    rep, _ = report
    assert [c["node"] for c in rep.chaos] == ["gw0"]
    assert rep.nodes["gw0"]["restarts"] >= 1
    assert rep.nodes["gw0"]["incarnation"] >= 1


def test_storm_exercised_all_verbs(report):
    rep, _ = report
    assert rep.storm["submitted"] > 0
    assert rep.storm["queried"] > 0
    assert rep.storm["cancelled"] > 0


def test_every_accepted_id_reached_a_terminal_or_live_state(report):
    rep, _ = report
    assert sum(rep.job_states.values()) == rep.accepted
    assert set(rep.job_states) <= {"queued", "assigned", "done", "cancelled"}


def test_all_nodes_shipped_telemetry(report):
    rep, _ = report
    for name, node in rep.nodes.items():
        assert node["reports"] >= 1, name


def test_gateway_stats_include_job_meters(report):
    rep, _ = report
    jobs = rep.nodes["gw0"]["stats"].get("jobs", {})
    assert jobs.get("submitted", 0) > 0


def test_artifacts_parse_and_agree(report):
    rep, out = report
    loaded = json.loads((out / "report.json").read_text())
    assert loaded["ok"] is True
    assert loaded["accepted"] == rep.accepted
    assert (out / "manifest.json").exists()
    metrics = json.loads((out / "metrics.json").read_text())
    assert any(k.startswith("http.requests")
               for k in metrics.get("counters", {}))


def test_check_serve_invariants_flags_loss(report):
    rep, _ = report
    import copy

    broken = copy.copy(rep)
    broken.jobs_lost = ["t-1"]
    assert any("lost" in v for v in check_serve_invariants(broken))
