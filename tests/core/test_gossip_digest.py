"""Unit tests: digest/delta anti-entropy data plane (DESIGN §15)."""

import json

import pytest

from repro.core.gossip import (
    DIGEST_BUCKETS,
    ComparatorRegistry,
    StateDigest,
    StateRecord,
    bucket_of,
    freshness_hash,
    plan_exchange,
)


def rec(tag, stamp=1.0, origin="a/x", seq=1, data=None):
    return StateRecord(mtype=tag, data=data or {"v": 1}, stamp=stamp,
                       origin=origin, seq=seq)


def adopt(digest, record):
    digest.adopt(record, len(json.dumps(record.to_body())))


def build(records):
    digest = StateDigest()
    freshest = {}
    for r in records:
        freshest[r.mtype] = r
        adopt(digest, r)
    return digest, freshest


def test_freshness_hash_identifies_the_write():
    assert freshness_hash("T", 1.0, 1, "a") == freshness_hash("T", 1.0, 1, "a")
    assert freshness_hash("T", 1.0, 1, "a") != freshness_hash("T", 2.0, 1, "a")
    assert freshness_hash("T", 1.0, 1, "a") != freshness_hash("T", 1.0, 2, "a")
    assert freshness_hash("T", 1.0, 1, "a") != freshness_hash("T", 1.0, 1, "b")
    assert freshness_hash("T", 1.0, 1, "a") != freshness_hash("U", 1.0, 1, "a")


def test_bucket_assignment_is_stable_and_in_range():
    for tag in ("A", "B", "LONG_TAG_NAME", "x" * 100):
        b = bucket_of(tag)
        assert 0 <= b < DIGEST_BUCKETS
        assert bucket_of(tag) == b


def test_adopt_is_incremental_and_order_independent():
    records = [rec(f"T{i}", stamp=float(i)) for i in range(10)]
    d1, _ = build(records)
    d2, _ = build(list(reversed(records)))
    assert d1.root == d2.root
    assert d1.buckets == d2.buckets
    assert d1.count == 10


def test_replacing_a_record_updates_not_grows():
    d, _ = build([rec("T", stamp=1.0)])
    before_bytes = d.entry_bytes
    d.adopt(rec("T", stamp=2.0), before_bytes + 7)
    assert d.count == 1
    assert d.entry_bytes == before_bytes + 7
    # Replacing back restores the exact same digest (XOR involution).
    d.adopt(rec("T", stamp=1.0), before_bytes)
    d2, _ = build([rec("T", stamp=1.0)])
    assert d.root == d2.root


def test_forget_removes_cleanly():
    d, _ = build([rec("A"), rec("B")])
    d.forget("B")
    only_a, _ = build([rec("A")])
    assert d.root == only_a.root
    assert d.count == 1
    d.forget("B")  # idempotent
    assert d.count == 1


def test_converged_digests_report_no_divergence():
    records = [rec(f"T{i}") for i in range(20)]
    d1, _ = build(records)
    d2, _ = build(records)
    assert d1.root == d2.root
    assert d1.diverged_buckets(d2.buckets) == []


def test_divergence_is_localized_to_buckets():
    records = [rec(f"T{i}") for i in range(20)]
    d1, f1 = build(records)
    changed = rec("T3", stamp=9.0)
    d2, f2 = build(records)
    d2.adopt(changed, 10)
    f2["T3"] = changed
    diverged = d1.diverged_buckets(d2.buckets)
    assert diverged == [bucket_of("T3")]
    entries = d2.entries_for(f2, diverged)
    tags = [e[0] for e in entries]
    assert "T3" in tags
    # Only same-bucket tags ride along, never the whole state.
    assert all(bucket_of(t) == bucket_of("T3") for t in tags)


def test_plan_exchange_ships_fresher_and_wants_staler():
    comparators = ComparatorRegistry()
    base = [rec("A", stamp=1.0), rec("B", stamp=1.0), rec("C", stamp=1.0)]
    digest, freshest = build(base)
    # Peer: fresher A, staler B (same C).
    peer_entries = [
        ["A", 5.0, 1, "a/x", freshness_hash("A", 5.0, 1, "a/x")],
        ["B", 0.5, 1, "a/x", freshness_hash("B", 0.5, 1, "a/x")],
        ["C", 1.0, 1, "a/x", freshness_hash("C", 1.0, 1, "a/x")],
    ]
    ship, want, comparisons = plan_exchange(
        freshest, digest, comparators, peer_entries)
    assert [r.mtype for r in ship] == ["B"]
    assert want == ["A"]
    assert comparisons == 2  # C short-circuits on hash equality


def test_plan_exchange_missing_records_both_ways():
    comparators = ComparatorRegistry()
    digest, freshest = build([rec("MINE")])
    peer_entries = [["THEIRS", 1.0, 1, "b/x",
                     freshness_hash("THEIRS", 1.0, 1, "b/x")]]
    ship, want, _ = plan_exchange(
        freshest, digest, comparators, peer_entries,
        buckets=range(DIGEST_BUCKETS))
    # We want what they listed and we lack; we ship what they never
    # listed in the scoped buckets.
    assert want == ["THEIRS"]
    assert [r.mtype for r in ship] == ["MINE"]


def test_custom_comparator_forces_full_exchange():
    comparators = ComparatorRegistry()
    comparators.register("RAMSEY", lambda a, b: (a.data["k"] > b.data["k"])
                         - (a.data["k"] < b.data["k"]))
    assert comparators.is_custom("RAMSEY")
    assert not comparators.is_custom("PLAIN")
    mine = rec("RAMSEY", stamp=9.0, data={"k": 10})
    digest, freshest = build([mine])
    # The peer's version triple looks *newer*, but triples cannot order a
    # custom-compared type: both sides must see both records.
    peer_entries = [["RAMSEY", 99.0, 7, "b/x",
                     freshness_hash("RAMSEY", 99.0, 7, "b/x")]]
    ship, want, comparisons = plan_exchange(
        freshest, digest, comparators, peer_entries)
    assert [r.mtype for r in ship] == ["RAMSEY"]
    assert want == ["RAMSEY"]
    assert comparisons == 0  # decision deferred to each side's comparator


def test_plan_exchange_tolerates_malformed_entries():
    comparators = ComparatorRegistry()
    digest, freshest = build([rec("A")])
    ship, want, _ = plan_exchange(
        freshest, digest, comparators,
        [["bad"], [], [None, None, None, None, None], 42,
         ["B", "not-a-stamp", 1, "x", 0]])
    assert ship == []
    assert want == []
