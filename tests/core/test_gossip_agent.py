"""Isolated unit tests for the client-side GossipAgent."""

import pytest

from repro.core.component import LogLine, Send, SetTimer
from repro.core.gossip.agent import GossipAgent
from repro.core.gossip.state import StateRecord, StateStore
from repro.core.linguafranca.messages import Message


CONTACT = "cli/app"
WK = ["gos0/gossip", "gos1/gossip"]


def make_agent(register_period=60.0):
    store = StateStore(CONTACT)
    store.register("NOTE")
    return GossipAgent(store, WK, register_period=register_period), store


def sends_of(effects):
    return [e for e in effects if isinstance(e, Send)]


def msg(mtype, sender="gos0/gossip", body=None):
    return Message(mtype=mtype, sender=sender, body=body or {})


def test_requires_well_known():
    with pytest.raises(ValueError):
        GossipAgent(StateStore(CONTACT), [])


def test_start_registers_round_robin():
    agent, _ = make_agent()
    first = sends_of(agent.on_start(0.0, CONTACT))
    assert first[0].dst == "gos0/gossip"
    assert first[0].message.mtype == "GOS_REG"
    assert first[0].message.body == {"types": ["NOTE"]}
    # A second registration attempt rotates to the next well-known.
    second = sends_of(agent._register(CONTACT))
    assert second[0].dst == "gos1/gossip"


def test_reg_ok_records_pool_view():
    agent, _ = make_agent()
    agent.on_start(0.0, CONTACT)
    agent.on_message(msg("GOS_REG_OK", body={"gossips": ["a/g", "b/g"]}),
                     1.0, CONTACT)
    assert agent.registered_with == "gos0/gossip"
    assert agent.known_gossips == ["a/g", "b/g"]


def test_poll_returns_current_records():
    agent, store = make_agent()
    agent.on_start(0.0, CONTACT)
    store.set_local("NOTE", {"v": 7}, 5.0)
    effects = agent.on_message(msg("GOS_POLL"), 6.0, CONTACT)
    (send,) = sends_of(effects)
    assert send.message.mtype == "GOS_STATE"
    (record,) = send.message.body["records"]
    assert record["d"] == {"v": 7}
    assert agent.last_poll_seen == 6.0


def test_update_applies_only_registered_fresher_records():
    agent, store = make_agent()
    agent.on_start(0.0, CONTACT)
    store.set_local("NOTE", {"v": 1}, 5.0)
    fresh = StateRecord("NOTE", {"v": 2}, 10.0, "other/app", 1)
    foreign = StateRecord("OTHER_TYPE", {"x": 1}, 10.0, "other/app", 1)
    stale = StateRecord("NOTE", {"v": 0}, 1.0, "other/app", 1)
    agent.on_message(msg("GOS_UPDATE", body={
        "records": [fresh.to_body(), foreign.to_body(), stale.to_body(),
                    "garbage"]}), 11.0, CONTACT)
    assert store.get_data("NOTE") == {"v": 2}
    assert agent.updates_applied == 1
    assert "OTHER_TYPE" not in store.types()


def test_rereg_timer_quiet_when_polled_recently():
    agent, _ = make_agent(register_period=60)
    agent.on_start(0.0, CONTACT)
    agent.on_message(msg("GOS_REG_OK"), 1.0, CONTACT)
    agent.on_message(msg("GOS_POLL"), 30.0, CONTACT)
    effects = agent.on_timer("gosagent:rereg", 60.0, CONTACT)
    assert not sends_of(effects)  # healthy: no re-registration
    assert any(isinstance(e, SetTimer) for e in effects)


def test_rereg_timer_reregisters_after_silence():
    agent, _ = make_agent(register_period=60)
    agent.on_start(0.0, CONTACT)
    agent.on_message(msg("GOS_REG_OK"), 1.0, CONTACT)
    agent.on_message(msg("GOS_POLL"), 5.0, CONTACT)
    effects = agent.on_timer("gosagent:rereg", 120.0, CONTACT)
    sends = sends_of(effects)
    assert sends and sends[0].message.mtype == "GOS_REG"
    assert any(isinstance(e, LogLine) for e in effects)


def test_push_targets_registered_gossip():
    agent, store = make_agent()
    agent.on_start(0.0, CONTACT)
    store.set_local("NOTE", {"v": 1}, 2.0)
    # Before REG_OK, push falls back to the first well-known.
    (send,) = sends_of(agent.push(CONTACT))
    assert send.dst == "gos0/gossip"
    agent.on_message(msg("GOS_REG_OK", sender="gos1/gossip"), 3.0, CONTACT)
    (send,) = sends_of(agent.push(CONTACT))
    assert send.dst == "gos1/gossip"
    assert send.message.mtype == "GOS_STATE"


def test_handles_classifiers():
    assert GossipAgent.handles("GOS_POLL")
    assert GossipAgent.handles("GOS_UPDATE")
    assert GossipAgent.handles("GOS_REG_OK")
    assert not GossipAgent.handles("SCH_WORK")
    assert GossipAgent.handles_timer("gosagent:rereg")
    assert not GossipAgent.handles_timer("cli:work")
