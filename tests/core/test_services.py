"""Tests for scheduler, persistent state manager, and logging servers."""

import pytest

from repro.core.component import NullRuntime, Send, SetTimer
from repro.core.linguafranca.messages import Message
from repro.core.services import (
    LoggingServer,
    MemoryBackend,
    PersistentStateServer,
    QueueWorkSource,
    SchedulerServer,
    ValidationError,
)
from repro.core.services.persistent import DirectoryBackend
from repro.core.services.scheduler import RATE, SCH_DIRECTIVE, SCH_HELLO, SCH_REPORT, SCH_WORK


def bound(component, contact="srv/1"):
    component.bind_runtime(NullRuntime(contact=contact))
    return component


def sends_of(effects):
    return [e for e in effects if isinstance(e, Send)]


def msg(mtype, sender="cli/1", body=None, req_id=1):
    return Message(mtype=mtype, sender=sender, body=body or {}, req_id=req_id)


# ---------------------------------------------------------------- scheduler


def make_scheduler(units=None, **kw):
    work = QueueWorkSource(units if units is not None
                           else [{"id": f"u{i}", "seed": i} for i in range(10)])
    sched = bound(SchedulerServer("sched", work, **kw))
    sched.on_start(0.0)
    return sched, work


def test_hello_assigns_unit():
    sched, work = make_scheduler()
    effects = sched.on_message(msg(SCH_HELLO, body={"infra": "condor"}), now=1.0)
    (send,) = sends_of(effects)
    assert send.dst == "cli/1"
    assert send.message.mtype == SCH_WORK
    assert send.message.body["unit"]["id"] == "u0"
    assert sched.stats.units_assigned == 1
    assert sched.active_clients() == ["cli/1"]


def test_hello_idempotent_keeps_same_unit():
    sched, work = make_scheduler()
    first = sends_of(sched.on_message(msg(SCH_HELLO), 1.0))[0]
    second = sends_of(sched.on_message(msg(SCH_HELLO), 2.0))[0]
    assert first.message.body["unit"] == second.message.body["unit"]
    assert sched.stats.units_assigned == 1


def test_empty_work_source_gives_none_unit():
    sched, work = make_scheduler(units=[])
    (send,) = sends_of(sched.on_message(msg(SCH_HELLO), 1.0))
    assert send.message.body["unit"] is None


def test_generator_backed_source_never_dry():
    work = QueueWorkSource(generator=lambda n: {"id": f"gen{n}"})
    sched = bound(SchedulerServer("s", work))
    (send,) = sends_of(sched.on_message(msg(SCH_HELLO), 1.0))
    assert send.message.body["unit"]["id"] == "gen1"


def test_report_continue_directive():
    sched, _ = make_scheduler()
    sched.on_message(msg(SCH_HELLO), 1.0)
    effects = sched.on_message(
        msg(SCH_REPORT, body={"unit_id": "u0", "rate": 1e6, "ops": 3e7}), 30.0
    )
    (send,) = sends_of(effects)
    assert send.message.mtype == SCH_DIRECTIVE
    assert send.message.body["action"] == "continue"


def test_report_done_gets_new_work_and_completes():
    sched, work = make_scheduler()
    sched.on_message(msg(SCH_HELLO), 1.0)
    effects = sched.on_message(
        msg(SCH_REPORT, body={"unit_id": "u0", "rate": 1e6, "done": True,
                              "result": {"best": 2}}), 30.0
    )
    (send,) = sends_of(effects)
    assert send.message.body["action"] == "new_work"
    assert send.message.body["unit"]["id"] == "u1"
    assert work.completed == {"u0": {"best": 2}}
    assert sched.stats.units_completed == 1


def test_slow_client_migrated_to_fresh_unit():
    sched, work = make_scheduler(migrate_fraction=0.25, min_rate_samples=3)
    # Three fast clients and one painfully slow one.
    for i, c in enumerate(["fast1/x", "fast2/x", "fast3/x", "slow/x"]):
        sched.on_message(msg(SCH_HELLO, sender=c), 1.0)
    t = 10.0
    action = None
    for round_ in range(6):
        for c, rate in [("fast1/x", 1e7), ("fast2/x", 1.1e7), ("fast3/x", 0.9e7),
                        ("slow/x", 1e4)]:
            effects = sched.on_message(
                msg(SCH_REPORT, sender=c,
                    body={"unit_id": "u", "rate": rate,
                          "progress": {"best_energy": 5}}), t)
            if c == "slow/x":
                action = sends_of(effects)[0].message.body["action"]
            t += 1.0
        if action == "migrate":
            break
    assert action == "migrate"
    assert sched.stats.migrations >= 1
    # The migrated unit went back to the head of the queue with resume info.
    recycled = work.next_unit()
    assert recycled["resume"] == {"best_energy": 5}


def test_no_migration_with_few_clients():
    sched, _ = make_scheduler()
    sched.on_message(msg(SCH_HELLO, sender="a/x"), 1.0)
    for i in range(10):
        effects = sched.on_message(
            msg(SCH_REPORT, sender="a/x", body={"rate": 1.0}), float(i))
        assert sends_of(effects)[0].message.body["action"] == "continue"


def test_reaper_requeues_silent_clients_unit():
    sched, work = make_scheduler(report_period=30, dead_factor=2)
    sched.on_message(msg(SCH_HELLO, sender="ghost/x"), 1.0)
    before = len(work)
    effects = sched.on_timer("sch:reap", now=1000.0)
    assert sched.stats.reaps == 1
    assert sched.active_clients() == []
    assert len(work) == before + 1  # unit recycled
    # Reaper rearms itself.
    assert any(isinstance(e, SetTimer) for e in effects)


def test_unknown_reporter_adopted():
    sched, _ = make_scheduler()
    effects = sched.on_message(msg(SCH_REPORT, sender="orphan/x", body={"rate": 5.0}), 3.0)
    assert sched.active_clients() == ["orphan/x"]
    assert sends_of(effects)[0].message.body["action"] == "continue"


# ---------------------------------------------------------------- persistent


def make_pst(**kw):
    srv = bound(PersistentStateServer("pst", **kw))
    return srv


def test_store_and_fetch():
    srv = make_pst()
    effects = srv.on_message(msg("PST_STORE", body={"key": "best", "object": {"n": 5}}), 1.0)
    assert sends_of(effects)[0].message.mtype == "PST_STORE_OK"
    effects = srv.on_message(msg("PST_FETCH", body={"key": "best"}), 2.0)
    reply = sends_of(effects)[0].message
    assert reply.mtype == "PST_VALUE"
    assert reply.body["object"] == {"n": 5}


def test_fetch_missing():
    srv = make_pst()
    effects = srv.on_message(msg("PST_FETCH", body={"key": "nope"}), 1.0)
    assert sends_of(effects)[0].message.mtype == "PST_MISSING"
    assert srv.stats.misses == 1


def test_store_malformed_denied():
    srv = make_pst()
    for body in ({"object": {}}, {"key": "k"}, {"key": "", "object": {}},
                 {"key": "k", "object": "notdict"}):
        effects = srv.on_message(msg("PST_STORE", body=body), 1.0)
        assert sends_of(effects)[0].message.mtype == "PST_DENIED"


def test_validator_rejects_bad_object():
    srv = make_pst()

    def must_have_proof(key, obj):
        if "proof" not in obj:
            raise ValidationError("no proof supplied")

    srv.add_validator(must_have_proof)
    effects = srv.on_message(msg("PST_STORE", body={"key": "k", "object": {"x": 1}}), 1.0)
    reply = sends_of(effects)[0].message
    assert reply.mtype == "PST_DENIED"
    assert "no proof" in reply.body["reason"]
    ok = srv.on_message(msg("PST_STORE", body={"key": "k", "object": {"proof": []}}), 2.0)
    assert sends_of(ok)[0].message.mtype == "PST_STORE_OK"


def test_object_quota():
    srv = make_pst(max_objects=2)
    for i in range(2):
        effects = srv.on_message(
            msg("PST_STORE", body={"key": f"k{i}", "object": {}}), 1.0)
        assert sends_of(effects)[0].message.mtype == "PST_STORE_OK"
    effects = srv.on_message(msg("PST_STORE", body={"key": "k2", "object": {}}), 1.0)
    assert sends_of(effects)[0].message.mtype == "PST_DENIED"
    # Updating an existing key is still allowed at quota.
    effects = srv.on_message(msg("PST_STORE", body={"key": "k0", "object": {"v": 2}}), 1.0)
    assert sends_of(effects)[0].message.mtype == "PST_STORE_OK"


def test_byte_quota():
    srv = make_pst(max_bytes=64)
    big = {"blob": "x" * 200}
    assert sends_of(srv.on_message(msg("PST_STORE", body={"key": "a", "object": big}), 1.0))[
        0].message.mtype == "PST_STORE_OK"  # first store takes us past quota
    effects = srv.on_message(msg("PST_STORE", body={"key": "b", "object": {}}), 1.0)
    assert sends_of(effects)[0].message.mtype == "PST_DENIED"


def test_list_with_prefix():
    srv = make_pst()
    for key in ("ramsey/r5/best", "ramsey/r6/best", "other"):
        srv.on_message(msg("PST_STORE", body={"key": key, "object": {}}), 1.0)
    effects = srv.on_message(msg("PST_LIST", body={"prefix": "ramsey/"}), 2.0)
    keys = sends_of(effects)[0].message.body["keys"]
    assert keys == ["ramsey/r5/best", "ramsey/r6/best"]


def test_directory_backend_roundtrip(tmp_path):
    be = DirectoryBackend(str(tmp_path / "store"))
    be.put("ramsey/r5", {"size": 44})
    assert be.get("ramsey/r5") == {"size": 44}
    assert be.get("missing") is None
    assert be.keys() == ["ramsey_r5"]
    assert be.size_bytes() > 0
    # Overwrite is atomic and reflected.
    be.put("ramsey/r5", {"size": 45})
    assert be.get("ramsey/r5") == {"size": 45}


def test_directory_backend_sanitizes_keys(tmp_path):
    be = DirectoryBackend(str(tmp_path))
    be.put("../../evil", {"x": 1})
    files = list((tmp_path).iterdir())
    assert all(f.parent == tmp_path for f in files)


# ---------------------------------------------------------------- logging


def test_log_append_and_query():
    srv = bound(LoggingServer("log"))
    srv.on_message(msg("LOG_APPEND", body={"records": [
        {"k": "perf", "d": {"rate": 100}},
        {"k": "event", "d": {"what": "started"}},
    ]}), 5.0)
    assert srv.appended == 2
    effects = srv.on_message(msg("LOG_QUERY", body={"kind": "perf"}), 6.0)
    records = sends_of(effects)[0].message.body["records"]
    assert records == [{"ts": 5.0, "src": "cli/1", "k": "perf", "d": {"rate": 100}}]


def test_log_query_since_and_limit():
    srv = bound(LoggingServer("log"))
    for t in (1.0, 2.0, 3.0):
        srv.on_message(msg("LOG_APPEND", body={"records": [{"k": "perf", "d": {"t": t}}]}), t)
    effects = srv.on_message(msg("LOG_QUERY", body={"since": 2.0, "limit": 1}), 9.0)
    records = sends_of(effects)[0].message.body["records"]
    assert len(records) == 1
    assert records[0]["d"] == {"t": 2.0}


def test_log_capacity_drops():
    srv = bound(LoggingServer("log", max_records=1))
    srv.on_message(msg("LOG_APPEND", body={"records": [{"k": "a", "d": {}},
                                                       {"k": "b", "d": {}}]}), 1.0)
    assert srv.appended == 1
    assert srv.dropped == 1


def test_log_malformed_records_ignored():
    srv = bound(LoggingServer("log"))
    srv.on_message(msg("LOG_APPEND", body={"records": ["junk", {"k": "ok", "d": "bad"}]}), 1.0)
    assert srv.appended == 1  # the dict one, with data coerced to {}
    assert srv.records[0].data == {}


def test_log_by_kind_accessor():
    srv = bound(LoggingServer("log"))
    srv.on_message(msg("LOG_APPEND", body={"records": [{"k": "perf", "d": {}},
                                                       {"k": "other", "d": {}}]}), 1.0)
    assert len(srv.by_kind("perf")) == 1


def test_stall_reheat_policy_fires_for_stalled_annealer():
    from repro.core.services.scheduler import stall_reheat_policy, _ClientState

    client = _ClientState(contact="c/1", infra="unix",
                          unit={"id": "u", "heuristic": "anneal"})
    body = {"progress": {"best_energy": 7}}
    results = [stall_reheat_policy(client, body) for _ in range(4)]
    assert results[:3] == [None, None, None]
    assert results[3] == {"reheat": True}
    # Counter reset after firing; improvement also resets it.
    assert stall_reheat_policy(client, {"progress": {"best_energy": 5}}) is None
    assert client.stalled_reports == 0


def test_stall_reheat_policy_ignores_tabu_clients():
    from repro.core.services.scheduler import stall_reheat_policy, _ClientState

    client = _ClientState(contact="c/1", infra="unix",
                          unit={"id": "u", "heuristic": "tabu"})
    for _ in range(10):
        assert stall_reheat_policy(client, {"progress": {"best_energy": 7}}) is None


def test_scheduler_attaches_params_to_continue_directive():
    sched, _ = make_scheduler()
    sched.on_message(msg(SCH_HELLO, body={"infra": "x"}), 1.0)
    # Force the client's unit to be an annealer so the policy applies.
    sched.clients["cli/1"].unit = {"id": "u0", "heuristic": "anneal"}
    last = None
    for i in range(4):
        effects = sched.on_message(
            msg(SCH_REPORT, body={"unit_id": "u0", "rate": 1.0,
                                  "progress": {"best_energy": 9}}), float(i))
        last = sends_of(effects)[0].message.body
    assert last["action"] == "continue"
    assert last.get("params") == {"reheat": True}
    assert sched.stats.param_directives == 1


def test_scheduler_policy_can_be_disabled():
    work = QueueWorkSource([{"id": "u0", "heuristic": "anneal"}])
    sched = bound(SchedulerServer("s", work, control_policy=None))
    sched.on_message(msg(SCH_HELLO), 1.0)
    for i in range(5):
        effects = sched.on_message(
            msg(SCH_REPORT, body={"unit_id": "u0", "rate": 1.0,
                                  "progress": {"best_energy": 9}}), float(i))
        assert "params" not in sends_of(effects)[0].message.body


def test_log_query_zero_and_negative_limit_return_nothing():
    """limit<=0 must clamp to "no records" — the old post-append bound
    check returned one record for limit=0."""
    srv = bound(LoggingServer("log"))
    for t in (1.0, 2.0):
        srv.on_message(msg("LOG_APPEND",
                           body={"records": [{"k": "perf", "d": {"t": t}}]}), t)
    for limit in (0, -1, -100):
        effects = srv.on_message(msg("LOG_QUERY", body={"limit": limit}), 9.0)
        assert sends_of(effects)[0].message.body["records"] == []
    # And a positive limit still works.
    effects = srv.on_message(msg("LOG_QUERY", body={"limit": 2}), 9.0)
    assert len(sends_of(effects)[0].message.body["records"]) == 2


# ------------------------------------------------- scheduler reliable sends


def test_unit_assignments_are_reliable_sends():
    sched, work = make_scheduler()
    (send,) = sends_of(sched.on_message(msg(SCH_HELLO), 1.0))
    assert send.retry is not None
    assert send.label == "assign:cli/1"
    # A unit-less directive stays fire-and-forget.
    sched.clients["cli/1"].unit = None
    work._queue.clear()
    (send,) = sends_of(sched.on_message(
        msg(SCH_REPORT, body={"rate": 1.0, "unit_id": None}), 2.0))
    assert send.message.mtype == SCH_DIRECTIVE
    assert send.retry is None


def test_assign_retry_none_restores_fire_and_forget():
    sched, work = make_scheduler(assign_retry=None)
    (send,) = sends_of(sched.on_message(msg(SCH_HELLO), 1.0))
    assert send.message.body["unit"] is not None
    assert send.retry is None
    assert send.label is None


def test_ack_updates_last_seen():
    from repro.core.services.scheduler import SCH_ACK

    sched, work = make_scheduler()
    sched.on_message(msg(SCH_HELLO), 1.0)
    effects = sched.on_message(msg(SCH_ACK, body={"unit_id": "u0"}), 5.0)
    assert effects == []
    assert sched.clients["cli/1"].last_seen == 5.0


def test_give_up_requeues_unit_immediately():
    sched, work = make_scheduler()
    (send,) = sends_of(sched.on_message(msg(SCH_HELLO), 1.0))
    assert sched.clients["cli/1"].unit["id"] == "u0"
    sched.on_send_failed(send, 60.0)
    assert sched.clients["cli/1"].unit is None
    assert sched.stats.units_requeued == 1
    # The lost unit comes back out first (priority requeue).
    assert work.next_unit()["id"] == "u0"


def test_give_up_after_client_moved_on_does_not_clone_work():
    """A late give-up for a unit the client already traded in must not
    requeue it: the client would run u0's twin while someone else gets
    the original."""
    sched, work = make_scheduler()
    (send,) = sends_of(sched.on_message(msg(SCH_HELLO), 1.0))
    # The client finished u0 and got u1 before the give-up fired.
    sched.on_message(msg(SCH_REPORT, body={
        "rate": 5.0, "unit_id": "u0", "done": True}), 30.0)
    assert sched.clients["cli/1"].unit["id"] == "u1"
    sched.on_send_failed(send, 60.0)
    assert sched.clients["cli/1"].unit["id"] == "u1"  # untouched
    assert sched.stats.units_requeued == 0
