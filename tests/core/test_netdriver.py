"""The same sans-IO components on real TCP: NetDriver tests.

These run actual localhost sockets; drivers are pumped from threads in
the tests (the library itself stays single-threaded)."""

import threading
import time

import pytest

from repro.core.component import Component, Send, SetTimer, Stop
from repro.core.gossip import ComparatorRegistry, GossipAgent, GossipServer, StateStore
from repro.core.linguafranca.messages import Message
from repro.core.netdriver import NetDriver


class DriverThread:
    def __init__(self, *drivers):
        self.drivers = drivers
        self._stop = threading.Event()
        self.threads = [
            threading.Thread(target=self._pump, args=(d,), daemon=True)
            for d in drivers
        ]

    def _pump(self, driver):
        driver.start()
        while not self._stop.is_set():
            driver.step(0.02)

    def __enter__(self):
        for t in self.threads:
            t.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        for t in self.threads:
            t.join(timeout=2)
        for d in self.drivers:
            d.close()


class EchoComponent(Component):
    def __init__(self):
        super().__init__("echo")
        self.seen = []

    def on_message(self, message, now):
        self.seen.append(message.mtype)
        if message.mtype == "PING":
            return [Send(message.sender, message.reply("PONG", sender=self.contact))]
        return []


class TickerComponent(Component):
    def __init__(self, period=0.05, limit=3):
        super().__init__("ticker")
        self.period = period
        self.limit = limit
        self.ticks = 0

    def on_start(self, now):
        return [SetTimer("tick", self.period)]

    def on_timer(self, key, now):
        self.ticks += 1
        if self.ticks >= self.limit:
            return [Stop("done")]
        return [SetTimer("tick", self.period)]


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def test_timers_fire_on_wall_clock():
    comp = TickerComponent(period=0.03, limit=3)
    driver = NetDriver(comp)
    reason = driver.run(duration=2.0)
    driver.close()
    assert comp.ticks == 3
    assert reason == "done"


def test_two_components_message_over_real_sockets():
    echo = EchoComponent()
    echo_driver = NetDriver(echo)

    class Caller(Component):
        def __init__(self, target):
            super().__init__("caller")
            self.target = target
            self.got = []

        def on_start(self, now):
            return [Send(self.target, Message(mtype="PING", sender=self.contact,
                                              req_id=1))]

        def on_message(self, message, now):
            self.got.append(message.mtype)
            return []

    echo_driver.start()
    caller = Caller(echo_driver.contact)
    caller_driver = NetDriver(caller)
    with DriverThread(echo_driver, caller_driver):
        assert wait_until(lambda: caller.got == ["PONG"])
    assert echo.seen == ["PING"]


def test_send_to_dead_peer_is_silent():
    class Talker(Component):
        def on_start(self, now):
            return [Send("127.0.0.1:1", Message(mtype="X", sender=self.contact))]

    driver = NetDriver(Talker("talker"))
    driver.start()
    driver.close()
    assert driver.send_errors == 1  # recorded, not raised — fire-and-forget


def test_real_gossip_pool_over_tcp():
    """An actual GossipServer + a component agent on localhost sockets:
    registration, polling, and update delivery all over real TCP."""
    comparators = ComparatorRegistry()
    gossip = GossipServer("gos0", well_known=[], comparators=comparators,
                          poll_period=0.1, sync_period=0.3,
                          token_period=0.2, token_timeout=1.0)
    gossip_driver = NetDriver(gossip)
    gossip_driver.start()
    gossip.well_known.append(gossip_driver.contact)

    class Worker(Component):
        def __init__(self, well_known):
            super().__init__("worker")
            self.well_known = well_known
            self.store = None
            self.agent = None

        def on_start(self, now):
            self.store = StateStore(self.contact)
            self.store.register("NOTE", initial={"v": 1}, now=now)
            self.agent = GossipAgent(self.store, self.well_known,
                                     register_period=0.5)
            return self.agent.on_start(now, self.contact)

        def on_message(self, message, now):
            if GossipAgent.handles(message.mtype):
                return self.agent.on_message(message, now, self.contact)
            return []

        def on_timer(self, key, now):
            if GossipAgent.handles_timer(key):
                return self.agent.on_timer(key, now, self.contact)
            return []

    worker = Worker([gossip_driver.contact])
    worker_driver = NetDriver(worker)

    with DriverThread(gossip_driver, worker_driver):
        assert wait_until(lambda: worker.agent is not None
                          and worker.agent.registered_with is not None)
        assert wait_until(lambda: gossip.stats.states_received >= 1)
    assert worker.contact in gossip.registry
    assert gossip.freshest["NOTE"].data == {"v": 1}


def test_netdriver_default_timeout_policy_is_forecast_driven():
    driver = NetDriver(EchoComponent())
    try:
        assert driver.timeout_policy.dynamic
        assert driver.timeout_policy.timeout_for() == pytest.approx(2.0)
    finally:
        driver.close()


def test_netdriver_send_timeout_kwarg_removed():
    with pytest.raises(TypeError, match="timeout_policy"):
        NetDriver(EchoComponent(), send_timeout=1.5)


def test_netdriver_explicit_policy_wins_silently():
    import warnings

    from repro.core.policy import TimeoutPolicy

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        driver = NetDriver(EchoComponent(),
                           timeout_policy=TimeoutPolicy.static(3.0))
    try:
        assert driver.timeout_policy.timeout_for() == 3.0
    finally:
        driver.close()


# -- graceful shutdown (live-plane satellite) --------------------------------


class IdleComponent(Component):
    """No timers, no sends: shutdown-path scaffolding."""


def test_request_stop_breaks_run_loop():
    driver = NetDriver(IdleComponent("idle"))
    try:
        driver.request_stop("external")
        driver.request_stop("late")  # first reason wins
        reason = driver.run(5.0)
        assert reason == "external"
        assert driver.stop_reason == "external"
    finally:
        driver.shutdown()


def test_shutdown_runs_drain_hooks_once_and_survives_raising_hooks():
    driver = NetDriver(IdleComponent("idle"))
    calls = []
    driver.drain_hooks.append(lambda: calls.append("first"))
    driver.drain_hooks.append(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    driver.drain_hooks.append(lambda: calls.append("last"))
    driver.start()
    reason = driver.shutdown()
    assert calls == ["first", "last"]
    assert driver.shutdown() == reason  # idempotent, hooks not re-run
    assert calls == ["first", "last"]


def test_shutdown_cancels_timers_and_closes_sockets():
    driver = NetDriver(TickerComponent())
    driver.start()
    assert driver._timers
    driver.shutdown()
    assert not driver._timers
    with pytest.raises(Exception):
        driver.server.step(0.01)  # server socket is gone


def test_sigterm_translates_to_graceful_stop():
    import os
    import signal

    driver = NetDriver(IdleComponent("idle"))
    previous = signal.getsignal(signal.SIGTERM)
    try:
        driver.install_signal_handlers(signal.SIGTERM)
        os.kill(os.getpid(), signal.SIGTERM)
        reason = driver.run(5.0)
        assert reason == "signal:SIGTERM"
    finally:
        signal.signal(signal.SIGTERM, previous)
        driver.shutdown()


def test_tick_hook_rides_the_reactor_loop():
    driver = NetDriver(IdleComponent("idle"))
    ticks = []
    driver.tick_hook = lambda: ticks.append(driver.now())
    try:
        driver.run(0.12)
        assert ticks, "tick hook never ran"
    finally:
        driver.shutdown()
