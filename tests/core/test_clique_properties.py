"""Property-based tests for the clique protocol.

Invariant: after an arbitrary (bounded) schedule of host failures,
recoveries, partitions, and heals — followed by a quiet stabilization
window — the reachable gossips converge to exactly one leader whose
membership view is exactly the set of live members.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.core.test_clique import CliqueComponent, World

from repro.core.simdriver import SimDriver


class ChaosWorld(World):
    """World with scripted chaos and recovery-aware component respawn."""

    def respawn(self, index):
        host = self.hosts[index]
        if not host.up:
            host.go_up()
        universe = [f"g{i}/clq" for i in range(len(self.hosts))]
        comp = CliqueComponent(f"g{index}", universe)
        SimDriver(self.env, self.net, host, "clq", comp, self.streams).start()
        self.comps[index] = comp


# Each event: (time gap, action, target index)
events = st.lists(
    st.tuples(
        st.integers(min_value=5, max_value=60),
        st.sampled_from(["kill", "revive", "partition", "heal"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=8,
)


@given(schedule=events)
@settings(max_examples=20, deadline=None)
def test_clique_always_reconverges(schedule):
    w = ChaosWorld(4)
    w.env.run(until=60)  # form the initial clique

    partitioned = False
    for gap, action, target in schedule:
        w.env.run(until=w.env.now + gap)
        host = w.hosts[target]
        if action == "kill":
            if host.up:
                host.go_down("chaos")
        elif action == "revive":
            if not host.up:
                w.respawn(target)
        elif action == "partition":
            w.net.set_partitions([["core"], ["nowhere"]])  # no-op: same site
            partitioned = True
        elif action == "heal":
            w.net.set_partitions([])
            partitioned = False

    # Revive everything and let the pool stabilize. Advance one step so
    # any just-killed driver has processed its interrupt and unbound.
    w.env.run(until=w.env.now + 1)
    w.net.set_partitions([])
    for i, host in enumerate(w.hosts):
        if not host.up:
            w.respawn(i)
    w.env.run(until=w.env.now + 600)

    leaders = w.leaders()
    assert len(leaders) == 1, f"multiple leaders after stabilization: {leaders}"
    expected = sorted(f"g{i}/clq" for i in range(4))
    for view in w.views():
        assert view == expected


@given(
    kill_order=st.permutations([0, 1, 2]),
    gaps=st.lists(st.integers(min_value=40, max_value=120), min_size=3, max_size=3),
)
@settings(max_examples=10, deadline=None)
def test_cascading_failures_leave_last_member_leading(kill_order, gaps):
    """Kill three of four members in any order: the survivor must end up
    leading a singleton clique."""
    w = ChaosWorld(4)
    w.env.run(until=60)
    survivor = ({0, 1, 2, 3} - set(kill_order)).pop()
    for idx, gap in zip(kill_order, gaps):
        w.hosts[idx].go_down("chaos")
        w.env.run(until=w.env.now + gap)
    w.env.run(until=w.env.now + 600)
    comp = w.comps[survivor]
    assert comp.clique.leader == f"g{survivor}/clq"
    assert sorted(comp.clique.members) == [f"g{survivor}/clq"]
