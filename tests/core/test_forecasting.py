"""Tests for the NWS forecaster bank, adaptive selection, and dynamic
benchmarking."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forecasting import (
    AdaptiveMean,
    EventTimer,
    ExponentialSmoothing,
    ForecastRegistry,
    ForecasterBank,
    LastValue,
    RunningMean,
    SlidingMean,
    SlidingMedian,
    TrimmedMean,
    default_bank,
    event_tag,
)


# ---------------------------------------------------------------- methods


def feed(f, values):
    for v in values:
        f.update(v)
    return f.forecast()


def test_last_value():
    assert LastValue().forecast() is None
    assert feed(LastValue(), [1, 2, 3]) == 3


def test_running_mean():
    assert feed(RunningMean(), [1, 2, 3, 4]) == pytest.approx(2.5)


def test_sliding_mean_window():
    assert feed(SlidingMean(2), [1, 2, 3, 4]) == pytest.approx(3.5)
    assert feed(SlidingMean(10), [1, 2, 3]) == pytest.approx(2.0)


def test_sliding_mean_bad_window():
    with pytest.raises(ValueError):
        SlidingMean(0)


def test_sliding_median_odd_even():
    assert feed(SlidingMedian(5), [5, 1, 3]) == 3
    assert feed(SlidingMedian(5), [5, 1, 3, 9]) == pytest.approx(4.0)


def test_sliding_median_evicts_correctly():
    m = SlidingMedian(3)
    for v in [10, 1, 2, 3]:  # 10 evicted
        m.update(v)
    assert m.forecast() == 2


def test_exponential_smoothing():
    f = ExponentialSmoothing(0.5)
    f.update(10)
    assert f.forecast() == 10
    f.update(20)
    assert f.forecast() == pytest.approx(15)


def test_exponential_smoothing_validates_gain():
    with pytest.raises(ValueError):
        ExponentialSmoothing(0.0)
    with pytest.raises(ValueError):
        ExponentialSmoothing(1.5)


def test_trimmed_mean_drops_outliers():
    f = TrimmedMean(5, trim=1)
    for v in [100, 1, 2, 3, -50]:
        f.update(v)
    assert f.forecast() == pytest.approx(2.0)


def test_trimmed_mean_validates():
    with pytest.raises(ValueError):
        TrimmedMean(2, trim=1)


def test_adaptive_mean_tracks_step_change():
    slow = SlidingMean(50)
    fast = AdaptiveMean(short=5, long=50, threshold=0.25)
    series = [1.0] * 50 + [10.0] * 10
    for v in series:
        slow.update(v)
        fast.update(v)
    # The adaptive method must be much closer to the new regime.
    assert abs(fast.forecast() - 10.0) < abs(slow.forecast() - 10.0)
    assert fast.forecast() == pytest.approx(10.0, rel=0.05)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=50)
def test_property_all_methods_bounded_by_history(values):
    """Every method's forecast lies within [min, max] of its history."""
    lo, hi = min(values), max(values)
    for f in default_bank():
        for v in values:
            f.update(v)
        fc = f.forecast()
        assert fc is not None
        assert lo - 1e-9 <= fc <= hi + 1e-9


@given(st.floats(min_value=-1e3, max_value=1e3), st.integers(min_value=1, max_value=100))
def test_property_constant_series_predicted_exactly(value, n):
    for f in default_bank():
        for _ in range(n):
            f.update(value)
        assert f.forecast() == pytest.approx(value)


def test_sliding_median_matches_numpy_reference():
    rng = np.random.default_rng(3)
    values = rng.normal(size=300)
    m = SlidingMedian(21)
    for i, v in enumerate(values):
        m.update(float(v))
        window = values[max(0, i - 20) : i + 1]
        assert m.forecast() == pytest.approx(float(np.median(window)))


# ---------------------------------------------------------------- bank


def test_bank_empty_forecast_none():
    assert ForecasterBank().forecast() is None


def test_bank_serves_a_forecast_after_one_sample():
    b = ForecasterBank()
    b.update(5.0)
    fc = b.forecast()
    assert fc is not None
    assert fc.value == pytest.approx(5.0)
    assert fc.samples == 1


def test_bank_picks_low_error_method_for_noisy_stationary_series():
    rng = np.random.default_rng(0)
    b = ForecasterBank()
    for _ in range(500):
        b.update(float(10 + rng.normal(0, 1)))
    fc = b.forecast()
    # A smoothing method must beat last-value on iid noise.
    assert fc.method != "last"
    assert fc.value == pytest.approx(10, abs=0.5)


def test_bank_adapts_to_regime_change():
    b = ForecasterBank()
    for _ in range(100):
        b.update(1.0)
    for _ in range(30):
        b.update(20.0)
    assert b.forecast().value == pytest.approx(20.0, rel=0.3)


def test_bank_beats_or_matches_every_single_method():
    """The adaptive chooser's realized error is near the best single
    method's — the NWS selling point (ablation A3 checks this at scale)."""
    rng = np.random.default_rng(7)
    # Regime-switching series: hard for any single fixed method.
    series = []
    level = 5.0
    for i in range(600):
        if i % 150 == 0:
            level = float(rng.uniform(1, 20))
        series.append(level + float(rng.normal(0, 0.5)))

    bank = ForecasterBank()
    chooser_err = 0.0
    scored = 0
    for v in series:
        fc = bank.forecast()
        if fc is not None:
            chooser_err += abs(fc.value - v)
            scored += 1
        bank.update(v)
    chooser_mae = chooser_err / scored

    best_single = min(bank.errors().values())
    assert chooser_mae <= best_single * 1.5


def test_bank_duplicate_names_rejected():
    with pytest.raises(ValueError):
        ForecasterBank([LastValue(), LastValue()])


def test_bank_empty_rejected():
    with pytest.raises(ValueError):
        ForecasterBank([])


def test_bank_errors_inf_before_scoring():
    b = ForecasterBank([LastValue()])
    assert b.errors() == {"last": float("inf")}
    b.update(1.0)
    assert b.errors() == {"last": float("inf")}  # scored only from 2nd sample
    b.update(2.0)
    assert b.errors()["last"] == pytest.approx(1.0)


# ---------------------------------------------------------------- registry


def test_registry_creates_banks_on_demand():
    reg = ForecastRegistry()
    tag = event_tag("h1/gossip", "PULL")
    assert reg.forecast(tag) is None
    reg.record(tag, 1.0)
    assert reg.forecast(tag).value == pytest.approx(1.0)
    assert len(reg) == 1
    assert reg.tags() == [tag]


def test_registry_timeout_default_then_dynamic():
    reg = ForecastRegistry()
    tag = "t"
    assert reg.timeout(tag, default=10.0) == 10.0
    for _ in range(20):
        reg.record(tag, 2.0)
    assert reg.timeout(tag, multiplier=4.0) == pytest.approx(8.0)


def test_registry_timeout_clamped():
    reg = ForecastRegistry()
    reg.record("fast", 0.001)
    assert reg.timeout("fast", multiplier=4.0, floor=0.5) == 0.5
    reg.record("slow", 1000.0)
    assert reg.timeout("slow", multiplier=4.0, ceiling=120.0) == 120.0


def test_event_tag_format():
    assert event_tag("h1/svc", "PING") == "h1/svc#PING"


# ---------------------------------------------------------------- timer


def test_event_timer_records_duration():
    reg = ForecastRegistry()
    timer = EventTimer(reg)
    timer.begin("t", now=10.0)
    d = timer.end("t", now=12.5)
    assert d == pytest.approx(2.5)
    assert reg.forecast("t").value == pytest.approx(2.5)


def test_event_timer_concurrent_tokens():
    reg = ForecastRegistry()
    timer = EventTimer(reg)
    timer.begin("t", now=0.0, token=1)
    timer.begin("t", now=1.0, token=2)
    assert timer.end("t", now=5.0, token=2) == pytest.approx(4.0)
    assert timer.end("t", now=5.0, token=1) == pytest.approx(5.0)
    assert timer.open_count == 0


def test_event_timer_end_without_begin_is_none():
    timer = EventTimer(ForecastRegistry())
    assert timer.end("ghost", now=1.0) is None


def test_event_timer_abandon():
    reg = ForecastRegistry()
    timer = EventTimer(reg)
    timer.begin("t", now=0.0)
    timer.abandon("t")
    assert timer.end("t", now=9.0) is None
    assert reg.forecast("t") is None


def test_registry_drop_forgets_stream():
    reg = ForecastRegistry()
    reg.record("t", 1.0)
    assert len(reg) == 1
    reg.drop("t")
    assert len(reg) == 0
    assert reg.forecast("t") is None
    reg.drop("never-existed")  # idempotent
