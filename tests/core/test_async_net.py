"""Async transport guarantees: zero-copy reads, Nagle-free sockets,
send coalescing, and the benchmark harness.

Covers the live-plane contracts the async rewrite introduced:

* inbound payloads are parsed **in place** — every record's payload view
  aliases the connection's stream buffer, no per-packet bytes objects;
* frames survive arbitrary split points, including mid-header and
  mid-trailer, across many reactor turns;
* every socket in the new stack (accepted, client, async-sender) runs
  with TCP_NODELAY, and small request/response exchanges don't hit
  Nagle-vs-delayed-ACK stalls;
* a burst of posts to one peer flushes as batched ``sendmsg`` calls,
  not one syscall per frame.
"""

import socket
import statistics
import threading
import time

import pytest

from repro.core.linguafranca.messages import Message
from repro.core.linguafranca.tcp import (AsyncSender, EventLoop, TcpClient,
                                         TcpServer)


def _pump(server, condition, budget=5.0, step=0.02):
    """Step the server's reactor until ``condition()`` or the budget is
    spent (single-threaded: tests pump, the library never does)."""
    deadline = time.monotonic() + budget
    while not condition() and time.monotonic() < deadline:
        server.step(step)
    assert condition(), "condition not reached while pumping the reactor"


# -- zero-copy reads ----------------------------------------------------------


def test_payload_views_alias_the_stream_buffer():
    seen = []

    def raw(mtype, payload):
        # Record the buffer object backing the view, and the content
        # (copied only for the assertion, inside the view's lifetime).
        seen.append((mtype, payload.obj, bytes(payload)))
        return b""

    server = TcpServer("127.0.0.1", 0, lambda m: None, raw_handler=raw)
    try:
        with socket.create_connection(server.address) as sock:
            for i in range(3):
                sock.sendall(Message(mtype="EVNT", sender="t",
                                     body={"i": i}).encode())
            _pump(server, lambda: len(seen) == 3)
        (conn,) = server._conns
        buffers = {id(obj) for _mtype, obj, _data in seen}
        # One connection, one stream buffer: every payload view aliased
        # the decoder's bytearray in place — no per-packet copies.
        assert buffers == {id(conn.decoder._buf)}
        for i, (mtype, obj, data) in enumerate(seen):
            assert mtype == "EVNT"
            assert isinstance(obj, bytearray)
            assert b'"i": %d' % i in data or b'"i":%d' % i in data
    finally:
        server.close()


def test_partial_reads_survive_frame_boundaries():
    got = []
    server = TcpServer("127.0.0.1", 0,
                       lambda m: got.append(m.body["n"]) or None)
    try:
        frames = b"".join(Message(mtype="PUSH", sender="t",
                                  body={"n": n}).encode()
                          for n in range(3))
        with socket.create_connection(server.address) as sock:
            # Dribble the stream in 7-byte slivers: splits land inside
            # headers, payloads, and crc trailers, across reactor turns.
            for off in range(0, len(frames), 7):
                sock.sendall(frames[off:off + 7])
                server.step(0.01)
            _pump(server, lambda: len(got) == 3)
        assert got == [0, 1, 2]
        assert server.decode_errors == 0
    finally:
        server.close()


# -- TCP_NODELAY everywhere (no Nagle stalls) ---------------------------------


def _nodelay_on(sock) -> bool:
    return bool(sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY))


def test_nodelay_set_on_all_new_stack_sockets():
    server = TcpServer("127.0.0.1", 0,
                       lambda m: m.reply("PONG", sender=""))
    client = TcpClient(sender="t")
    loop = EventLoop()
    sender = AsyncSender(loop, sender="t")
    try:
        host, port = server.address
        client.send(host, port, Message(mtype="PUSH", sender="", body={}))
        _pump(server, lambda: server.messages_handled == 1)
        # Accepted server sockets and the client's cached socket.
        (conn,) = server._conns
        assert _nodelay_on(conn.sock)
        assert _nodelay_on(client._conns[(host, port)])
        # The async sender's peer socket.
        sender.post(host, port, Message(mtype="PUSH", sender="", body={}))
        peer = sender._peers[(host, port)]
        assert peer.sock is not None and _nodelay_on(peer.sock)
    finally:
        sender.close()
        loop.close()
        client.close()
        server.close()


def test_client_reconnect_path_keeps_nodelay():
    server = TcpServer("127.0.0.1", 0, lambda m: None)
    client = TcpClient(sender="t")
    try:
        host, port = server.address
        client.send(host, port, Message(mtype="PUSH", sender="", body={}))
        _pump(server, lambda: server.messages_handled == 1)
        # Kill the server side of the cached connection; the next send
        # reconnects transparently — the fresh socket must also be
        # Nagle-free.
        (conn,) = server._conns
        server._drop(conn)
        server.step(0.02)
        client.send(host, port, Message(mtype="PUSH", sender="", body={}))
        assert client.reconnects == 1
        assert _nodelay_on(client._conns[(host, port)])
    finally:
        client.close()
        server.close()


def test_request_response_has_no_nagle_stalls():
    # Nagle vs delayed-ACK adds ~40ms per small exchange; with NODELAY a
    # loopback exchange is sub-millisecond. Use the median of many
    # exchanges so one scheduler hiccup can't fail the test, with a
    # bound an order of magnitude under the stall and an order over the
    # honest cost.
    server = TcpServer("127.0.0.1", 0,
                       lambda m: m.reply("PONG", sender=""))
    client = TcpClient(sender="t")
    laps = []
    stop = threading.Event()

    def pump():  # test harness only: the library stays single-threaded
        while not stop.is_set():
            server.step(0.005)

    pumper = threading.Thread(target=pump, daemon=True)
    pumper.start()
    try:
        host, port = server.address
        for _ in range(30):
            t0 = time.monotonic()
            reply = client.request(host, port,
                                   Message(mtype="PING", sender="", body={}),
                                   timeout=5.0)
            laps.append(time.monotonic() - t0)
            assert reply is not None and reply.mtype == "PONG"
    finally:
        stop.set()
        pumper.join(timeout=2)
        client.close()
        server.close()
    assert statistics.median(laps) < 0.02, f"median {statistics.median(laps)}"


# -- send coalescing ----------------------------------------------------------


def test_burst_of_posts_flushes_batched():
    got = []
    loop = EventLoop()
    server = TcpServer("127.0.0.1", 0,
                       lambda m: got.append(m.body["n"]) or None, loop=loop)
    sender = AsyncSender(loop, sender="t")
    try:
        host, port = server.address
        for n in range(50):
            sender.post(host, port,
                        Message(mtype="PUSH", sender="", body={"n": n}))
        _pump(server, lambda: len(got) == 50)
        assert got == list(range(50))
        assert sender.sent == 50
        # Coalescing contract: the burst went out in batched sendmsg
        # calls, nowhere near one syscall per frame.
        assert sender.flush_batches <= 4
    finally:
        sender.close()
        server.close()


# -- benchmark harness --------------------------------------------------------


def test_netbench_echo_cell_runs():
    from repro.core.netbench import bench_mode

    row = bench_mode("async-reactor", 8, duration=0.4, warmup=0.1,
                     pipeline=2, payload=0)
    assert row["mode"] == "async-reactor"
    assert row["msgs"] > 0
    assert row["msgs_per_s"] > 0
    assert row["p99_ms"] >= row["p50_ms"] >= 0


def test_netbench_fanout_cell_runs():
    from repro.core.netbench import run_fanout

    row = run_fanout("async-send", peers=8, duration=0.4, warmup=0.1,
                     payload=0, burst=4, window=256)
    assert row["bench"] == "fanout"
    assert row["msgs"] > 0
    assert row["sent"] >= row["msgs"]


def test_netbench_rejects_unknown_modes():
    from repro.core.netbench import run_fanout, spawn_echo_server

    with pytest.raises(ValueError):
        spawn_echo_server("carrier-pigeon")
    with pytest.raises(ValueError):
        run_fanout("carrier-pigeon")
