"""SWIM suspicion: state machine units plus fault-plan integration.

The satellite acceptance scenarios (ISSUE 9): a suspected-then-refuted
component must NOT be evicted, and a genuinely dead component's state
must be tombstoned exactly once pool-wide.
"""

import pytest

from repro.core.gossip import (
    ALIVE,
    DEAD,
    SUSPECT,
    ComparatorRegistry,
    GossipServer,
    SuspicionTable,
)
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.faults import FaultPlan
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from tests.core.test_gossip_integration import SyncedComponent


# -- SuspicionTable units ----------------------------------------------------

def test_alive_suspect_dead_progression():
    table = SuspicionTable("me/g", suspicion_timeout=10.0)
    assert table.state_of("peer/g") == ALIVE
    assert table.suspect("peer/g", now=0.0)
    assert table.state_of("peer/g") == SUSPECT
    assert table.is_usable("peer/g")  # suspects stay in rotation
    assert table.tick(5.0) == []  # window not yet expired
    assert table.tick(11.0) == ["peer/g"]
    assert table.state_of("peer/g") == DEAD
    assert not table.is_usable("peer/g")
    assert table.tick(20.0) == []  # death reported once


def test_first_hand_contact_refutes_suspicion():
    table = SuspicionTable("me/g", suspicion_timeout=10.0)
    table.suspect("peer/g", now=0.0)
    assert table.confirm_alive("peer/g", now=5.0)
    assert table.state_of("peer/g") == ALIVE
    assert table.tick(50.0) == []  # the old suspicion never expires


def test_relayed_refutation_needs_dominating_incarnation():
    table = SuspicionTable("me/g", suspicion_timeout=10.0)
    table.suspect("peer/g", now=0.0, incarnation=3)
    # A relayed alive-claim at the same incarnation does not refute.
    assert not table.confirm_alive("peer/g", now=1.0, incarnation=3)
    assert table.state_of("peer/g") == SUSPECT
    # A bumped incarnation does.
    assert table.confirm_alive("peer/g", now=2.0, incarnation=4)
    assert table.state_of("peer/g") == ALIVE


def test_stale_suspicion_cannot_rekill():
    table = SuspicionTable("me/g", suspicion_timeout=10.0)
    table.suspect("peer/g", now=0.0, incarnation=1)
    table.confirm_alive("peer/g", now=1.0, incarnation=2)
    # The stale claim (incarnation 1) arrives late: rejected.
    assert not table.suspect("peer/g", now=2.0, incarnation=1)
    assert table.state_of("peer/g") == ALIVE


def test_resurrection_bumps_incarnation():
    table = SuspicionTable("me/g", suspicion_timeout=1.0)
    table.suspect("peer/g", now=0.0)
    table.tick(2.0)
    assert table.state_of("peer/g") == DEAD
    before = table.view("peer/g").incarnation
    # First-hand contact from a declared-dead peer: reboot.
    assert table.confirm_alive("peer/g", now=3.0)
    assert table.state_of("peer/g") == ALIVE
    assert table.view("peer/g").incarnation == before + 1


def test_gossip_claims_drain_budget():
    table = SuspicionTable("me/g", suspicion_timeout=10.0)
    table.suspect("a/g", now=0.0, )
    claims = table.gossip_claims()
    assert claims == [["a/g", SUSPECT, 0]]
    # Default budget is 4: three more rounds, then silence.
    for _ in range(3):
        assert table.gossip_claims() == [["a/g", SUSPECT, 0]]
    assert table.gossip_claims() == []


def test_apply_claims_self_suspicion_returns_refutation():
    table = SuspicionTable("me/g", suspicion_timeout=10.0)
    refutation = table.apply_claims([["me/g", SUSPECT, 0]], now=1.0)
    assert refutation == ["me/g", ALIVE, 1]
    assert table.self_incarnation == 1
    # The refuted (lower) claim no longer triggers a new refutation.
    assert table.apply_claims([["me/g", SUSPECT, 0]], now=2.0) is None


def test_apply_claims_merges_peers_and_skips_garbage():
    table = SuspicionTable("me/g", suspicion_timeout=10.0)
    table.apply_claims(
        [["a/g", SUSPECT, 0], ["b/g", DEAD, 2], ["c/g", ALIVE, 0],
         ["bad"], [1, 2], "nope"], now=1.0)
    assert table.state_of("a/g") == SUSPECT
    assert table.state_of("b/g") == DEAD
    assert table.state_of("c/g") == ALIVE


def test_transition_hook_fires():
    seen = []
    table = SuspicionTable(
        "me/g", suspicion_timeout=1.0,
        on_transition=lambda m, old, new: seen.append((m, old, new)))
    table.suspect("peer/g", now=0.0)
    table.tick(2.0)
    assert seen == [("peer/g", ALIVE, SUSPECT), ("peer/g", SUSPECT, DEAD)]
    assert table.transitions[SUSPECT] == 1
    assert table.transitions[DEAD] == 1


# -- integration: FaultPlan-driven suspicion at the GossipServer -------------

class FaultWorld:
    """Two-Gossip pool plus components, with site-aware hosts so a
    FaultPlan can partition components away from the pool."""

    def __init__(self, n_comps=2, seed=4, **server_kw):
        self.env = Environment()
        self.streams = RngStreams(seed=seed)
        self.net = Network(self.env, self.streams, jitter=0.0)
        self.well_known = [f"gos{i}/gossip" for i in range(2)]
        self.gossips = []
        for i in range(2):
            h = Host(self.env, HostSpec(name=f"gos{i}", site="core"),
                     self.streams)
            self.net.add_host(h)
            server = GossipServer(
                f"gos{i}", self.well_known,
                comparators=ComparatorRegistry(),
                poll_period=5.0, sync_period=7.0,
                token_period=8.0, token_timeout=25.0,
                **server_kw,
            )
            SimDriver(self.env, self.net, h, "gossip", server,
                      self.streams).start()
            self.gossips.append(server)
        self.comps = []
        self.chosts = []
        for i in range(n_comps):
            h = Host(self.env, HostSpec(name=f"app{i}", site="edge"),
                     self.streams)
            self.net.add_host(h)
            self.chosts.append(h)
            comp = SyncedComponent(f"app{i}", self.well_known)
            SimDriver(self.env, self.net, h, "app", comp, self.streams).start()
            self.comps.append(comp)

    def install(self, plan: FaultPlan) -> None:
        plan.install(self.env, self.net)


def test_partitioned_component_is_suspected_then_refuted_not_evicted():
    w = FaultWorld(n_comps=2)
    # Cut the edge site off at t=40; heal 50s later (t=90) — inside the
    # suspicion window, before any suspect can be declared dead.
    plan = FaultPlan().partition(at=40.0, groups=[("core",), ("edge",)],
                                 heal_after=50.0)
    w.install(plan)
    w.env.run(until=300)
    suspicions = sum(g.stats.suspicions for g in w.gossips)
    refutations = sum(g.stats.refutations for g in w.gossips)
    assert suspicions >= 1, "silence through a partition must raise suspicion"
    assert refutations >= 1, "contact after the heal must refute it"
    # The load-bearing acceptance: suspected-then-refuted is NOT evicted.
    assert sum(g.stats.evictions for g in w.gossips) == 0
    assert sum(g.stats.tombstones_created for g in w.gossips) == 0
    for g in w.gossips:
        assert "app0/app" in g.registry
        assert "app1/app" in g.registry


def test_crashed_component_tombstoned_exactly_once_pool_wide():
    w = FaultWorld(n_comps=2)
    plan = FaultPlan().crash(at=40.0, host="app0", reboot_after=30.0)
    w.install(plan)
    w.env.run(until=400)
    # The machine rebooted but the guest process stays dead (Host
    # semantics), so the eviction must stand — and happen exactly once.
    assert sum(g.stats.evictions for g in w.gossips) == 1
    assert sum(g.stats.tombstones_created for g in w.gossips) == 1
    for g in w.gossips:
        assert "app0/app" not in g.registry
        assert "app1/app" in g.registry  # the survivor is untouched
    # The non-evicting member learned through the piggybacked tombstone.
    assert sum(g.stats.tombstones_applied for g in w.gossips) >= 1


def test_suspicion_rides_digests_between_members():
    w = FaultWorld(n_comps=1)
    plan = FaultPlan().crash(at=40.0, host="app0")
    w.install(plan)
    w.env.run(until=400)
    # Exactly one member was responsible and evicted; but *both* members
    # witnessed the suspect transition via piggybacked claims.
    suspects_seen = [g.suspicion.transitions[SUSPECT] for g in w.gossips]
    assert all(s >= 1 for s in suspects_seen)


def test_static_timeout_mode_still_detects_death():
    w = FaultWorld(n_comps=1, dynamic_timeouts=False)
    plan = FaultPlan().crash(at=40.0, host="app0")
    w.install(plan)
    w.env.run(until=500)
    assert sum(g.stats.evictions for g in w.gossips) == 1
