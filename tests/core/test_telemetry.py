"""Tests for the telemetry layer: metrics registry, tracer, exporters."""

import json

from repro.core.telemetry import (
    MetricsRegistry,
    Span,
    Telemetry,
    TraceContext,
    Tracer,
    export_chrome_trace,
    render_timeline,
)


# -- metrics -----------------------------------------------------------------


def test_counter_get_or_create_and_inc():
    m = MetricsRegistry()
    c = m.counter("msg.sent", mtype="PING")
    c.inc()
    c.inc(2)
    assert m.counter("msg.sent", mtype="PING") is c
    assert c.value == 3
    # Different labels are different counters.
    assert m.counter("msg.sent", mtype="PONG").value == 0


def test_metric_key_label_order_is_canonical():
    m = MetricsRegistry()
    a = m.counter("x", b=1, a=2)
    b = m.counter("x", a=2, b=1)
    assert a is b
    assert a.name == "x{a=2,b=1}"


def test_gauge_set():
    m = MetricsRegistry()
    g = m.gauge("sch.queue_depth", component="sched0")
    g.set(7)
    assert g.value == 7
    g.set(0)
    assert m.gauge("sch.queue_depth", component="sched0").value == 0


def test_histogram_buckets_and_mean():
    m = MetricsRegistry()
    h = m.histogram("rtt", bounds=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 4
    assert h.counts == [1, 1, 1, 1]  # one per bucket incl. overflow
    assert h.mean == (0.05 + 0.5 + 5.0 + 50.0) / 4


def test_counters_matching_prefix():
    m = MetricsRegistry()
    m.counter("fault.crashes").inc()
    m.counter("fault.reboots").inc(2)
    m.counter("net.delivered").inc(5)
    assert m.counters_matching("fault.") == {
        "fault.crashes": 1, "fault.reboots": 2}


def test_snapshot_is_json_and_sorted():
    m = MetricsRegistry()
    m.counter("b").inc()
    m.counter("a").inc()
    m.gauge("g").set(1.5)
    m.histogram("h", bounds=(1.0,)).observe(0.5)
    snap = m.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    json.dumps(snap)  # must be serializable


# -- tracer ------------------------------------------------------------------


def test_span_ids_are_deterministic():
    def make():
        t = Tracer(enabled=True)
        root = t.begin("root", component="c", start=1.0)
        child = t.begin("child", parent=root.ctx, start=2.0)
        t.finish(child, 3.0)
        t.finish(root, 4.0)
        return [(s.trace_id, s.span_id, s.parent_id) for s in t.spans]

    assert make() == make()


def test_parenting_and_ancestry():
    t = Tracer(enabled=True)
    root = t.begin("root", start=0.0)
    mid = t.begin("mid", parent=root.ctx, start=1.0)
    leaf = t.instant("leaf", 2.0, parent=mid.ctx)
    assert leaf.trace_id == root.trace_id
    names = [s.name for s in t.ancestry(leaf)]
    assert names == ["leaf", "mid", "root"]
    assert [s.name for s in t.children(root)] == ["mid"]


def test_fresh_trace_per_root():
    t = Tracer(enabled=True)
    a = t.begin("a")
    b = t.begin("b")
    assert a.trace_id != b.trace_id


def test_telemetry_event_noop_when_disabled():
    tel = Telemetry()
    assert tel.event("thing", 1.0) is None
    assert tel.tracer.spans == []
    tel.tracer.enabled = True
    span = tel.event("thing", 1.0, outcome="requeue", unit_id="u1")
    assert isinstance(span, Span)
    assert span.args["unit_id"] == "u1"
    assert span.outcome == "requeue"


def test_trace_context_is_tuple_compatible():
    ctx = TraceContext(3, 4)
    trace_id, span_id = ctx
    assert (trace_id, span_id) == (3, 4)


# -- exporters ---------------------------------------------------------------


def _traced_telemetry():
    tel = Telemetry(trace=True)
    t = tel.tracer
    root = t.begin("recv PING", component="echo", start=1.5, mtype="PING")
    t.instant("send PONG", 1.5, component="echo", parent=root.ctx)
    t.finish(root, 1.75)
    return tel


def test_chrome_trace_schema():
    doc = export_chrome_trace(_traced_telemetry())
    events = doc["traceEvents"]
    assert events, "no events exported"
    for ev in events:
        for key in ("name", "ph", "ts", "pid"):
            assert key in ev, f"missing {key} in {ev}"
        assert ev["ph"] in ("X", "M")
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"recv PING", "send PONG"}
    # Simulated-time microseconds.
    recv = next(e for e in spans if e["name"] == "recv PING")
    assert recv["ts"] == 1.5e6
    assert recv["dur"] == 0.25e6
    # Metadata names the component process.
    meta = [e for e in events if e["ph"] == "M"]
    assert meta and meta[0]["args"]["name"] == "echo"


def test_chrome_trace_is_deterministic():
    a = json.dumps(export_chrome_trace(_traced_telemetry()), sort_keys=True)
    b = json.dumps(export_chrome_trace(_traced_telemetry()), sort_keys=True)
    assert a == b


def test_render_timeline_mentions_spans():
    text = render_timeline(_traced_telemetry())
    assert "recv PING" in text
    assert "send PONG" in text
    assert len(text.splitlines()) == 2
    assert len(render_timeline(_traced_telemetry(), limit=1).splitlines()) == 1
