"""Tests for the retry/timeout policy layer and the reliable-send
machinery the drivers build on it."""

import pytest

from repro.core.component import Component, Send
from repro.core.forecasting import ForecastRegistry, event_tag
from repro.core.linguafranca.messages import Message
from repro.core.policy import ReliableSendTracker, RetryPolicy, TimeoutPolicy
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


# -- TimeoutPolicy ----------------------------------------------------------

def test_static_policy_is_constant():
    pol = TimeoutPolicy.static(3.5)
    assert not pol.dynamic
    assert pol.timeout_for() == 3.5
    assert pol.timeout_for("a/b#PING") == 3.5
    pol.observe("a/b#PING", 99.0)  # no-op without a registry
    assert pol.timeout_for("a/b#PING") == 3.5


def test_forecast_policy_tracks_history():
    pol = TimeoutPolicy.forecast(multiplier=4.0, default=10.0,
                                 floor=0.5, ceiling=120.0)
    assert pol.dynamic
    tag = event_tag("pst0/pst", "PST_STORE")
    # No history yet: the default applies.
    assert pol.timeout_for(tag) == 10.0
    for _ in range(30):
        pol.observe(tag, 2.0)
    # forecast(2.0) x 4 == 8, well inside the clamp.
    assert pol.timeout_for(tag) == pytest.approx(8.0, rel=0.2)
    # Tags are independent.
    assert pol.timeout_for(event_tag("other/p", "PST_STORE")) == 10.0


def test_forecast_policy_clamps_to_floor_and_ceiling():
    pol = TimeoutPolicy.forecast(multiplier=4.0, default=10.0,
                                 floor=1.0, ceiling=5.0)
    fast, slow = "f#X", "s#X"
    for _ in range(30):
        pol.observe(fast, 0.01)
        pol.observe(slow, 60.0)
    assert pol.timeout_for(fast) == 1.0
    assert pol.timeout_for(slow) == 5.0


def test_forecast_policies_can_share_a_registry():
    reg = ForecastRegistry()
    a = TimeoutPolicy.forecast(registry=reg, multiplier=2.0, floor=0.0)
    b = TimeoutPolicy.forecast(registry=reg, multiplier=10.0, floor=0.0,
                               ceiling=1000.0)
    for _ in range(30):
        a.observe("t#Y", 1.0)
    assert a.timeout_for("t#Y") == pytest.approx(2.0, rel=0.2)
    assert b.timeout_for("t#Y") == pytest.approx(10.0, rel=0.2)


# -- RetryPolicy ------------------------------------------------------------

def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_retry_policy_attempt_budget():
    pol = RetryPolicy(max_attempts=3)
    assert pol.should_retry(1) and pol.should_retry(2)
    assert not pol.should_retry(3)


def test_retry_policy_backoff_and_clamp():
    pol = RetryPolicy(max_attempts=9, backoff=2.0, jitter=0.0, max_interval=30.0)
    assert pol.interval(1, 4.0) == 4.0
    assert pol.interval(2, 4.0) == 8.0
    assert pol.interval(3, 4.0) == 16.0
    assert pol.interval(4, 4.0) == 30.0  # clamped
    assert pol.interval(8, 4.0) == 30.0


def test_retry_policy_jitter_bounds():
    pol = RetryPolicy(jitter=0.25)
    lo = pol.interval(1, 10.0, rand=0.0)
    mid = pol.interval(1, 10.0, rand=0.5)
    hi = pol.interval(1, 10.0, rand=1.0)
    assert lo == pytest.approx(7.5)
    assert mid == pytest.approx(10.0)
    assert hi == pytest.approx(12.5)


# -- ReliableSendTracker ----------------------------------------------------

def reliable_send(dst="svc/p", mtype="REQ", retry=None, timeout=None):
    return Send(dst, Message(mtype=mtype, sender="cli/c"),
                retry=retry or RetryPolicy(max_attempts=2, jitter=0.0),
                timeout=timeout, label="t")


def make_tracker(default=4.0):
    return ReliableSendTracker(TimeoutPolicy.static(default), lambda: 0.5)


def test_tracker_assigns_req_id_and_resolves():
    tr = make_tracker()
    eff = reliable_send()
    assert eff.message.req_id is None
    tr.track(eff, now=0.0)
    assert eff.message.req_id is not None
    assert len(tr) == 1

    assert tr.resolve(None, 1.0) is None
    assert tr.resolve(12345678, 1.0) is None  # unknown correlation id
    pending = tr.resolve(eff.message.req_id, 1.0)
    assert pending is not None and pending.eff is eff
    assert len(tr) == 0 and tr.resolved == 1
    assert tr.next_deadline() is None


def test_tracker_resend_then_give_up():
    tr = make_tracker(default=4.0)
    eff = reliable_send()
    tr.track(eff, 0.0)
    assert tr.next_deadline() == pytest.approx(4.0)
    assert tr.due(3.9) == []

    [(action, pending)] = tr.due(4.0)
    assert action == "resend" and pending.attempt == 2
    # Exponential backoff: the second wait doubles.
    assert pending.deadline == pytest.approx(4.0 + 8.0)

    [(action, pending)] = tr.due(12.0)
    assert action == "give_up" and pending.eff is eff
    assert len(tr) == 0
    assert (tr.tracked, tr.retries, tr.give_ups) == (1, 1, 1)


def test_tracker_per_send_timeout_overrides():
    tr = make_tracker(default=100.0)
    explicit = reliable_send(timeout=1.0)
    policied = reliable_send(timeout=TimeoutPolicy.static(7.0))
    tr.track(explicit, 0.0)
    tr.track(policied, 0.0)
    deadlines = sorted(p.deadline for p in tr._pending.values())
    assert deadlines == [pytest.approx(1.0), pytest.approx(7.0)]


def test_tracker_resolution_feeds_forecast_history():
    pol = TimeoutPolicy.forecast(multiplier=4.0, default=50.0, floor=0.0)
    tr = ReliableSendTracker(pol, lambda: 0.5)
    tag = event_tag("svc/p", "REQ")
    for _ in range(30):
        eff = reliable_send()
        tr.track(eff, 100.0)
        tr.resolve(eff.message.req_id, 101.0)
    # Observed 1 s responses pull the 50 s default down to ~4 s.
    assert pol.timeout_for(tag) == pytest.approx(4.0, rel=0.2)


# -- driver integration -----------------------------------------------------

class OneShot(Component):
    """Sends one reliable request at start; records the give-up."""

    def __init__(self, dst):
        super().__init__("oneshot")
        self.dst = dst
        self.failures = []
        self.replies = []

    def on_start(self, now):
        return [Send(self.dst, Message(mtype="REQ", sender=self.contact),
                     retry=RetryPolicy(max_attempts=3, jitter=0.0),
                     timeout=2.0, label="req")]

    def on_message(self, message, now):
        self.replies.append((message.mtype, now))
        return []

    def on_send_failed(self, send, now):
        self.failures.append((send.label, now))
        return []


class Replier(Component):
    def __init__(self):
        super().__init__("replier")
        self.seen = 0

    def on_message(self, message, now):
        self.seen += 1
        return [Send(message.sender, message.reply("ACK", sender=self.contact))]


def build_world(n_hosts=2):
    env = Environment()
    streams = RngStreams(seed=7)
    net = Network(env, streams, jitter=0.0)
    hosts = []
    for i in range(n_hosts):
        h = Host(env, HostSpec(name=f"h{i}"), streams)
        net.add_host(h)
        hosts.append(h)
    return env, streams, net, hosts


def test_simdriver_gives_up_after_policy_exhausted():
    env, streams, net, hosts = build_world(1)
    comp = OneShot("nowhere/void")
    drv = SimDriver(env, net, hosts[0], "cli", comp, streams)
    drv.start()
    env.run(until=60)
    # 3 attempts at 2 s / 4 s / 8 s backoff, then exactly one give-up.
    assert comp.failures == [("req", pytest.approx(14.0))]
    assert drv.tracker.tracked == 1
    assert drv.tracker.retries == 2
    assert drv.tracker.give_ups == 1


def test_simdriver_reply_stops_retransmission():
    env, streams, net, hosts = build_world(2)
    server = Replier()
    SimDriver(env, net, hosts[1], "svc", server, streams).start()
    comp = OneShot("h1/svc")
    drv = SimDriver(env, net, hosts[0], "cli", comp, streams)
    drv.start()
    env.run(until=60)
    assert server.seen == 1  # no retransmissions reached the server
    assert [m for m, _ in comp.replies] == ["ACK"]
    assert comp.failures == []
    assert drv.tracker.resolved == 1


def test_simdriver_retransmits_through_loss_window():
    env, streams, net, hosts = build_world(2)
    server = Replier()
    SimDriver(env, net, hosts[1], "svc", server, streams).start()
    comp = OneShot("h1/svc")
    drv = SimDriver(env, net, hosts[0], "cli", comp, streams)
    drv.start()
    # The server's host is down for the first attempt only.
    hosts[1].go_down("test")

    def heal(env):
        yield env.timeout(1.0)
        hosts[1].go_up()
        SimDriver(env, net, hosts[1], "svc", server, streams).start()

    env.process(heal(env))
    env.run(until=60)
    assert comp.failures == []
    assert [m for m, _ in comp.replies] == ["ACK"]
    assert drv.tracker.retries >= 1
