"""Tests for the simulated lingua-franca endpoint."""

import pytest

from repro.core.linguafranca.endpoint import SimEndpoint
from repro.core.linguafranca.messages import Message
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams


@pytest.fixture
def fabric():
    env = Environment()
    streams = RngStreams(seed=11)
    net = Network(env, streams, jitter=0.0)
    hosts = {}
    for name in ("alpha", "beta"):
        h = Host(env, HostSpec(name=name), streams)
        net.add_host(h)
        hosts[name] = h
    return env, net, hosts


def test_send_recv_roundtrip(fabric):
    env, net, hosts = fabric
    server = SimEndpoint(env, net, Address("beta", "svc"))
    client = SimEndpoint(env, net, Address("alpha", "cli"))

    def server_proc(env):
        msg = yield from server.recv(timeout=10)
        return msg

    def client_proc(env):
        client.send("beta/svc", Message(mtype="HELLO", sender="", body={"x": 1}))
        yield env.timeout(0)

    sp = env.process(server_proc(env))
    env.process(client_proc(env))
    env.run(until=20)
    msg = sp.value
    assert msg.mtype == "HELLO"
    assert msg.body == {"x": 1}
    # Sender auto-filled from the endpoint binding.
    assert msg.sender == "alpha/cli"


def test_recv_timeout_returns_none(fabric):
    env, net, hosts = fabric
    server = SimEndpoint(env, net, Address("beta", "svc"))

    def server_proc(env):
        msg = yield from server.recv(timeout=3)
        return (msg, env.now)

    sp = env.process(server_proc(env))
    env.run(until=10)
    assert sp.value == (None, 3)


def test_request_reply_rtt(fabric):
    env, net, hosts = fabric
    server = SimEndpoint(env, net, Address("beta", "svc"))
    client = SimEndpoint(env, net, Address("alpha", "cli"))

    def server_proc(env):
        while True:
            msg = yield from server.recv(timeout=None)
            reply = msg.reply("PONG", sender=server.contact, body={"ok": True})
            server.send(msg.sender, reply)

    def client_proc(env):
        reply, rtt = yield from client.request(
            "beta/svc", Message(mtype="PING", sender=""), timeout=10
        )
        return reply, rtt

    env.process(server_proc(env))
    cp = env.process(client_proc(env))
    env.run(until=30)
    reply, rtt = cp.value
    assert reply.mtype == "PONG"
    assert reply.body == {"ok": True}
    assert rtt is not None and rtt > 0


def test_request_timeout_when_server_dead(fabric):
    env, net, hosts = fabric
    client = SimEndpoint(env, net, Address("alpha", "cli"))

    def client_proc(env):
        reply, rtt = yield from client.request(
            "beta/gone", Message(mtype="PING", sender=""), timeout=2
        )
        return (reply, rtt, env.now)

    cp = env.process(client_proc(env))
    env.run(until=10)
    assert cp.value == (None, None, 2)


def test_uncorrelated_messages_kept_in_backlog(fabric):
    """A push message arriving while awaiting a reply must not be lost."""
    env, net, hosts = fabric
    server = SimEndpoint(env, net, Address("beta", "svc"))
    client = SimEndpoint(env, net, Address("alpha", "cli"))

    def server_proc(env):
        msg = yield from server.recv(timeout=None)
        # Send an unrelated push first, then the actual reply.
        server.send(msg.sender, Message(mtype="GOSSIP_PUSH", sender=server.contact))
        server.send(msg.sender, msg.reply("ANSWER", sender=server.contact))
        yield env.timeout(0)

    def client_proc(env):
        reply, _ = yield from client.request(
            "beta/svc", Message(mtype="ASK", sender=""), timeout=10
        )
        backlog_msg = yield from client.recv(timeout=1)
        return reply.mtype, backlog_msg.mtype

    env.process(server_proc(env))
    cp = env.process(client_proc(env))
    env.run(until=30)
    assert cp.value == ("ANSWER", "GOSSIP_PUSH")


def test_corrupt_bytes_counted_and_skipped(fabric):
    env, net, hosts = fabric
    server = SimEndpoint(env, net, Address("beta", "svc"))
    # Inject raw garbage directly through the network.
    net.send(Address("alpha", "x"), Address("beta", "svc"), b"garbage-bytes")
    client = SimEndpoint(env, net, Address("alpha", "cli"))
    client.send("beta/svc", Message(mtype="REAL", sender=""))

    def server_proc(env):
        msg = yield from server.recv(timeout=10)
        return msg.mtype

    sp = env.process(server_proc(env))
    env.run(until=20)
    assert sp.value == "REAL"
    assert server.decode_errors == 1


def test_close_unbinds(fabric):
    env, net, hosts = fabric
    ep = SimEndpoint(env, net, Address("beta", "svc"))
    assert net.is_bound(Address("beta", "svc"))
    ep.close()
    assert not net.is_bound(Address("beta", "svc"))
    ep.close()  # idempotent
