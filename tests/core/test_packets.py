"""Unit + property tests for lingua franca packet framing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linguafranca.packets import (
    HEADER,
    MAX_PAYLOAD_LEN,
    MAX_TYPE_LEN,
    PacketDecoder,
    PacketError,
    decode_packet,
    decode_packet_view,
    encode_packet,
)


def test_roundtrip_simple():
    data = encode_packet("REPORT", b"hello world")
    assert decode_packet(data) == ("REPORT", b"hello world")


def test_roundtrip_empty_payload():
    assert decode_packet(encode_packet("PING", b"")) == ("PING", b"")


def test_roundtrip_unicode_type():
    assert decode_packet(encode_packet("tipo-ñ", b"x"))[0] == "tipo-ñ"


def test_empty_type_rejected():
    with pytest.raises(PacketError):
        encode_packet("", b"x")


def test_overlong_type_rejected():
    with pytest.raises(PacketError):
        encode_packet("x" * (MAX_TYPE_LEN + 1), b"")


def test_oversized_payload_rejected():
    with pytest.raises(PacketError, match="payload too large"):
        encode_packet("t", b"\0" * (MAX_PAYLOAD_LEN + 1))


def test_bad_magic_rejected():
    data = bytearray(encode_packet("T", b"p"))
    data[0] = ord("X")
    with pytest.raises(PacketError, match="magic"):
        decode_packet(bytes(data))


def test_bad_version_rejected():
    data = bytearray(encode_packet("T", b"p"))
    data[4] = 99
    with pytest.raises(PacketError, match="version"):
        decode_packet(bytes(data))


def test_corrupt_payload_fails_crc():
    data = bytearray(encode_packet("T", b"payload"))
    data[-6] ^= 0xFF  # flip a payload byte
    with pytest.raises(PacketError, match="crc"):
        decode_packet(bytes(data))


def test_truncated_packet():
    data = encode_packet("T", b"payload")
    with pytest.raises(PacketError, match="truncated"):
        decode_packet(data[:-1])


def test_trailing_garbage_rejected_by_decode_packet():
    data = encode_packet("T", b"p") + b"junk"
    with pytest.raises(PacketError, match="trailing"):
        decode_packet(data)


def test_decode_packet_view_is_zero_copy():
    data = encode_packet("REPORT", b"hello world")
    mtype, payload = decode_packet_view(data)
    assert mtype == "REPORT"
    assert isinstance(payload, memoryview)
    assert bytes(payload) == b"hello world"
    assert payload.obj is data  # a view into the frame, not a copy


def test_decode_packet_view_rejects_corruption():
    data = bytearray(encode_packet("T", b"payload"))
    data[-6] ^= 0xFF
    with pytest.raises(PacketError, match="crc"):
        decode_packet_view(bytes(data))


def test_next_record_parses_in_place():
    decoder = PacketDecoder()
    decoder.feed(encode_packet("A", b"first"))
    decoder.feed(encode_packet("B", b"second"))
    seen = []
    while True:
        rec = decoder.next_record(lambda t, p: (t, bytes(p), type(p)))
        if rec is None:
            break
        seen.append(rec)
    assert [(t, p) for t, p, _ in seen] == [("A", b"first"), ("B", b"second")]
    assert all(kind is memoryview for _, _, kind in seen)
    assert decoder.pending_bytes == 0


def test_next_record_consumes_frame_when_build_raises():
    decoder = PacketDecoder()
    decoder.feed(encode_packet("BAD", b"x"))
    decoder.feed(encode_packet("OK", b"y"))

    def explode(mtype, payload):
        if mtype == "BAD":
            raise ValueError("malformed record")
        return mtype, bytes(payload)

    with pytest.raises(ValueError):
        decoder.next_record(explode)
    # The bad frame is gone; the stream keeps working.
    assert decoder.next_record(explode) == ("OK", b"y")
    assert decoder.pending_bytes == 0


def test_next_record_leaves_buffer_on_corrupt_frame():
    data = bytearray(encode_packet("T", b"p"))
    data[-2] ^= 0xFF  # break the crc
    decoder = PacketDecoder()
    decoder.feed(bytes(data))
    with pytest.raises(PacketError, match="crc"):
        decoder.next_record(lambda t, p: (t, bytes(p)))
    assert decoder.pending_bytes == len(data)


def test_decoder_handles_split_delivery():
    data = encode_packet("A", b"12345")
    dec = PacketDecoder()
    for i in range(len(data)):
        dec.feed(data[i : i + 1])
        if i < len(data) - 1:
            assert dec.next_packet() is None
    assert dec.next_packet() == ("A", b"12345")


def test_decoder_handles_coalesced_packets():
    stream = encode_packet("A", b"1") + encode_packet("B", b"2") + encode_packet("C", b"3")
    dec = PacketDecoder()
    dec.feed(stream)
    assert list(dec.packets()) == [("A", b"1"), ("B", b"2"), ("C", b"3")]
    assert dec.pending_bytes == 0


def test_decoder_partial_second_packet():
    p1 = encode_packet("A", b"1")
    p2 = encode_packet("B", b"2")
    dec = PacketDecoder()
    dec.feed(p1 + p2[:5])
    assert dec.next_packet() == ("A", b"1")
    assert dec.next_packet() is None
    dec.feed(p2[5:])
    assert dec.next_packet() == ("B", b"2")


def test_decoder_corrupt_stream_raises_and_stops():
    dec = PacketDecoder()
    dec.feed(b"NOTAPACKETNOTAPACKET")
    with pytest.raises(PacketError):
        dec.next_packet()


@given(
    mtype=st.text(min_size=1, max_size=40).filter(lambda s: 1 <= len(s.encode()) <= MAX_TYPE_LEN),
    payload=st.binary(max_size=4096),
)
def test_property_roundtrip(mtype, payload):
    assert decode_packet(encode_packet(mtype, payload)) == (mtype, payload)


@given(
    records=st.lists(
        st.tuples(
            st.text(min_size=1, max_size=10).filter(lambda s: len(s.encode()) >= 1),
            st.binary(max_size=256),
        ),
        min_size=1,
        max_size=10,
    ),
    chunk=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=50)
def test_property_stream_reassembly(records, chunk):
    """Any chunking of a concatenated stream reproduces the records."""
    stream = b"".join(encode_packet(t, p) for t, p in records)
    dec = PacketDecoder()
    got = []
    for i in range(0, len(stream), chunk):
        dec.feed(stream[i : i + chunk])
        got.extend(dec.packets())
    assert got == records
    assert dec.pending_bytes == 0


@given(data=st.binary(min_size=HEADER.size, max_size=200))
@settings(max_examples=100)
def test_property_random_bytes_never_crash(data):
    """Arbitrary garbage either needs more data, raises PacketError, or —
    astronomically unlikely — decodes; it must never raise anything else."""
    dec = PacketDecoder()
    dec.feed(data)
    try:
        dec.next_packet()
    except PacketError:
        pass
