"""Assorted behavior tests filling coverage gaps across modules."""

import pytest

from repro.core.linguafranca.endpoint import SimEndpoint
from repro.core.linguafranca.messages import Message
from repro.core.services.scheduler import QueueWorkSource, SchedulerServer
from repro.core.component import NullRuntime, Send
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import PrefixedStreams, RngStreams


def fabric(n=2):
    env = Environment()
    streams = RngStreams(seed=8)
    net = Network(env, streams, jitter=0.0)
    hosts = []
    for i in range(n):
        h = Host(env, HostSpec(name=f"h{i}"), streams)
        net.add_host(h)
        hosts.append(h)
    return env, streams, net, hosts


# ---------------------------------------------------------------- network


def test_delay_scales_with_payload_size():
    env, streams, net, hosts = fabric()
    small = net.delay("h0", "h1", 100)
    large = net.delay("h0", "h1", 1_000_000)
    assert large > small
    # The difference is exactly the transfer term at current congestion.
    assert large - small == pytest.approx((1_000_000 - 100) / net.bandwidth)


def test_jitter_bounds_delay():
    env = Environment()
    streams = RngStreams(seed=9)
    net = Network(env, streams, jitter=0.5, base_latency=1.0)
    for name in ("a", "b"):
        net.add_host(Host(env, HostSpec(name=name, site=name), streams))
    delays = [net.delay("a", "b", 0) for _ in range(200)]
    assert all(1.0 <= d <= 1.5 + 1e-9 for d in delays)
    assert max(delays) - min(delays) > 0.1  # jitter actually varies


# ---------------------------------------------------------------- host


def test_spawn_same_name_replaces_registry_entry():
    env, streams, net, hosts = fabric()
    host = hosts[0]

    from repro.simgrid.engine import Interrupt

    def guest(env):
        try:
            yield env.timeout(1000)
        except Interrupt:
            pass

    first = host.spawn(guest(env), "w")
    second = host.spawn(guest(env), "w")
    assert host.guest_names() == ["w"]
    # Killing the host interrupts only registry-tracked processes.
    host.go_down()
    env.run(until=1)
    assert not second.is_alive or second.processed
    # The first (orphaned) process is no longer tracked.
    assert host.guest_names() == []


# ---------------------------------------------------------------- endpoint


def test_backlog_preserves_order():
    env, streams, net, hosts = fabric()
    server = SimEndpoint(env, net, Address("h1", "svc"))
    client = SimEndpoint(env, net, Address("h0", "cli"))

    def server_proc(env):
        msg = yield from server.recv(None)
        # Three pushes before the correlated reply.
        for i in range(3):
            server.send(msg.sender, Message(mtype=f"PUSH{i}", sender=server.contact))
        server.send(msg.sender, msg.reply("REPLY", sender=server.contact))

    def client_proc(env):
        reply, _ = yield from client.request(
            "h1/svc", Message(mtype="ASK", sender=""), timeout=10)
        got = []
        for _ in range(3):
            m = yield from client.recv(timeout=5)
            got.append(m.mtype)
        return reply.mtype, got

    env.process(server_proc(env))
    cp = env.process(client_proc(env))
    env.run(until=60)
    assert cp.value == ("REPLY", ["PUSH0", "PUSH1", "PUSH2"])


# ---------------------------------------------------------------- scheduler


def test_hello_after_reap_gets_fresh_unit():
    work = QueueWorkSource([{"id": "u0"}, {"id": "u1"}])
    sched = SchedulerServer("s", work, report_period=10, dead_factor=1)
    sched.bind_runtime(NullRuntime(contact="s/sched"))
    sched.on_start(0.0)
    sched.on_message(Message(mtype="SCH_HELLO", sender="c/1", req_id=1), 1.0)
    sched.on_timer("sch:reap", 1000.0)  # reaps c/1, recycles u0
    assert sched.active_clients() == []
    effects = sched.on_message(Message(mtype="SCH_HELLO", sender="c/1", req_id=2),
                               1001.0)
    send = [e for e in effects if isinstance(e, Send)][0]
    assert send.message.body["unit"]["id"] == "u0"  # recycled front-of-queue


def test_scheduler_forecast_bank_pruned_on_reap():
    from repro.core.forecasting.benchmarking import event_tag

    work = QueueWorkSource([{"id": "u0"}])
    sched = SchedulerServer("s", work, report_period=10, dead_factor=1)
    sched.bind_runtime(NullRuntime(contact="s/sched"))
    sched.on_message(Message(mtype="SCH_REPORT", sender="c/1",
                             body={"rate": 5.0}), 1.0)
    assert event_tag("c/1", "RATE") in sched.forecasts.tags()
    sched.on_timer("sch:reap", 1000.0)
    assert event_tag("c/1", "RATE") not in sched.forecasts.tags()


# ---------------------------------------------------------------- rng


def test_prefixed_streams_nest():
    root = RngStreams(seed=5)
    nested = root.child("a").child("b")
    assert isinstance(nested, PrefixedStreams)
    assert nested.get("x").random() == RngStreams(5).get("a:b:x").random()
