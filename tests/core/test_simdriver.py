"""Tests for the sans-IO component model and its simulation driver."""

import pytest

from repro.core.component import (
    CancelTimer,
    Component,
    LogLine,
    NullRuntime,
    Send,
    SetTimer,
    Stop,
)
from repro.core.linguafranca.messages import Message
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


class EchoServer(Component):
    """Replies PONG to PING; stops on QUIT."""

    def __init__(self):
        super().__init__("echo")
        self.seen = []

    def on_message(self, message, now):
        self.seen.append((message.mtype, now))
        if message.mtype == "PING":
            return [Send(message.sender, message.reply("PONG", sender=self.contact))]
        if message.mtype == "QUIT":
            return [Stop("asked")]
        return []


class Ticker(Component):
    """Fires a periodic timer and records ticks."""

    def __init__(self, period=5.0, limit=3):
        super().__init__("ticker")
        self.period = period
        self.limit = limit
        self.ticks = []
        self.stopped = None

    def on_start(self, now):
        return [SetTimer("tick", self.period), LogLine("started")]

    def on_timer(self, key, now):
        assert key == "tick"
        self.ticks.append(now)
        if len(self.ticks) >= self.limit:
            return [Stop("done")]
        return [SetTimer("tick", self.period)]

    def on_stop(self, now, reason):
        self.stopped = (now, reason)


def build(n_hosts=2):
    env = Environment()
    streams = RngStreams(seed=2)
    net = Network(env, streams, jitter=0.0)
    hosts = []
    for i in range(n_hosts):
        h = Host(env, HostSpec(name=f"h{i}"), streams)
        net.add_host(h)
        hosts.append(h)
    return env, streams, net, hosts


def test_ticker_timers_and_stop():
    env, streams, net, hosts = build()
    logs = []
    ticker = Ticker(period=5, limit=3)
    drv = SimDriver(env, net, hosts[0], "tick", ticker, streams,
                    log_sink=lambda *a: logs.append(a))
    drv.start()
    env.run(until=100)
    assert ticker.ticks == [5, 10, 15]
    assert ticker.stopped == (15, "done")
    assert logs == [(0, "ticker", "info", "started")]
    # Endpoint released on stop.
    assert not net.is_bound(drv.address)


def test_echo_request_response_between_drivers():
    env, streams, net, hosts = build()
    server = EchoServer()
    SimDriver(env, net, hosts[1], "svc", server, streams).start()

    from repro.core.linguafranca.endpoint import SimEndpoint
    from repro.simgrid.network import Address

    client = SimEndpoint(env, net, Address("h0", "cli"))

    def client_proc(env):
        reply, rtt = yield from client.request(
            "h1/svc", Message(mtype="PING", sender=""), timeout=10
        )
        client.send("h1/svc", Message(mtype="QUIT", sender=""))
        return reply.mtype, rtt

    cp = env.process(client_proc(env))
    env.run(until=60)
    assert cp.value[0] == "PONG"
    assert server.seen[0][0] == "PING"
    assert server.seen[1][0] == "QUIT"


def test_host_death_stops_component_with_reason():
    env, streams, net, hosts = build()
    ticker = Ticker(period=5, limit=1000)
    drv = SimDriver(env, net, hosts[0], "tick", ticker, streams)
    drv.start()

    def killer(env):
        yield env.timeout(12)
        hosts[0].go_down("reclaimed")

    env.process(killer(env))
    env.run(until=50)
    assert ticker.stopped is not None
    t, reason = ticker.stopped
    assert t == 12
    assert reason == "host_down:reclaimed"
    assert not net.is_bound(drv.address)
    assert not drv.running


def test_cancel_timer():
    class CancelComp(Component):
        def __init__(self):
            super().__init__("c")
            self.fired = []

        def on_start(self, now):
            return [SetTimer("a", 5), SetTimer("b", 10), CancelTimer("a")]

        def on_timer(self, key, now):
            self.fired.append((key, now))
            return [Stop()]

    env, streams, net, hosts = build()
    comp = CancelComp()
    SimDriver(env, net, hosts[0], "p", comp, streams).start()
    env.run(until=60)
    assert comp.fired == [("b", 10)]


def test_set_timer_replaces_existing():
    class RearmComp(Component):
        def __init__(self):
            super().__init__("r")
            self.fired = []

        def on_start(self, now):
            # Arm at 5 then immediately rearm to 20: only 20 should fire.
            return [SetTimer("t", 5), SetTimer("t", 20)]

        def on_timer(self, key, now):
            self.fired.append(now)
            return [Stop()]

    env, streams, net, hosts = build()
    comp = RearmComp()
    SimDriver(env, net, hosts[0], "p", comp, streams).start()
    env.run(until=60)
    assert comp.fired == [20]


def test_component_contact_requires_binding():
    c = Component("x")
    with pytest.raises(RuntimeError):
        _ = c.contact
    c.bind_runtime(NullRuntime(contact="h/p"))
    assert c.contact == "h/p"


def test_runtime_exposes_speed_and_random():
    env, streams, net, hosts = build()
    comp = Component("probe")
    drv = SimDriver(env, net, hosts[0], "p", comp, streams)
    rt = comp.runtime
    assert rt.host_name() == "h0"
    assert rt.contact() == "h0/p"
    assert rt.speed() == hosts[0].effective_speed()
    r1, r2 = rt.random(), rt.random()
    assert 0 <= r1 <= 1 and 0 <= r2 <= 1 and r1 != r2
