"""Tests for typed messages and the type registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.linguafranca.messages import (
    Message,
    MessageError,
    TypeRegistry,
    fresh_req_id,
)


def test_message_roundtrip():
    m = Message(mtype="REPORT", sender="h1/client", body={"rate": 1.5, "n": [1, 2]})
    out = Message.decode(m.encode())
    assert out.mtype == "REPORT"
    assert out.sender == "h1/client"
    assert out.body == {"rate": 1.5, "n": [1, 2]}
    assert out.req_id is None and out.reply_to is None


def test_message_roundtrip_with_correlation():
    m = Message(mtype="Q", sender="a/b", req_id=7, reply_to=3)
    out = Message.decode(m.encode())
    assert out.req_id == 7
    assert out.reply_to == 3


def test_reply_correlates():
    req = Message(mtype="GET", sender="cli/1", req_id=fresh_req_id())
    rep = req.reply("GET_OK", sender="srv/1", body={"v": 1})
    assert rep.reply_to == req.req_id
    assert rep.mtype == "GET_OK"
    assert rep.body == {"v": 1}


def test_fresh_req_ids_unique():
    ids = {fresh_req_id() for _ in range(100)}
    assert len(ids) == 100


def test_unserializable_body_rejected():
    m = Message(mtype="X", sender="a/b", body={"bad": object()})
    with pytest.raises(MessageError):
        m.encode()


def test_decode_rejects_non_dict_body():
    import json

    from repro.core.linguafranca.packets import encode_packet

    payload = json.dumps({"s": "a/b", "b": [1, 2]}).encode()
    with pytest.raises(MessageError, match="body must be an object"):
        Message.from_parts("X", payload)


def test_decode_rejects_missing_fields():
    from repro.core.linguafranca.packets import encode_packet

    with pytest.raises(MessageError):
        Message.from_parts("X", b'{"only": 1}')


def test_decode_rejects_non_json():
    with pytest.raises(MessageError):
        Message.from_parts("X", b"\xff\xfe not json")


def test_from_parts_accepts_memoryview_payload():
    original = Message(mtype="REPORT", sender="a/b", body={"x": 1},
                       req_id=7)
    wire = original.encode()
    via_bytes = Message.decode(wire)
    import json

    record = json.dumps({"s": "a/b", "b": {"x": 1}, "q": 7}).encode()
    via_view = Message.from_parts("REPORT", memoryview(record))
    assert via_bytes == via_view == original


def test_from_parts_rejects_bad_utf8_in_view():
    with pytest.raises(MessageError):
        Message.from_parts("X", memoryview(b"\xff\xfe not json"))


def test_registry_validates():
    reg = TypeRegistry()

    def check_report(body):
        if "rate" not in body:
            raise ValueError("missing rate")

    reg.register("REPORT", check_report)
    reg.register("PING")
    assert reg.known("REPORT")
    assert not reg.known("NOPE")
    reg.validate(Message(mtype="REPORT", sender="a/b", body={"rate": 1}))
    reg.validate(Message(mtype="PING", sender="a/b"))
    with pytest.raises(MessageError, match="invalid"):
        reg.validate(Message(mtype="REPORT", sender="a/b", body={}))
    with pytest.raises(MessageError, match="unknown"):
        reg.validate(Message(mtype="NOPE", sender="a/b"))


def test_registry_duplicate_rejected():
    reg = TypeRegistry()
    reg.register("A")
    with pytest.raises(MessageError):
        reg.register("A")
    assert reg.types() == ["A"]


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


@given(body=st.dictionaries(st.text(max_size=10), json_values, max_size=6))
def test_property_message_body_roundtrip(body):
    m = Message(mtype="T", sender="h/p", body=body)
    assert Message.decode(m.encode()).body == body
