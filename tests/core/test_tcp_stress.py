"""Stress and fragmentation tests for the TCP transport."""

import socket
import threading
import time

import pytest

from repro.core.linguafranca.messages import Message
from repro.core.linguafranca.tcp import TcpClient, TcpServer

from tests.core.test_tcp import ServerThread


def echo(message):
    if message.mtype == "BIG":
        return message.reply("BIG_OK", sender="",
                             body={"size": len(message.body.get("blob", ""))})
    return message.reply("OK", sender="", body={})


def test_large_payload_roundtrip():
    """A payload far larger than any single recv() buffer must reassemble."""
    server = TcpServer("127.0.0.1", 0, echo)
    host, port = server.address
    with ServerThread(server):
        blob = "x" * 500_000
        reply = TcpClient().request(host, port, Message(
            mtype="BIG", sender="", body={"blob": blob}), timeout=10)
        assert reply is not None
        assert reply.mtype == "BIG_OK"
        assert reply.body["size"] == 500_000


def test_pipelined_messages_single_connection():
    """Several packets written in one TCP stream are all dispatched."""
    seen = []

    def handler(message):
        seen.append(message.body["i"])
        return None

    server = TcpServer("127.0.0.1", 0, handler)
    host, port = server.address
    with ServerThread(server):
        stream = b"".join(
            Message(mtype="SEQ", sender="pipeliner", body={"i": i}).encode()
            for i in range(10)
        )
        with socket.create_connection((host, port)) as sock:
            sock.sendall(stream)
        deadline = time.monotonic() + 3
        while len(seen) < 10 and time.monotonic() < deadline:
            time.sleep(0.01)
    assert seen == list(range(10))


def test_concurrent_clients():
    """Multiple client threads against one single-threaded reactor."""
    server = TcpServer("127.0.0.1", 0, echo)
    host, port = server.address
    results = []
    lock = threading.Lock()

    def worker(wid):
        client = TcpClient(sender=f"w{wid}")
        for i in range(10):
            reply = client.request(host, port, Message(
                mtype="PING", sender="", body={"w": wid, "i": i}), timeout=5)
            with lock:
                results.append(reply is not None and reply.mtype == "OK")

    with ServerThread(server):
        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
    assert len(results) == 40
    assert all(results)
    assert server.messages_handled == 40


def test_byte_by_byte_delivery():
    """Adversarially slow sender: one byte per write still decodes."""
    got = []

    def handler(message):
        got.append(message.body)
        return None

    server = TcpServer("127.0.0.1", 0, handler)
    host, port = server.address
    with ServerThread(server):
        data = Message(mtype="SLOW", sender="drip", body={"v": 42}).encode()
        with socket.create_connection((host, port)) as sock:
            for i in range(len(data)):
                sock.sendall(data[i : i + 1])
                if i % 7 == 0:
                    time.sleep(0.001)
        deadline = time.monotonic() + 3
        while not got and time.monotonic() < deadline:
            time.sleep(0.01)
    assert got == [{"v": 42}]
