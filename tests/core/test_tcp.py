"""Tests for the real TCP transport (localhost, single machine).

The server reactor is pumped from a helper thread in the tests only; the
library itself stays single-threaded, per the paper's design rules.
"""

import threading
import time

import pytest

from repro.core.linguafranca.messages import Message
from repro.core.linguafranca.tcp import TcpClient, TcpServer, TransportError


class ServerThread:
    """Pump a TcpServer reactor until stopped."""

    def __init__(self, server):
        self.server = server
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            self.server.step(0.02)

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self.thread.join(timeout=2)
        self.server.close()


def echo_handler(message):
    if message.mtype == "PING":
        return message.reply("PONG", sender="", body={"echo": message.body})
    if message.mtype == "PUSH":
        return None  # fire-and-forget
    return message.reply("ERROR", sender="", body={"unknown": message.mtype})


def test_request_reply_over_tcp():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        client = TcpClient(sender="tester")
        reply = client.request(host, port, Message(mtype="PING", sender="", body={"n": 5}))
        assert reply is not None
        assert reply.mtype == "PONG"
        assert reply.body == {"echo": {"n": 5}}


def test_fire_and_forget_over_tcp():
    got = []

    def handler(message):
        got.append(message.mtype)
        return None

    server = TcpServer("127.0.0.1", 0, handler)
    host, port = server.address
    with ServerThread(server):
        TcpClient().send(host, port, Message(mtype="PUSH", sender=""))
        deadline = time.monotonic() + 2
        while not got and time.monotonic() < deadline:
            time.sleep(0.01)
    assert got == ["PUSH"]


def test_unknown_type_gets_error_reply():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        reply = TcpClient().request(host, port, Message(mtype="WAT", sender=""))
        assert reply.mtype == "ERROR"


def test_request_timeout_when_handler_never_replies():
    server = TcpServer("127.0.0.1", 0, lambda m: None)
    host, port = server.address
    with ServerThread(server):
        reply = TcpClient().request(host, port, Message(mtype="PING", sender=""), timeout=0.3)
        assert reply is None


def test_connect_refused_raises_transport_error():
    client = TcpClient()
    with pytest.raises(TransportError):
        # Port 1 on localhost is essentially guaranteed closed.
        client.request("127.0.0.1", 1, Message(mtype="PING", sender=""), timeout=0.5)


def test_many_sequential_requests_one_server():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        client = TcpClient()
        for i in range(20):
            reply = client.request(host, port, Message(mtype="PING", sender="", body={"i": i}))
            assert reply.body["echo"]["i"] == i
    assert server.messages_handled == 20


def test_server_survives_garbage_connection():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        import socket

        with socket.create_connection((host, port)) as s:
            s.sendall(b"this is not a packet at all" * 10)
        time.sleep(0.1)
        # Server must still answer real clients.
        reply = TcpClient().request(host, port, Message(mtype="PING", sender=""))
        assert reply.mtype == "PONG"
    assert server.decode_errors >= 1
