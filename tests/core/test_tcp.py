"""Tests for the real TCP transport (localhost, single machine).

The server reactor is pumped from a helper thread in the tests only; the
library itself stays single-threaded, per the paper's design rules.
"""

import threading
import time

import pytest

from repro.core.linguafranca.messages import Message
from repro.core.linguafranca.tcp import TcpClient, TcpServer, TransportError


class ServerThread:
    """Pump a TcpServer reactor until stopped."""

    def __init__(self, server):
        self.server = server
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            self.server.step(0.02)

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self.thread.join(timeout=2)
        self.server.close()


def echo_handler(message):
    if message.mtype == "PING":
        return message.reply("PONG", sender="", body={"echo": message.body})
    if message.mtype == "PUSH":
        return None  # fire-and-forget
    return message.reply("ERROR", sender="", body={"unknown": message.mtype})


def test_request_reply_over_tcp():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        client = TcpClient(sender="tester")
        reply = client.request(host, port, Message(mtype="PING", sender="", body={"n": 5}))
        assert reply is not None
        assert reply.mtype == "PONG"
        assert reply.body == {"echo": {"n": 5}}


def test_fire_and_forget_over_tcp():
    got = []

    def handler(message):
        got.append(message.mtype)
        return None

    server = TcpServer("127.0.0.1", 0, handler)
    host, port = server.address
    with ServerThread(server):
        TcpClient().send(host, port, Message(mtype="PUSH", sender=""))
        deadline = time.monotonic() + 2
        while not got and time.monotonic() < deadline:
            time.sleep(0.01)
    assert got == ["PUSH"]


def test_unknown_type_gets_error_reply():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        reply = TcpClient().request(host, port, Message(mtype="WAT", sender=""))
        assert reply.mtype == "ERROR"


def test_request_timeout_when_handler_never_replies():
    server = TcpServer("127.0.0.1", 0, lambda m: None)
    host, port = server.address
    with ServerThread(server):
        reply = TcpClient().request(host, port, Message(mtype="PING", sender=""), timeout=0.3)
        assert reply is None


def test_connect_refused_raises_transport_error():
    client = TcpClient()
    with pytest.raises(TransportError):
        # Port 1 on localhost is essentially guaranteed closed.
        client.request("127.0.0.1", 1, Message(mtype="PING", sender=""), timeout=0.5)


def test_many_sequential_requests_one_server():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        client = TcpClient()
        for i in range(20):
            reply = client.request(host, port, Message(mtype="PING", sender="", body={"i": i}))
            assert reply.body["echo"]["i"] == i
    assert server.messages_handled == 20


def test_server_survives_garbage_connection():
    server = TcpServer("127.0.0.1", 0, echo_handler)
    host, port = server.address
    with ServerThread(server):
        import socket

        with socket.create_connection((host, port)) as s:
            s.sendall(b"this is not a packet at all" * 10)
        time.sleep(0.1)
        # Server must still answer real clients.
        reply = TcpClient().request(host, port, Message(mtype="PING", sender=""))
        assert reply.mtype == "PONG"
    assert server.decode_errors >= 1


# -- connection reuse (live-plane satellite) ---------------------------------


class AcceptCounter:
    """Wrap a server's accept path to count inbound connections."""

    def __init__(self, server):
        self.count = 0
        self._orig = server._accept

        def counting():
            self.count += 1
            self._orig()

        server._accept = counting


def _drain(server, want, got, timeout=5.0):
    deadline = time.monotonic() + timeout
    while len(got) < want and time.monotonic() < deadline:
        time.sleep(0.01)
    assert len(got) == want


def test_send_reuses_one_connection_per_peer():
    got = []
    server = TcpServer("127.0.0.1", 0, lambda m: got.append(m))
    accepts = AcceptCounter(server)
    host, port = server.address
    with ServerThread(server):
        client = TcpClient(sender="tester")
        for i in range(8):
            client.send(host, port, Message(mtype="PUSH", sender="", body={"i": i}))
        _drain(server, 8, got)
        client.close()
    assert accepts.count == 1
    assert client.reconnects == 0
    assert [m.body["i"] for m in got] == list(range(8))


def test_reuse_disabled_connects_per_send():
    got = []
    server = TcpServer("127.0.0.1", 0, lambda m: got.append(m))
    accepts = AcceptCounter(server)
    host, port = server.address
    with ServerThread(server):
        client = TcpClient(sender="tester", reuse=False)
        for i in range(3):
            client.send(host, port, Message(mtype="PUSH", sender="", body={"i": i}))
        _drain(server, 3, got)
        client.close()
    assert accepts.count == 3


def test_send_transparently_reconnects_after_peer_restart():
    got = []
    server = TcpServer("127.0.0.1", 0, lambda m: got.append(m))
    host, port = server.address
    with ServerThread(server):
        client = TcpClient(sender="tester")
        client.send(host, port, Message(mtype="PUSH", sender="", body={"gen": 1}))
        _drain(server, 1, got)
    # Peer restarts on the same port; the cached connection is now stale.
    server2 = TcpServer(host, port, lambda m: got.append(m))
    with ServerThread(server2):
        client.send(host, port, Message(mtype="PUSH", sender="", body={"gen": 2}))
        _drain(server2, 2, got)
        client.close()
    assert client.reconnects >= 1
    assert [m.body["gen"] for m in got] == [1, 2]


def test_close_drops_cached_connections():
    server = TcpServer("127.0.0.1", 0, lambda m: None)
    host, port = server.address
    with ServerThread(server):
        client = TcpClient(sender="tester")
        client.send(host, port, Message(mtype="PUSH", sender="", body={}))
        assert client._conns
        client.close()
        assert not client._conns
