"""System resilience under random message loss (flaky SCInet conditions).

EveryWare's recovery primitives are time-outs and re-registration; no
protocol in the stack may depend on reliable delivery. These tests run
the full gossip + scheduler + client stack over a network that silently
drops a significant fraction of datagrams and assert the system still
converges and delivers work.
"""

import pytest

from repro.core.gossip import ComparatorRegistry, GossipServer
from repro.core.services import LoggingServer, QueueWorkSource, SchedulerServer
from repro.core.simdriver import SimDriver
from repro.ramsey.client import RAMSEY_BEST, ModelEngine, RamseyClient, ramsey_comparator
from repro.ramsey.tasks import unit_generator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams


def build_lossy_world(loss_rate, seed=23):
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1, loss_rate=loss_rate)

    def add(name):
        h = Host(env, HostSpec(name=name, speed=3e6), streams)
        net.add_host(h)
        h.start()
        return h

    comparators = ComparatorRegistry()
    comparators.register(RAMSEY_BEST, ramsey_comparator)
    gossip = GossipServer("gos", ["gos/gossip"], comparators=comparators,
                          poll_period=10, sync_period=15)
    SimDriver(env, net, add("gos"), "gossip", gossip, streams).start()

    work = QueueWorkSource(generator=unit_generator(43, 5, ops_budget=1e9))
    sched = SchedulerServer("sched", work, report_period=20, reap_period=60,
                            dead_factor=6)
    SimDriver(env, net, add("sched"), "sched", sched, streams).start()

    logsrv = LoggingServer("log")
    SimDriver(env, net, add("log"), "log", logsrv, streams).start()

    clients = []
    for i in range(4):
        client = RamseyClient(
            f"cli{i}", schedulers=["sched/sched"], engine=ModelEngine(),
            infra="unix", loggers=["log/log"],
            gossip_well_known=["gos/gossip"],
            work_period=15, report_period=20, hello_retry=15, seed=i)
        SimDriver(env, net, add(f"cli{i}"), "cli", client, streams).start()
        clients.append(client)
    return env, net, gossip, sched, logsrv, clients


@pytest.mark.parametrize("loss_rate", [0.05, 0.2])
def test_stack_converges_under_loss(loss_rate):
    env, net, gossip, sched, logsrv, clients = build_lossy_world(loss_rate)
    env.run(until=1200)
    # Loss actually happened.
    assert net.stats.dropped_loss > 0
    # All clients eventually registered and got work despite drops.
    assert sched.stats.units_assigned >= 4
    assert set(gossip.registry) >= {f"cli{i}/cli" for i in range(4)}
    # Work was delivered and logged.
    assert sum(r.data["ops"] for r in logsrv.by_kind("perf")) > 0
    # State written by one client spreads even over the lossy fabric.
    clients[0].store.set_local(RAMSEY_BEST,
                               {"k": 43, "n": 5, "energy": 1, "ops": 1e9},
                               env.now)
    env.run(until=2400)
    adopted = [c.store.get_data(RAMSEY_BEST) for c in clients[1:]]
    assert any(d is not None and d.get("energy") == 1 for d in adopted)


def test_loss_rate_accounting_plausible():
    env, net, gossip, sched, logsrv, clients = build_lossy_world(0.2)
    env.run(until=600)
    attempted = net.stats.sent
    lost = net.stats.dropped_loss
    assert attempted > 100
    # Empirical loss within generous binomial bounds of the configured 20%.
    assert 0.1 < lost / attempted < 0.3


def test_zero_loss_has_no_loss_drops():
    env, net, *_ = build_lossy_world(0.0)
    env.run(until=300)
    assert net.stats.dropped_loss == 0
