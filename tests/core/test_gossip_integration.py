"""Integration tests: Gossip pool synchronizing application components."""

import pytest

from repro.core.component import Component
from repro.core.gossip import (
    ComparatorRegistry,
    GossipAgent,
    GossipServer,
    StateStore,
)
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


class SyncedComponent(Component):
    """Minimal application component that synchronizes one state type."""

    def __init__(self, name, well_known, mtype="PROGRESS", comparator=None):
        super().__init__(name)
        self.well_known = well_known
        self.mtype = mtype
        self.comparator = comparator
        self.store = None
        self.agent = None

    def on_start(self, now):
        self.store = StateStore(self.contact)
        self.store.register(self.mtype, comparator=self.comparator)
        self.agent = GossipAgent(self.store, self.well_known, register_period=30)
        return self.agent.on_start(now, self.contact)

    def on_message(self, message, now):
        if GossipAgent.handles(message.mtype):
            return self.agent.on_message(message, now, self.contact)
        return []

    def on_timer(self, key, now):
        if GossipAgent.handles_timer(key):
            return self.agent.on_timer(key, now, self.contact)
        return []

    def write(self, data, now):
        self.store.set_local(self.mtype, data, now)

    def read(self):
        return self.store.get_data(self.mtype)


class GossipWorld:
    def __init__(self, n_gossips=2, n_comps=3, comparators=None, sites=None,
                 comparator=None, seed=4, **server_kw):
        self.env = Environment()
        self.streams = RngStreams(seed=seed)
        self.net = Network(self.env, self.streams, jitter=0.0)
        self.well_known = [f"gos{i}/gossip" for i in range(n_gossips)]
        self.gossips = []
        self.ghosts = []
        for i in range(n_gossips):
            site = (sites or {}).get(f"gos{i}", "core")
            h = Host(self.env, HostSpec(name=f"gos{i}", site=site), self.streams)
            self.net.add_host(h)
            self.ghosts.append(h)
            comp = GossipServer(
                f"gos{i}", self.well_known,
                comparators=comparators or ComparatorRegistry(),
                poll_period=5.0, sync_period=7.0,
                token_period=8.0, token_timeout=25.0,
                **server_kw,
            )
            SimDriver(self.env, self.net, h, "gossip", comp, self.streams).start()
            self.gossips.append(comp)
        self.comps = []
        self.chosts = []
        for i in range(n_comps):
            site = (sites or {}).get(f"app{i}", "core")
            h = Host(self.env, HostSpec(name=f"app{i}", site=site), self.streams)
            self.net.add_host(h)
            self.chosts.append(h)
            comp = SyncedComponent(f"app{i}", self.well_known, comparator=comparator)
            SimDriver(self.env, self.net, h, "app", comp, self.streams).start()
            self.comps.append(comp)


def test_registration_reaches_whole_pool():
    w = GossipWorld(n_gossips=2, n_comps=3)
    w.env.run(until=40)
    for g in w.gossips:
        assert set(g.registry) == {"app0/app", "app1/app", "app2/app"}
    for c in w.comps:
        assert c.agent.registered_with in w.well_known


def test_local_write_propagates_to_all_components():
    w = GossipWorld(n_gossips=2, n_comps=3)
    w.env.run(until=30)
    w.comps[0].write({"best": 41}, w.env.now)
    w.env.run(until=120)
    for c in w.comps:
        assert c.read() == {"best": 41}
    # The update flowed through poll -> adopt -> sync -> update push.
    assert sum(g.stats.updates_sent for g in w.gossips) >= 1


def test_newest_write_wins_everywhere():
    w = GossipWorld(n_gossips=2, n_comps=3)
    w.env.run(until=30)
    w.comps[0].write({"v": "old"}, w.env.now)
    w.env.run(until=60)
    w.comps[1].write({"v": "new"}, w.env.now)
    w.env.run(until=200)
    for c in w.comps:
        assert c.read() == {"v": "new"}


def test_custom_comparator_governs_freshness():
    """A 'bigger counter-example wins' comparator must override recency —
    the paper's registered-comparator semantics."""
    cmp = lambda a, b: a.data["size"] - b.data["size"]
    comparators = ComparatorRegistry()
    comparators.register("PROGRESS", cmp)
    w = GossipWorld(n_gossips=2, n_comps=2, comparators=comparators, comparator=cmp)
    w.env.run(until=30)
    w.comps[0].write({"size": 10}, w.env.now)
    w.env.run(until=100)
    # A later but *smaller* result must not displace the bigger one.
    w.comps[1].write({"size": 3}, w.env.now)
    w.env.run(until=250)
    for c in w.comps:
        assert c.read() == {"size": 10}


def test_dead_component_evicted_and_pool_notified():
    w = GossipWorld(n_gossips=2, n_comps=2)
    w.env.run(until=40)
    w.chosts[0].go_down("failure")
    w.env.run(until=400)
    for g in w.gossips:
        assert "app0/app" not in g.registry
    assert sum(g.stats.evictions for g in w.gossips) == 1


def test_component_survives_gossip_death():
    """Components re-register with another well-known gossip when their
    pool member dies; state keeps propagating."""
    w = GossipWorld(n_gossips=2, n_comps=2)
    w.env.run(until=40)
    w.ghosts[0].go_down("failure")
    w.env.run(until=120)
    w.comps[0].write({"after": "failure"}, w.env.now)
    w.env.run(until=400)
    for c in w.comps:
        assert c.read() == {"after": "failure"}


def test_workload_partitioned_across_pool():
    """Each component is polled by exactly one responsible gossip."""
    w = GossipWorld(n_gossips=3, n_comps=6)
    w.env.run(until=100)
    responsibilities = {}
    for g in w.gossips:
        for contact in g.registry:
            if g.responsible_for(contact):
                responsibilities.setdefault(contact, []).append(g.name)
    assert len(responsibilities) == 6
    for contact, owners in responsibilities.items():
        assert len(owners) == 1, f"{contact} owned by {owners}"
    # Polls actually happened, and only the responsible gossip polled.
    total_polls = sum(g.stats.polls_sent for g in w.gossips)
    assert total_polls > 0


def test_reregistration_after_eviction_heals():
    """Evicted-but-alive component (long silence, e.g. partition) comes
    back through periodic re-registration."""
    sites = {"gos0": "east", "gos1": "east", "app0": "west", "app1": "east"}
    w = GossipWorld(n_gossips=2, n_comps=2, sites=sites)
    w.env.run(until=40)
    w.net.set_partitions([["east"], ["west"]])
    w.env.run(until=400)
    for g in w.gossips:
        assert "app0/app" not in g.registry  # evicted during partition
    w.net.set_partitions([])
    w.env.run(until=700)
    assert any("app0/app" in g.registry for g in w.gossips)
    # And state written during the partition eventually reaches app0.
    w.comps[1].write({"healed": True}, w.env.now)
    w.env.run(until=900)
    assert w.comps[0].read() == {"healed": True}


def test_static_timeouts_mode_runs():
    """Ablation A1 switch: static time-outs still function (quality is
    compared in the benchmark, not here)."""
    w = GossipWorld(n_gossips=2, n_comps=2, dynamic_timeouts=False)
    w.env.run(until=60)
    w.comps[0].write({"x": 1}, w.env.now)
    w.env.run(until=200)
    for c in w.comps:
        assert c.read() == {"x": 1}
