"""Causal-trace propagation through the simulation driver (satellite of
the observability PR): message headers carry trace context, retransmitted
reliable sends stay on their root trace, and give-ups surface as
``gave-up`` spans wrapping ``on_send_failed``.
"""

from repro.core.component import Component, Send, SetTimer
from repro.core.linguafranca.messages import Message
from repro.core.policy import RetryPolicy
from repro.core.simdriver import SimDriver
from repro.core.telemetry import Telemetry
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


class Echo(Component):
    def on_message(self, message, now):
        if message.mtype == "PING":
            return [Send(message.sender,
                         message.reply("PONG", sender=self.contact))]
        return []


class Caller(Component):
    """Sends one reliable PING at start; records give-ups."""

    def __init__(self, dst, retry):
        super().__init__("caller")
        self.dst = dst
        self.retry = retry
        self.give_ups = []
        self.pongs = 0

    def on_start(self, now):
        return [Send(self.dst,
                     Message(mtype="PING", sender=self.contact, body={}),
                     retry=self.retry, label="the-call")]

    def on_message(self, message, now):
        if message.mtype == "PONG":
            self.pongs += 1
        return []

    def on_send_failed(self, send, now):
        self.give_ups.append((send.label, now))
        return []


def build(telemetry, n_hosts=2):
    env = Environment()
    streams = RngStreams(seed=5)
    net = Network(env, streams, jitter=0.0)
    hosts = []
    for i in range(n_hosts):
        h = Host(env, HostSpec(name=f"h{i}"), streams)
        net.add_host(h)
        hosts.append(h)
    return env, streams, net, hosts


def test_message_headers_carry_trace_and_recv_parents_to_sender():
    tel = Telemetry(trace=True)
    env, streams, net, hosts = build(tel)
    echo = Echo("echo")
    caller = Caller("h1/echo", retry=None)
    SimDriver(env, net, hosts[1], "echo", echo, streams, telemetry=tel).start()
    SimDriver(env, net, hosts[0], "cli", caller, streams, telemetry=tel).start()
    env.run(until=30)
    assert caller.pongs == 1
    tracer = tel.tracer
    (send_ping,) = tracer.named("send PING")
    (recv_ping,) = tracer.named("recv PING")
    (send_pong,) = tracer.named("send PONG")
    (recv_pong,) = tracer.named("recv PONG")
    # One causal chain: the PING's recv is a child of its send, the PONG
    # reply parents to the recv-handler span, and so on back to the
    # caller — all on a single trace id.
    assert recv_ping.trace_id == send_ping.trace_id
    assert recv_ping.parent_id == send_ping.span_id
    assert send_pong.trace_id == send_ping.trace_id
    assert send_pong.parent_id == recv_ping.span_id
    assert recv_pong.parent_id == send_pong.span_id
    assert recv_pong.outcome == "ok"


def test_retransmission_reuses_root_trace_id():
    tel = Telemetry(trace=True)
    env, streams, net, hosts = build(tel)
    # No component bound at the destination: every attempt is dropped,
    # forcing the full retry ladder.
    caller = Caller("h1/nobody", retry=RetryPolicy(max_attempts=3))
    SimDriver(env, net, hosts[0], "cli", caller, streams, telemetry=tel).start()
    env.run(until=600)
    tracer = tel.tracer
    (call,) = tracer.named("call PING")
    retransmits = tracer.named("retransmit PING")
    assert len(retransmits) == 2  # attempts 2 and 3
    for r in retransmits:
        assert r.trace_id == call.trace_id
        assert r.parent_id == call.span_id
        assert r.outcome == "retransmit"
    # Attempt numbers recorded in order.
    assert [r.args["attempt"] for r in retransmits] == [2, 3]


def test_give_up_emits_gave_up_spans_around_on_send_failed():
    tel = Telemetry(trace=True)
    env, streams, net, hosts = build(tel)
    caller = Caller("h1/nobody", retry=RetryPolicy(max_attempts=2))
    SimDriver(env, net, hosts[0], "cli", caller, streams, telemetry=tel).start()
    env.run(until=600)
    assert caller.give_ups and caller.give_ups[0][0] == "the-call"
    tracer = tel.tracer
    (call,) = tracer.named("call PING")
    assert call.outcome == "gave-up"
    (failed,) = tracer.named("send-failed the-call")
    assert failed.outcome == "gave-up"
    assert failed.trace_id == call.trace_id
    assert failed.parent_id == call.span_id


def test_resolved_call_span_finishes_ok():
    tel = Telemetry(trace=True)
    env, streams, net, hosts = build(tel)
    echo = Echo("echo")
    caller = Caller("h1/echo", retry=RetryPolicy(max_attempts=3))
    SimDriver(env, net, hosts[1], "echo", echo, streams, telemetry=tel).start()
    SimDriver(env, net, hosts[0], "cli", caller, streams, telemetry=tel).start()
    env.run(until=60)
    assert caller.pongs == 1
    (call,) = tel.tracer.named("call PING")
    assert call.outcome == "ok"
    assert call.end is not None and call.end > call.start
    assert not tel.tracer.named("retransmit PING")


class TimerChain(Component):
    """A timer armed inside a handler inherits that handler's context."""

    def __init__(self):
        super().__init__("chain")

    def on_start(self, now):
        return [SetTimer("first", 1.0)]

    def on_timer(self, key, now):
        if key == "first":
            return [SetTimer("second", 1.0)]
        return []


def test_timer_spans_chain_through_ambient_context():
    tel = Telemetry(trace=True)
    env, streams, net, hosts = build(tel)
    SimDriver(env, net, hosts[0], "t", TimerChain(), streams,
              telemetry=tel).start()
    env.run(until=10)
    tracer = tel.tracer
    (first,) = tracer.named("timer first")
    (second,) = tracer.named("timer second")
    (start,) = tracer.named("start chain")
    assert first.parent_id == start.span_id
    assert second.parent_id == first.span_id
    assert second.trace_id == start.trace_id


def test_tracing_disabled_leaves_no_spans_and_no_headers():
    tel = Telemetry()  # tracer off
    env, streams, net, hosts = build(tel)
    echo = Echo("echo")
    seen = []

    class Spy(Echo):
        def on_message(self, message, now):
            seen.append(message.trace)
            return super().on_message(message, now)

    caller = Caller("h1/echo", retry=None)
    SimDriver(env, net, hosts[1], "echo", Spy("echo"), streams,
              telemetry=tel).start()
    SimDriver(env, net, hosts[0], "cli", caller, streams, telemetry=tel).start()
    env.run(until=30)
    assert caller.pongs == 1
    assert tel.tracer.spans == []
    assert seen == [None]
