"""Tests for the NWS sensor mesh."""

import pytest

from repro.core.forecasting.sensors import (
    NWS_FORECAST,
    NWS_QUERY,
    NWSSensor,
)
from repro.core.linguafranca.endpoint import SimEndpoint
from repro.core.linguafranca.messages import Message
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import EventSchedule, ScheduledEvent
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams


def build_mesh(n=3, sites=None, **net_kw):
    env = Environment()
    streams = RngStreams(seed=6)
    net = Network(env, streams, jitter=0.0, **net_kw)
    contacts = [f"nws{i}/nws" for i in range(n)]
    sensors = []
    hosts = []
    for i in range(n):
        h = Host(env, HostSpec(name=f"nws{i}",
                               site=(sites[i] if sites else "core")), streams)
        net.add_host(h)
        hosts.append(h)
        sensor = NWSSensor(f"nws{i}", contacts, probe_period=10)
        SimDriver(env, net, h, "nws", sensor, streams).start()
        sensors.append(sensor)
    return env, net, hosts, sensors, contacts


def test_sensors_measure_peer_rtts():
    env, net, hosts, sensors, contacts = build_mesh(3)
    env.run(until=300)
    for sensor in sensors:
        for peer in contacts:
            if peer == sensor.contact:
                continue
            fc = sensor.forecast_for(peer)
            assert fc is not None
            assert fc.value > 0
    assert all(s.pongs_received > 0 for s in sensors)


def test_rtt_forecast_reflects_topology():
    """A far site's forecast RTT exceeds a near site's."""
    env, net, hosts, sensors, contacts = build_mesh(3, sites=["a", "a", "b"])
    net.set_site_latency("a", "b", 0.8)
    env.run(until=600)
    near = sensors[0].forecast_for(contacts[1]).value  # a <-> a
    far = sensors[0].forecast_for(contacts[2]).value  # a <-> b
    assert far > near * 5


def test_query_protocol():
    env, net, hosts, sensors, contacts = build_mesh(2)
    ch = Host(env, HostSpec(name="client"), streams=RngStreams(seed=1))
    net.add_host(ch)
    client = SimEndpoint(env, net, Address("client", "q"))

    def ask(env):
        yield env.timeout(120)  # let measurements accumulate
        reply, _ = yield from client.request(
            contacts[0], Message(mtype=NWS_QUERY, sender="",
                                 body={"peer": contacts[1]}), timeout=10)
        return reply

    proc = env.process(ask(env))
    env.run(until=200)
    reply = proc.value
    assert reply.mtype == NWS_FORECAST
    assert reply.body["value"] > 0
    assert "method" in reply.body
    assert sensors[0].queries_served == 1


def test_query_unknown_peer_returns_none():
    env, net, hosts, sensors, contacts = build_mesh(2)
    ch = Host(env, HostSpec(name="client"), streams=RngStreams(seed=1))
    net.add_host(ch)
    client = SimEndpoint(env, net, Address("client", "q"))

    def ask(env):
        reply, _ = yield from client.request(
            contacts[0], Message(mtype=NWS_QUERY, sender="",
                                 body={"peer": "nobody/nws"}), timeout=10)
        return reply

    proc = env.process(ask(env))
    env.run(until=50)
    assert proc.value.body["value"] is None


def test_sensor_survives_dead_peer():
    """Probes to a dead peer are silently lost; live-peer measurement
    continues and the dead peer's forecast goes stale, not wrong."""
    env, net, hosts, sensors, contacts = build_mesh(3)
    env.run(until=100)
    before = sensors[0].forecast_for(contacts[1]).samples
    hosts[2].go_down("failure")
    env.run(until=400)
    after = sensors[0].forecast_for(contacts[1])
    assert after.samples > before  # live peer still measured
    assert sensors[0].timer.open_count <= len(contacts)  # no probe leak


def test_forecast_tracks_congestion_change():
    env, net, hosts, sensors, contacts = build_mesh(
        2, sites=["a", "b"],
        congestion_model=EventSchedule([ScheduledEvent(500, 5000, 0.2)]),
        congestion_period=10,
    )
    net.start()
    env.run(until=450)
    quiet = sensors[0].forecast_for(contacts[1]).value
    env.run(until=1500)
    congested = sensors[0].forecast_for(contacts[1]).value
    assert congested > 2 * quiet
