"""Fuzz tests: servers must survive arbitrary hostile/malformed messages.

Robustness is a first-class EveryWare requirement (§2): any guest on a
shared machine can send anything to a well-known port, and at SC98 the
pool was reachable from the open exhibit floor. The driver's robustness
boundary converts handler explosions into dropped messages; these tests
fuzz every server type and then verify it still functions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import ComparatorRegistry, GossipServer
from repro.core.gossip.clique import CLIQUE_MTYPES
from repro.core.linguafranca.messages import Message
from repro.core.services import (
    LoggingServer,
    PersistentStateServer,
    QueueWorkSource,
    SchedulerServer,
)
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=12))
json_values = st.recursive(
    json_scalars,
    lambda kids: st.one_of(st.lists(kids, max_size=3),
                           st.dictionaries(st.text(max_size=6), kids, max_size=3)),
    max_leaves=10)
bodies = st.dictionaries(st.text(max_size=10), json_values, max_size=5)

KNOWN_MTYPES = sorted(
    {"GOS_REG", "GOS_STATE", "GOS_SYNC", "GOS_NEWCOMP", "GOS_DELCOMP",
     "SCH_HELLO", "SCH_REPORT", "PST_STORE", "PST_FETCH", "PST_LIST",
     "LOG_APPEND", "LOG_QUERY"} | set(CLIQUE_MTYPES))


def build_world(server_factory, port):
    env = Environment()
    streams = RngStreams(seed=1)
    net = Network(env, streams, jitter=0.0)
    h = Host(env, HostSpec(name="srv"), streams)
    net.add_host(h)
    component = server_factory()
    driver = SimDriver(env, net, h, port, component, streams)
    driver.start()
    ah = Host(env, HostSpec(name="attacker"), streams)
    net.add_host(ah)
    return env, net, component, driver


def fuzz(env, net, dst, payloads):
    src = Address("attacker", "fuzz")
    for mtype, body in payloads:
        try:
            data = Message(mtype=mtype, sender="attacker/fuzz", body=body).encode()
        except Exception:
            continue  # unencodable body: nothing reaches the wire anyway
        net.send(src, dst, data)
    env.run(until=env.now + 60)


@given(payloads=st.lists(st.tuples(st.sampled_from(KNOWN_MTYPES), bodies),
                         min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_gossip_server_survives_fuzz(payloads):
    env, net, gossip, driver = build_world(
        lambda: GossipServer("g", ["srv/gossip"],
                             comparators=ComparatorRegistry(),
                             poll_period=5, sync_period=5), "gossip")
    fuzz(env, net, Address("srv", "gossip"), payloads)
    assert driver.running
    # Still functional: a legitimate registration works afterwards.
    net.send(Address("attacker", "fuzz"), Address("srv", "gossip"),
             Message(mtype="GOS_REG", sender="attacker/fuzz",
                     body={"types": ["X"]}).encode())
    env.run(until=env.now + 30)
    assert "attacker/fuzz" in gossip.registry


@given(payloads=st.lists(st.tuples(st.sampled_from(KNOWN_MTYPES), bodies),
                         min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_scheduler_survives_fuzz(payloads):
    env, net, sched, driver = build_world(
        lambda: SchedulerServer(
            "s", QueueWorkSource([{"id": "u0"}]), report_period=10), "sched")
    fuzz(env, net, Address("srv", "sched"), payloads)
    assert driver.running
    net.send(Address("attacker", "fuzz"), Address("srv", "sched"),
             Message(mtype="SCH_HELLO", sender="attacker/fuzz",
                     body={"infra": "x"}).encode())
    env.run(until=env.now + 30)
    assert "attacker/fuzz" in sched.active_clients()


@given(payloads=st.lists(st.tuples(st.sampled_from(KNOWN_MTYPES), bodies),
                         min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_persistent_manager_survives_fuzz(payloads):
    env, net, pst, driver = build_world(
        lambda: PersistentStateServer("p"), "pst")
    fuzz(env, net, Address("srv", "pst"), payloads)
    assert driver.running
    net.send(Address("attacker", "fuzz"), Address("srv", "pst"),
             Message(mtype="PST_STORE", sender="attacker/fuzz",
                     body={"key": "k", "object": {"v": 1}}).encode())
    env.run(until=env.now + 30)
    assert pst.backend.get("k") == {"v": 1}


@given(payloads=st.lists(st.tuples(st.sampled_from(KNOWN_MTYPES), bodies),
                         min_size=1, max_size=25))
@settings(max_examples=15, deadline=None)
def test_logging_server_survives_fuzz(payloads):
    env, net, logsrv, driver = build_world(lambda: LoggingServer("l"), "log")
    fuzz(env, net, Address("srv", "log"), payloads)
    assert driver.running


def test_handler_errors_are_counted_and_logged():
    logs = []
    env = Environment()
    streams = RngStreams(seed=2)
    net = Network(env, streams, jitter=0.0)
    h = Host(env, HostSpec(name="srv"), streams)
    net.add_host(h)
    gossip = GossipServer("g", ["srv/gossip"], comparators=ComparatorRegistry())
    driver = SimDriver(env, net, h, "gossip", gossip, streams,
                       log_sink=lambda *a: logs.append(a))
    driver.start()
    ah = Host(env, HostSpec(name="x"), streams)
    net.add_host(ah)
    # GOS_NEWCOMP without 'contact' raises KeyError inside the handler.
    net.send(Address("x", "p"), Address("srv", "gossip"),
             Message(mtype="GOS_NEWCOMP", sender="x/p", body={}).encode())
    env.run(until=30)
    assert driver.handler_errors == 1
    assert driver.running
    assert any(level == "error" for (_, _, level, _) in logs)
