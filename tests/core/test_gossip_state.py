"""Tests for state records, comparators, and the StateStore."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.gossip.state import (
    ComparatorRegistry,
    StateRecord,
    StateStore,
    default_comparator,
)


def rec(mtype="T", data=None, stamp=0.0, origin="a/1", seq=1):
    return StateRecord(mtype=mtype, data=data or {}, stamp=stamp, origin=origin, seq=seq)


def test_record_body_roundtrip():
    r = rec(data={"best": [1, 2]}, stamp=12.5, seq=3)
    assert StateRecord.from_body(r.to_body()) == r


def test_default_comparator_orders_by_stamp_then_seq_then_origin():
    assert default_comparator(rec(stamp=2), rec(stamp=1)) > 0
    assert default_comparator(rec(stamp=1), rec(stamp=2)) < 0
    assert default_comparator(rec(seq=5), rec(seq=3)) > 0
    assert default_comparator(rec(origin="b/1"), rec(origin="a/1")) > 0
    assert default_comparator(rec(), rec()) == 0


def test_comparator_registry_custom():
    reg = ComparatorRegistry()
    reg.register("BEST", lambda a, b: a.data["size"] - b.data["size"])
    big = rec(mtype="BEST", data={"size": 10})
    small = rec(mtype="BEST", data={"size": 3}, stamp=99.0)  # newer but smaller
    assert reg.compare(big, small) > 0
    assert reg.fresher(small, big) is big


def test_comparator_registry_type_mismatch():
    reg = ComparatorRegistry()
    with pytest.raises(ValueError):
        reg.compare(rec(mtype="A"), rec(mtype="B"))


def test_comparator_registry_default_for_unknown():
    reg = ComparatorRegistry()
    assert reg.compare(rec(stamp=5), rec(stamp=1)) > 0


def test_store_local_writes_bump_seq_and_stamp():
    s = StateStore("me/1")
    s.register("PROGRESS")
    r1 = s.set_local("PROGRESS", {"n": 1}, now=10.0)
    r2 = s.set_local("PROGRESS", {"n": 2}, now=11.0)
    assert (r1.seq, r2.seq) == (1, 2)
    assert r2.stamp == 11.0
    assert s.get_data("PROGRESS") == {"n": 2}


def test_store_register_twice_rejected():
    s = StateStore("me/1")
    s.register("X")
    with pytest.raises(ValueError):
        s.register("X")


def test_store_write_unregistered_rejected():
    s = StateStore("me/1")
    with pytest.raises(KeyError):
        s.set_local("NOPE", {}, now=0)


def test_store_apply_remote_only_if_fresher():
    s = StateStore("me/1")
    s.register("X", initial={"v": 0}, now=5.0)
    stale = rec(mtype="X", data={"v": -1}, stamp=1.0, origin="other/1")
    fresh = rec(mtype="X", data={"v": 9}, stamp=50.0, origin="other/1")
    assert not s.apply_remote(stale)
    assert s.get_data("X") == {"v": 0}
    assert s.apply_remote(fresh)
    assert s.get_data("X") == {"v": 9}


def test_store_apply_remote_with_custom_comparator():
    s = StateStore("me/1")
    s.register("BEST", comparator=lambda a, b: a.data["size"] - b.data["size"])
    s.set_local("BEST", {"size": 5}, now=0)
    worse_newer = rec(mtype="BEST", data={"size": 4}, stamp=100.0, origin="z/9")
    assert not s.apply_remote(worse_newer)
    better = rec(mtype="BEST", data={"size": 7}, stamp=0.5, origin="z/9")
    assert s.apply_remote(better)


def test_store_records_deterministic_order():
    s = StateStore("me/1")
    for t in ("B", "A", "C"):
        s.register(t, initial={}, now=0)
    assert [r.mtype for r in s.records()] == ["A", "B", "C"]


def test_store_get_missing():
    s = StateStore("me/1")
    s.register("X")
    assert s.get("X") is None
    assert s.get_data("X") is None


@given(
    stamps=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=20)
)
def test_property_apply_remote_converges_to_freshest(stamps):
    """Applying records in any order leaves the store holding the max."""
    records = [
        rec(mtype="X", data={"i": i}, stamp=t, origin=f"o/{i}", seq=1)
        for i, t in enumerate(stamps)
    ]
    best = max(records, key=lambda r: (r.stamp, r.seq, r.origin))
    s = StateStore("me/1")
    s.register("X")
    for r in records:
        s.apply_remote(r)
    assert s.get("X") == best


def test_comparator_antisymmetry_property():
    reg = ComparatorRegistry()
    a, b = rec(stamp=3, seq=2), rec(stamp=3, seq=4)
    assert reg.compare(a, b) == -reg.compare(b, a)
