"""Clique protocol tests: leadership, failure, partition and merge.

The clique state machine is exercised through the real simulator by
wrapping it in a minimal component, so message loss, delays, and host
death behave exactly as in the full system.
"""

import pytest

from repro.core.component import Component
from repro.core.gossip.clique import CliqueState
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


class CliqueComponent(Component):
    """Bare component hosting only a CliqueState."""

    def __init__(self, name, universe):
        super().__init__(name)
        self.universe = universe
        self.clique = None

    def on_start(self, now):
        self.clique = CliqueState(
            self_id=self.contact,
            universe=self.universe,
            token_period=10.0,
            assemble_wait=2.0,
            token_timeout=30.0,
            elect_timeout=5.0,
        )
        return self.clique.start(now)

    def on_message(self, message, now):
        return self.clique.on_message(message, now)

    def on_timer(self, key, now):
        return self.clique.on_timer(key, now)


class World:
    def __init__(self, n, sites=None):
        self.env = Environment()
        self.streams = RngStreams(seed=9)
        self.net = Network(self.env, self.streams, jitter=0.0)
        self.hosts = []
        self.comps = []
        universe = [f"g{i}/clq" for i in range(n)]
        for i in range(n):
            site = sites[i] if sites else "core"
            h = Host(self.env, HostSpec(name=f"g{i}", site=site), self.streams)
            self.net.add_host(h)
            self.hosts.append(h)
        for i in range(n):
            comp = CliqueComponent(f"g{i}", universe)
            SimDriver(self.env, self.net, self.hosts[i], "clq", comp, self.streams).start()
            self.comps.append(comp)

    def leaders(self, alive_only=True):
        out = set()
        for c, h in zip(self.comps, self.hosts):
            if alive_only and not h.up:
                continue
            out.add(c.clique.leader)
        return out

    def views(self, alive_only=True):
        return [
            sorted(c.clique.members)
            for c, h in zip(self.comps, self.hosts)
            if not alive_only or h.up
        ]


def test_stable_pool_converges_on_one_leader_and_full_membership():
    w = World(4)
    w.env.run(until=60)
    assert w.leaders() == {"g3/clq"}  # bully: highest id leads
    expected = sorted(f"g{i}/clq" for i in range(4))
    for view in w.views():
        assert view == expected
    # Nobody needed an election in a healthy pool.
    assert all(c.clique.elections_started == 0 for c in w.comps)


def test_leader_death_triggers_election_and_new_leader():
    w = World(4)
    w.env.run(until=60)
    w.hosts[3].go_down("failure")  # kill the leader g3
    w.env.run(until=200)
    assert w.leaders() == {"g2/clq"}  # next-highest takes over
    for view in w.views():
        assert view == sorted(f"g{i}/clq" for i in range(3))


def test_non_leader_death_shrinks_membership_without_election():
    w = World(4)
    w.env.run(until=60)
    w.hosts[0].go_down("failure")
    w.env.run(until=150)
    assert w.leaders() == {"g3/clq"}
    for view in w.views():
        assert view == sorted(f"g{i}/clq" for i in (1, 2, 3))


def test_partition_forms_two_subcliques_then_merges():
    w = World(4, sites=["east", "east", "west", "west"])
    w.env.run(until=60)
    assert w.leaders() == {"g3/clq"}

    # Partition east from west: g0,g1 lose the leader.
    w.net.set_partitions([["east"], ["west"]])
    w.env.run(until=300)
    east_leader = {w.comps[0].clique.leader, w.comps[1].clique.leader}
    west_leader = {w.comps[2].clique.leader, w.comps[3].clique.leader}
    assert east_leader == {"g1/clq"}  # east elects its highest id
    assert west_leader == {"g3/clq"}  # west keeps the old leader
    assert sorted(w.comps[0].clique.members) == ["g0/clq", "g1/clq"]
    assert sorted(w.comps[3].clique.members) == ["g2/clq", "g3/clq"]

    # Heal: the two subcliques must merge back under one leader.
    w.net.set_partitions([])
    w.env.run(until=600)
    assert w.leaders() == {"g3/clq"}
    expected = sorted(f"g{i}/clq" for i in range(4))
    for view in w.views():
        assert view == expected


def test_rejoin_after_host_recovery():
    w = World(3)
    w.env.run(until=60)
    w.hosts[0].go_down("failure")
    w.env.run(until=150)
    assert w.views()[0] == sorted(["g1/clq", "g2/clq"])

    # Bring the host back and restart its component.
    w.hosts[0].go_up()
    comp = CliqueComponent("g0", [f"g{i}/clq" for i in range(3)])
    SimDriver(w.env, w.net, w.hosts[0], "clq", comp, w.streams).start()
    w.comps[0] = comp
    w.env.run(until=300)
    assert w.leaders() == {"g2/clq"}
    for view in w.views():
        assert view == sorted(f"g{i}/clq" for i in range(3))


def test_dynamic_join_extends_universe():
    w = World(3)
    w.env.run(until=60)
    # A brand-new gossip (not in anyone's configured universe) joins via
    # the well-known members.
    h = Host(w.env, HostSpec(name="g9", site="core"), w.streams)
    w.net.add_host(h)

    class JoiningComponent(CliqueComponent):
        def on_start(self, now):
            # A joiner knows the well-known contact points plus itself —
            # exactly how GossipServer constructs its clique.
            self.clique = CliqueState(
                self_id=self.contact,
                universe=[f"g{i}/clq" for i in range(3)] + [self.contact],
                token_period=10.0,
                assemble_wait=2.0,
                token_timeout=30.0,
                elect_timeout=5.0,
            )
            effects = self.clique.join_effects([f"g{i}/clq" for i in range(3)])
            effects.extend(self.clique.start(now))
            return effects

    comp = JoiningComponent("g9", None)
    SimDriver(w.env, w.net, h, "clq", comp, w.streams).start()
    w.env.run(until=300)
    # g9/clq sorts above g2/clq, so after joining it should end up leading
    # (bully semantics) and everyone should see 4 members.
    members = sorted(["g0/clq", "g1/clq", "g2/clq", "g9/clq"])
    for c in (*w.comps, comp):
        assert sorted(c.clique.members) == members
    leaders = {c.clique.leader for c in (*w.comps, comp)}
    assert leaders == {"g9/clq"}


def test_token_and_version_monotonic():
    w = World(3)
    w.env.run(until=40)
    v1 = w.comps[0].clique.version
    w.hosts[2].go_down("failure")
    w.env.run(until=200)
    v2 = w.comps[0].clique.version
    assert v2 > v1 or w.comps[0].clique.tokens_seen > 0
    assert w.comps[0].clique.version >= v1
