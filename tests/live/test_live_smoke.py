"""End-to-end: the SC98 world as real OS processes on localhost.

One deliberately-small world (gossip pair + scheduler + persistent +
logger + 2 clients), one chaos kill, ~10 wall seconds. This is the
tier-1 guarantee that the deployment plane actually deploys: processes
spawn, telemetry merges, a killed client restarts, its work is reaped
and requeued, and every counter-example that reached persistent state
verifies.
"""

import pytest

from repro.live import check_invariants, run_live, sc98_topology


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("liveworld")
    topology = sc98_topology(clients=2, gossips=2, schedulers=1,
                             persistents=1, loggers=1)
    return run_live(topology, duration=10.0, kill_at=3.0,
                    kill_node="cli0", out=str(out)), out


def test_world_runs_and_invariants_hold(report):
    rep, _ = report
    assert rep.violations == []
    assert rep.ok


def test_every_node_reported_telemetry(report):
    rep, _ = report
    for name, node in rep.nodes.items():
        assert node["hellos"] >= 1, name
        assert node["reports"] >= 1, name


def test_killed_client_restarted_and_work_requeued(report):
    rep, _ = report
    assert [c["node"] for c in rep.chaos] == ["cli0"]
    cli0 = rep.nodes["cli0"]
    assert cli0["restarts"] >= 1
    assert cli0["incarnation"] >= 1
    sched = rep.nodes["sched0"]["stats"]
    assert sched["reaps"] + sched["units_requeued"] >= 1


def test_surviving_nodes_drained_gracefully(report):
    rep, _ = report
    for name, node in rep.nodes.items():
        if name == "cli0":
            continue  # the chaos victim's first life ended by SIGKILL
        assert node["state"] == "stopped", name
        assert node["stop_reason"], name


def test_counter_examples_stored_and_verified(report):
    rep, _ = report
    assert rep.counter_examples, "no counter-example reached persistent state"
    assert all(e["verified"] for e in rep.counter_examples)
    assert rep.verify_failures == []


def test_merged_artifacts_parse(report):
    import json

    rep, out = report
    loaded = json.loads((out / "report.json").read_text())
    assert loaded["ok"] is True
    trace = json.loads((out / "trace.json").read_text())
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    assert len(events) > 0
    # Spans from several distinct processes merged onto one timeline.
    assert len({e.get("pid") for e in events if isinstance(e, dict)}) >= 5
    metrics = json.loads((out / "metrics.json").read_text())
    sent = sum(v for k, v in metrics["counters"].items()
               if k.startswith("msg.sent"))
    recv = sum(v for k, v in metrics["counters"].items()
               if k.startswith("msg.recv"))
    # A SIGKILLed incarnation loses its last unshipped send counts, so
    # sent and recv can each lead by a ship period's worth of traffic —
    # but both planes must have moved real messages.
    assert sent > 0 and recv > 0
    assert abs(sent - recv) < 0.5 * max(sent, recv)
    assert (out / "log.txt").read_text().strip()


def test_check_invariants_flags_corruption(report):
    rep, _ = report
    # A corrupted counter-example must flip the verdict.
    rep2_failures = rep.verify_failures + ["ramsey/bogus: not a coloring"]
    import copy

    broken = copy.copy(rep)
    broken.verify_failures = rep2_failures
    assert any("failed verification" in v for v in check_invariants(broken))


def test_supervision_accounting_coherent(report):
    rep, _ = report
    for name, node in rep.nodes.items():
        # Every incarnation came from exactly one spawn.
        assert node["spawns"] == node["restarts"] + 1, name
        assert node["incarnation"] == node["restarts"], name
    for example in rep.counter_examples:
        assert set(example) >= {"key", "k", "n", "verified"}
        assert example["k"] == rep.topology["params"]["k"]
        assert example["n"] == rep.topology["params"]["n"]
