"""Port allocation for the bootstrap manifest."""

import socket

from repro.live import PortAllocator


def test_allocated_ports_are_distinct():
    with PortAllocator() as alloc:
        ports = alloc.allocate(12)
        assert len(set(ports)) == 12
        assert all(1 <= p <= 65535 for p in ports)


def test_ports_held_until_release_then_bindable():
    alloc = PortAllocator()
    (port,) = alloc.allocate(1)
    # While held, a plain bind (no SO_REUSEADDR) must fail: that is the
    # hold that stops the kernel from double-assigning within a batch.
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        try:
            probe.bind(("127.0.0.1", port))
        except OSError:
            pass
        else:
            raise AssertionError("held port was bindable")
    finally:
        probe.close()
    alloc.release()
    # After release the node process can take the port over.
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind(("127.0.0.1", port))
    finally:
        server.close()


def test_release_is_idempotent_and_batches_accumulate():
    alloc = PortAllocator()
    first = alloc.allocate(2)
    second = alloc.allocate(3)
    assert alloc.allocated == first + second
    alloc.release()
    alloc.release()
    assert alloc.allocated == first + second  # history, not live holds
