"""Epoch-merge edge cases across process incarnations (DESIGN §14).

A restarted node is a *different* process with its own wall epoch and
sequence space. These tests pin the collector's behaviour on the messy
interleavings real kills produce: stragglers from a dead life arriving
after the successor's hello, duplicate sequence numbers after a
reconnect resend, and flight-recorder dumps recovered post-mortem that
re-offer spans the shipper already delivered.
"""

import pytest

from repro.core.linguafranca.messages import Message
from repro.live import Collector
from repro.live.collector import COL_HELLO, COL_REPORT


@pytest.fixture
def collector():
    col = Collector()
    yield col
    col.close()


def _hello(name, epoch, incarnation=0):
    return Message(mtype=COL_HELLO, sender="127.0.0.1:1",
                   body={"node": name, "pid": 42,
                         "incarnation": incarnation, "epoch": epoch})


def _report(name, seq, incarnation=0, **extra):
    body = {"node": name, "seq": seq, "incarnation": incarnation,
            "metrics": {}, "spans": [], "logs": [], "stats": {}}
    body.update(extra)
    return Message(mtype=COL_REPORT, sender="127.0.0.1:1", body=body)


def _span(span_id, start, end, name="x", trace_id=7):
    return {"trace_id": trace_id, "span_id": span_id, "parent_id": None,
            "name": name, "component": "n1", "start": start, "end": end,
            "outcome": "ok"}


def test_straggler_from_dead_incarnation_uses_its_own_epoch(collector):
    # inc0 booted at collector epoch +1s; inc1 at +10s. A report from
    # inc0 still in flight when inc1's hello lands must be shifted by
    # inc0's epoch — not the successor's.
    collector._handle(_hello("n1", epoch=collector.epoch + 1.0,
                             incarnation=0))
    collector._handle(_report("n1", 1, incarnation=0))
    collector._handle(_hello("n1", epoch=collector.epoch + 10.0,
                             incarnation=1))
    collector._handle(_report("n1", 2, incarnation=0,
                              spans=[_span(101, 2.0, 2.5)]))
    collector._handle(_report("n1", 1, incarnation=1,
                              spans=[_span(201, 2.0, 2.5)]))
    rec = collector.nodes["n1"]
    assert rec.reports == 3  # the straggler was not dropped
    by_id = {s.span_id: s for s in rec.spans}
    assert by_id[101].start == pytest.approx(3.0)   # 2.0 + 1.0
    assert by_id[201].start == pytest.approx(12.0)  # 2.0 + 10.0


def test_duplicate_seq_after_reconnect_dropped_per_incarnation(collector):
    collector._handle(_hello("n1", epoch=collector.epoch, incarnation=0))
    collector._handle(_report("n1", 3, incarnation=0,
                              spans=[_span(11, 1.0, 1.1)]))
    # Reconnect resend: same incarnation, same seq — a duplicate.
    collector._handle(_report("n1", 3, incarnation=0,
                              spans=[_span(11, 1.0, 1.1)]))
    # But seq 3 from the NEXT incarnation is new data, not a duplicate.
    collector._handle(_hello("n1", epoch=collector.epoch, incarnation=1))
    collector._handle(_report("n1", 3, incarnation=1,
                              spans=[_span(1000011, 1.0, 1.1)]))
    rec = collector.nodes["n1"]
    assert rec.duplicate_reports == 1
    assert sorted(s.span_id for s in rec.spans) == [11, 1000011]


def test_span_dedup_is_by_id_even_across_paths(collector):
    collector._handle(_hello("n1", epoch=collector.epoch, incarnation=0))
    collector._handle(_report("n1", 1, incarnation=0,
                              spans=[_span(5, 0.0, 0.5)]))
    collector._handle(_report("n1", 2, incarnation=0,
                              spans=[_span(5, 0.0, 0.5),
                                     _span(6, 0.6, 0.9)]))
    rec = collector.nodes["n1"]
    assert sorted(s.span_id for s in rec.spans) == [5, 6]


def test_flight_dump_after_successor_hello_merges_idempotently(collector):
    # inc0 shipped spans 1-2, died (span 3 never shipped), inc1 said
    # hello — THEN the supervisor recovers inc0's flight dump holding
    # all three. Only span 3 is new; timestamps use inc0's epoch.
    epoch0 = collector.epoch + 2.0
    collector._handle(_hello("n1", epoch=epoch0, incarnation=0))
    collector._handle(_report("n1", 1, incarnation=0,
                              spans=[_span(1, 0.1, 0.2),
                                     _span(2, 0.3, 0.4)]))
    collector._handle(_hello("n1", epoch=collector.epoch + 9.0,
                             incarnation=1))

    added = collector.ingest_flight({
        "node": "n1", "incarnation": 0, "epoch": epoch0,
        "capacity": 2048, "sealed": False, "reason": "",
        "spans": [_span(1, 0.1, 0.2), _span(2, 0.3, 0.4),
                  _span(3, 0.5, 0.6, name="last gasp")],
        "logs": [],
    })
    assert added == 1
    rec = collector.nodes["n1"]
    assert rec.flight_dumps == 1 and rec.flight_spans == 1
    by_id = {s.span_id: s for s in rec.spans}
    assert sorted(by_id) == [1, 2, 3]
    assert by_id[3].start == pytest.approx(2.5)  # 0.5 + inc0's 2.0
    # Re-recovery (e.g. a second poll) adds nothing.
    assert collector.ingest_flight({
        "node": "n1", "incarnation": 0, "epoch": epoch0,
        "spans": [_span(3, 0.5, 0.6)], "logs": []}) == 0


def test_flight_dump_for_unknown_node_creates_record(collector):
    # A node that died before its first report still gets its black box
    # into the merged trace.
    added = collector.ingest_flight({
        "node": "ghost", "incarnation": 0, "epoch": collector.epoch + 1.0,
        "spans": [_span(77, 1.0, 1.5)], "logs": [
            {"t": 1.0, "component": "ghost", "level": "warn", "text": "uh"}],
    })
    assert added == 1
    rec = collector.nodes["ghost"]
    assert rec.spans[0].start == pytest.approx(2.0)
    assert rec.logs[0]["t"] == pytest.approx(2.0)
    assert collector.ingest_flight({"node": "", "spans": []}) == 0
    assert collector.bad_messages == 1


def test_log_dedup_between_shipment_and_flight_dump(collector):
    collector._handle(_hello("n1", epoch=collector.epoch, incarnation=0))
    line = {"t": 1.0, "component": "n1", "level": "info", "text": "hi"}
    collector._handle(_report("n1", 1, incarnation=0, logs=[line]))
    collector.ingest_flight({"node": "n1", "incarnation": 0,
                             "epoch": collector.epoch,
                             "spans": [], "logs": [dict(line)]})
    assert len(collector.nodes["n1"].logs) == 1
