"""Node construction from the manifest: role wiring and shipped stats."""

import pytest

from repro.core.gossip import GossipServer
from repro.core.services import (
    LoggingServer,
    PersistentStateServer,
    SchedulerServer,
)
from repro.live import build_manifest, sc98_topology
from repro.live.node import build_component, node_stats
from repro.ramsey import RamseyClient


@pytest.fixture
def manifest():
    return build_manifest(sc98_topology(clients=2),
                          collector="127.0.0.1:9999")


def test_roles_build_the_matching_components(manifest):
    assert isinstance(build_component(manifest, "gossip0"), GossipServer)
    assert isinstance(build_component(manifest, "sched0"), SchedulerServer)
    assert isinstance(build_component(manifest, "pst0"), PersistentStateServer)
    assert isinstance(build_component(manifest, "logger0"), LoggingServer)
    assert isinstance(build_component(manifest, "cli0"), RamseyClient)


def test_client_wiring_comes_from_manifest(manifest):
    client = build_component(manifest, "cli0")
    assert client.schedulers == manifest.contacts_for("scheduler")
    assert client.persistent == manifest.contacts_for("persistent")[0]
    assert set(client.gossip_well_known) == set(manifest.contacts_for("gossip"))
    assert client.infra == "live"
    # Distinct seeds per client: the search streams must differ.
    other = build_component(manifest, "cli1")
    assert other.seed != client.seed


def test_gossip_well_known_includes_self(manifest):
    gossip = build_component(manifest, "gossip0")
    assert manifest.contact("gossip0") in gossip.well_known
    assert manifest.contact("gossip1") in gossip.well_known


def test_persistent_node_validates_counter_examples(manifest):
    pst = build_component(manifest, "pst0")
    assert pst._validators  # counter_example_validator installed


def test_node_stats_are_role_specific_and_json_safe(manifest):
    import json

    for name in ("gossip0", "sched0", "pst0", "logger0", "cli0"):
        stats = node_stats(build_component(manifest, name))
        json.dumps(stats)  # must ship inside a COL_REPORT
    sched = node_stats(build_component(manifest, "sched0"))
    assert sched["units_assigned"] == 0 and sched["queue_depth"] == 0
    cli = node_stats(build_component(manifest, "cli0"))
    assert cli["counter_examples_found"] == 0 and cli["unit_id"] is None


def test_unknown_node_rejected(manifest):
    with pytest.raises(KeyError):
        build_component(manifest, "nobody")
