"""World specs and the bootstrap/discovery manifest."""

import pytest

from repro.live import (
    Manifest,
    NodeSpec,
    PortAllocator,
    Topology,
    build_manifest,
    sc98_topology,
)


def test_sc98_topology_shape():
    topo = sc98_topology(clients=4, gossips=2)
    roles = [spec.role for spec in topo.nodes]
    assert roles.count("gossip") == 2
    assert roles.count("scheduler") == 1
    assert roles.count("persistent") == 1
    assert roles.count("logger") == 1
    assert roles.count("client") == 4
    # Services precede clients so a fresh world boots in manifest order.
    assert roles.index("client") > roles.index("scheduler")
    topo.validate()


def test_unknown_role_and_params_rejected():
    with pytest.raises(ValueError):
        NodeSpec("x", "mainframe")
    with pytest.raises(TypeError):
        sc98_topology(warp_factor=9)


def test_validate_rejects_broken_worlds():
    with pytest.raises(ValueError, match="duplicate"):
        Topology(nodes=[NodeSpec("a", "gossip"), NodeSpec("a", "client")],
                 ).validate()
    with pytest.raises(ValueError, match="scheduler"):
        Topology(nodes=[NodeSpec("c", "client")]).validate()


def test_topology_round_trips_through_dict():
    topo = sc98_topology(clients=2, k=9, speed=123.0, seed=42)
    clone = Topology.from_dict(topo.to_dict())
    assert clone.to_dict() == topo.to_dict()
    assert clone.k == 9 and clone.speed == 123.0 and clone.seed == 42
    assert [s.name for s in clone.nodes] == [s.name for s in topo.nodes]
    assert clone.named("cli1").options == {"infra": "live", "site": "utk"}


def test_build_manifest_assigns_distinct_contacts():
    topo = sc98_topology(clients=2)
    manifest = build_manifest(topo, collector="127.0.0.1:9999")
    contacts = [manifest.contact(s.name) for s in topo.nodes]
    assert len(set(contacts)) == len(topo.nodes)
    assert all(c.startswith("127.0.0.1:") for c in contacts)
    assert manifest.contacts_for("gossip") == [
        manifest.contact("gossip0"), manifest.contact("gossip1")]


def test_manifest_round_trips_through_file(tmp_path):
    topo = sc98_topology(clients=2)
    with PortAllocator() as alloc:
        manifest = build_manifest(topo, collector="127.0.0.1:7",
                                  allocator=alloc)
        path = manifest.write(str(tmp_path / "manifest.json"))
    loaded = Manifest.load(path)
    assert loaded.to_dict() == manifest.to_dict()
    assert loaded.collector == "127.0.0.1:7"
    assert loaded.contacts_for("client") == manifest.contacts_for("client")
    assert loaded.topology.named("sched0").role == "scheduler"
