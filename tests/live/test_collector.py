"""Collector ingestion: hello/report protocol, timeline merging,
forecast-driven liveness. Messages are injected straight into the
handler — the wire path is covered by the end-to-end smoke test."""

import pytest

from repro.core.linguafranca.messages import Message
from repro.live import Collector
from repro.live.collector import COL_HELLO, COL_REPORT


@pytest.fixture
def collector():
    col = Collector()
    yield col
    col.close()


def _hello(name, epoch, incarnation=0, pid=42):
    return Message(mtype=COL_HELLO, sender="127.0.0.1:1",
                   body={"node": name, "pid": pid,
                         "incarnation": incarnation, "epoch": epoch})


def _report(name, seq, **extra):
    body = {"node": name, "seq": seq, "metrics": {}, "spans": [],
            "logs": [], "stats": {}}
    body.update(extra)
    return Message(mtype=COL_REPORT, sender="127.0.0.1:1", body=body)


def test_hello_then_reports_accumulate(collector):
    collector._handle(_hello("n1", epoch=collector.epoch))
    collector._handle(_report("n1", 1, stats={"records": 3}))
    collector._handle(_report("n1", 2, stats={"records": 9}))
    rec = collector.nodes["n1"]
    assert rec.hellos == 1 and rec.reports == 2
    assert rec.stats == {"records": 9}  # latest wins


def test_duplicate_and_stale_seq_dropped(collector):
    collector._handle(_hello("n1", epoch=collector.epoch))
    collector._handle(_report("n1", 1))
    collector._handle(_report("n1", 1))
    collector._handle(_report("n1", 0))
    rec = collector.nodes["n1"]
    assert rec.reports == 1 and rec.duplicate_reports == 2


def test_new_incarnation_resets_sequence_space(collector):
    collector._handle(_hello("n1", epoch=collector.epoch))
    collector._handle(_report("n1", 5))
    collector._handle(_hello("n1", epoch=collector.epoch, incarnation=1))
    collector._handle(_report("n1", 1))  # fresh process starts at 1 again
    rec = collector.nodes["n1"]
    assert rec.reports == 2 and rec.incarnation == 1


def test_spans_and_logs_shift_onto_collector_timeline(collector):
    # Node booted 2 wall seconds after the collector: its t=1.0 is the
    # collector's t=3.0.
    collector._handle(_hello("n1", epoch=collector.epoch + 2.0))
    span = {"trace_id": 7, "span_id": 1, "parent_id": None, "name": "x",
            "component": "n1", "start": 1.0, "end": 1.5, "outcome": "ok"}
    line = {"t": 1.0, "component": "n1", "level": "info", "text": "hi"}
    collector._handle(_report("n1", 1, spans=[span], logs=[line]))
    rec = collector.nodes["n1"]
    assert rec.spans[0].start == pytest.approx(3.0)
    assert rec.spans[0].end == pytest.approx(3.5)
    assert rec.logs[0]["t"] == pytest.approx(3.0)
    merged = collector.merged_tracer()
    assert [s.span_id for s in merged.spans] == [1]


def test_merged_metrics_add_counters_across_nodes(collector):
    collector._handle(_hello("a", epoch=collector.epoch))
    collector._handle(_hello("b", epoch=collector.epoch))
    snap = {"counters": {"msg.sent{mtype=X}": 2}, "gauges": {}, "histograms": {}}
    collector._handle(_report("a", 1, metrics=snap))
    collector._handle(_report("b", 1, metrics=snap))
    merged = collector.merged_metrics()
    assert merged["counters"]["msg.sent{mtype=X}"] == 4


def test_final_report_records_stop_reason(collector):
    collector._handle(_hello("n1", epoch=collector.epoch))
    collector._handle(_report("n1", 1, final=True, stop_reason="signal:SIGTERM"))
    rec = collector.nodes["n1"]
    assert rec.final_reports == 1
    assert rec.stop_reason == "signal:SIGTERM"


def test_silent_nodes_is_forecast_driven(collector):
    collector._handle(_hello("chatty", epoch=collector.epoch))
    # Teach the forecaster a ~0.1s cadence, then go quiet.
    for seq in range(1, 6):
        collector._handle(_report("chatty", seq))
        collector.nodes["chatty"].last_report = seq * 0.1
        if seq > 1:
            from repro.core.forecasting.benchmarking import event_tag
            collector.forecasts.record(event_tag("chatty", COL_REPORT), 0.1)
    rec = collector.nodes["chatty"]
    rec.last_report = collector.now() - 2.0  # 2s of silence vs 0.1s cadence
    assert "chatty" in collector.silent_nodes(multiplier=6.0, floor=0.1,
                                              ceiling=30.0)
    # A node that announced a final report is never suspect.
    rec.final_reports = 1
    assert collector.silent_nodes(multiplier=6.0, floor=0.1) == []


def test_malformed_messages_counted_not_fatal(collector):
    collector._handle(Message(mtype=COL_REPORT, sender="x", body={}))
    collector._handle(Message(mtype="WHAT", sender="x", body={"node": "n"}))
    collector._handle(_hello("n1", epoch=collector.epoch))
    collector._handle(_report("n1", 1, spans=[{"nonsense": True}]))
    assert collector.bad_messages == 3
    assert collector.nodes["n1"].reports == 1
