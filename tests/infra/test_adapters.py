"""Tests for the infrastructure adapters' §5 semantics."""

import numpy as np
import pytest

from repro.core.services.scheduler import QueueWorkSource, SchedulerServer
from repro.core.services.logging import LoggingServer
from repro.core.simdriver import SimDriver
from repro.infra.condor import CondorPool
from repro.infra.globus import GlobusSites
from repro.infra.java import JavaApplets
from repro.infra.legion import LegionNet
from repro.infra.netsolve import NetSolveFarm
from repro.infra.nt import NTSupercluster
from repro.infra.speeds import JAVA_INTERP_IOPS, JAVA_JIT_IOPS
from repro.infra.unixpool import UnixPool
from repro.ramsey.client import ModelEngine, RamseyClient
from repro.ramsey.tasks import unit_generator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


class Rig:
    """Scheduler + logger plus a client factory for adapter tests."""

    def __init__(self, seed=13):
        self.env = Environment()
        self.streams = RngStreams(seed=seed)
        self.net = Network(self.env, self.streams, jitter=0.0)
        sh = Host(self.env, HostSpec(name="svc", speed=1e7,
                                     load_model=ConstantLoad(1.0)), self.streams)
        self.net.add_host(sh)
        self.work = QueueWorkSource(generator=unit_generator(43, 5, ops_budget=1e12))
        self.sched = SchedulerServer("sched", self.work, report_period=30)
        SimDriver(self.env, self.net, sh, "sched", self.sched, self.streams).start()
        self.logsrv = LoggingServer("log")
        SimDriver(self.env, self.net, sh, "log", self.logsrv, self.streams).start()
        self.clients = []

    def factory(self, host, infra, idx):
        client = RamseyClient(
            f"{infra}-{idx}",
            schedulers=["svc/sched"],
            engine=ModelEngine(),
            infra=infra,
            loggers=["svc/log"],
            work_period=20,
            report_period=30,
            hello_retry=20,
            seed=idx,
        )
        self.clients.append(client)
        return client


def test_unix_pool_deploys_and_delivers():
    rig = Rig()
    pool = UnixPool(rig.env, rig.net, rig.streams, rig.factory,
                    n_workstations=3, n_mpp_nodes=2, with_tera_mta=True,
                    mtbf=1e9)  # no failures in this test
    pool.deploy()
    rig.env.run(until=300)
    assert len(pool.hosts) == 6
    assert pool.active_host_count() == 6
    perf = rig.logsrv.by_kind("perf")
    assert perf and all(r.data["infra"] == "unix" for r in perf)
    # The Tera MTA stand-in is the fastest host in the pool.
    tera = next(h for h in pool.hosts if "tera" in h.name)
    assert tera.spec.speed == max(h.spec.speed for h in pool.hosts)


def test_unix_failure_and_recovery_relaunches_client():
    rig = Rig()
    pool = UnixPool(rig.env, rig.net, rig.streams, rig.factory,
                    n_workstations=1, n_mpp_nodes=0, with_tera_mta=False,
                    mtbf=600.0, mttr=120.0, restart_delay=30.0)
    pool.deploy()
    rig.env.run(until=6 * 3600)
    host = pool.hosts[0]
    assert pool.clients_lost >= 1  # at least one failure happened
    assert pool.clients_started >= 2  # and the client was relaunched


def test_condor_reclamation_kills_and_idle_restarts():
    rig = Rig()
    pool = CondorPool(rig.env, rig.net, rig.streams, rig.factory,
                      n_hosts=5, idle_mean=600, busy_mean=300, start_delay=10)
    pool.deploy()
    rig.env.run(until=2 * 3600)
    assert pool.reclamations >= 3
    assert pool.clients_lost >= 3
    assert pool.clients_started >= pool.clients_lost
    # The pool keeps delivering overall.
    assert rig.logsrv.by_kind("perf")


def test_condor_host_count_fluctuates():
    rig = Rig()
    pool = CondorPool(rig.env, rig.net, rig.streams, rig.factory,
                      n_hosts=10, idle_mean=600, busy_mean=600, start_delay=5)
    pool.deploy()
    counts = []

    def sampler(env):
        while True:
            counts.append(pool.active_host_count())
            yield env.timeout(120)

    rig.env.process(sampler(rig.env))
    rig.env.run(until=2 * 3600)
    assert min(counts) < max(counts)  # churn is visible
    assert max(counts) <= 10


def test_nt_lsf_kills_long_sleepers():
    rig = Rig()
    nt = NTSupercluster(rig.env, rig.net, rig.streams, rig.factory,
                        clusters={"ncsa": 8},
                        startup_sleep_max=120.0, lsf_kill_threshold=30.0,
                        mtbf=1e9)
    nt.deploy()
    rig.env.run(until=1200)
    # With sleeps uniform on [0,120] and a 30s threshold, most first
    # attempts are killed; all workers eventually start anyway.
    assert nt.lsf_kills >= 4
    assert nt.active_host_count() == 8


def test_nt_short_sleep_avoids_lsf_kills():
    rig = Rig()
    nt = NTSupercluster(rig.env, rig.net, rig.streams, rig.factory,
                        clusters={"ncsa": 8},
                        startup_sleep_max=20.0, lsf_kill_threshold=30.0,
                        mtbf=1e9)
    nt.deploy()
    rig.env.run(until=600)
    assert nt.lsf_kills == 0
    assert nt.active_host_count() == 8


def test_nt_dns_delays_all_starts():
    rig = Rig()
    nt = NTSupercluster(rig.env, rig.net, rig.streams, rig.factory,
                        clusters={"ncsa": 4}, startup_sleep_max=10.0,
                        lsf_kill_threshold=30.0, dns_fix_time=900.0, mtbf=1e9)
    nt.deploy()
    rig.env.run(until=600)
    assert nt.active_host_count() == 0  # DNS not fixed yet
    rig.env.run(until=1500)
    assert nt.active_host_count() == 4


def test_globus_gram_gass_mds_accounting():
    rig = Rig()
    gl = GlobusSites(rig.env, rig.net, rig.streams, rig.factory,
                     sites={"isi": 3}, mds_latency=2, gram_latency=5,
                     gass_fetch=10, mtbf=1e9)
    gl.deploy()
    rig.env.run(until=300)
    assert gl.mds_queries == 3
    assert gl.gram_launches == 3
    assert gl.gass_fetches == 3  # first launch per host pulls the binary
    assert gl.active_host_count() == 3
    # No client starts before MDS+GRAM+GASS latency.
    assert all(c._last_directive >= 17 for c in rig.clients)


def test_globus_refetch_not_needed_after_failure():
    rig = Rig()
    gl = GlobusSites(rig.env, rig.net, rig.streams, rig.factory,
                     sites={"isi": 1}, mds_latency=1, gram_latency=2,
                     gass_fetch=50, mtbf=1e9)
    gl.deploy()
    rig.env.run(until=100)
    gl.hosts[0].go_down("failure")
    rig.env.run(until=130)
    gl.hosts[0].go_up()
    gl.env.process(gl._gram_launch(gl.hosts[0]))
    rig.env.run(until=200)
    assert gl.gass_fetches == 1  # binary cached on the host
    assert gl.active_host_count() == 1


def test_legion_translator_routes_and_migrates():
    rig = Rig()
    lg = LegionNet(rig.env, rig.net, rig.streams,
                   lambda host, infra, idx: _legion_client(rig, infra, idx),
                   n_hosts=5, spare_fraction=0.2,
                   translator_routes={"SCH": "svc/sched", "LOG": "svc/log"},
                   mtbf=1e9, migrate_delay=20)
    lg.deploy()
    rig.env.run(until=300)
    assert lg.translator.translated > 0
    assert lg.translator.unroutable == 0
    # Scheduler sees the individual Legion clients (sender rides along).
    legion_clients = [c for c in lg.drivers.values()]
    assert rig.sched.stats.hellos >= 4
    # Kill a host: the stateless object migrates elsewhere.
    victims = [h for h in lg.hosts if h.name in lg.drivers and h is not lg.gateway]
    victims[0].go_down("failure")
    rig.env.run(until=600)
    assert lg.migrations >= 1


def _legion_client(rig, infra, idx):
    client = RamseyClient(
        f"legion-{idx}",
        schedulers=["legion-gateway/xlate"],
        engine=ModelEngine(),
        infra=infra,
        loggers=["legion-gateway/xlate"],
        work_period=20,
        report_period=30,
        seed=idx,
    )
    rig.clients.append(client)
    return client


def test_netsolve_brokered_launch_and_reassign():
    rig = Rig()
    ns = NetSolveFarm(rig.env, rig.net, rig.streams, rig.factory,
                      n_servers=3, agent_latency=5, mtbf=1e9)
    ns.deploy()
    rig.env.run(until=120)
    assert ns.brokered == 3
    assert ns.active_host_count() == 3
    ns.hosts[0].go_down("failure")
    rig.env.run(until=180)
    ns.hosts[0].go_up()
    ns.env.process(ns._broker(ns.hosts[0]))
    rig.env.run(until=300)
    assert ns.active_host_count() == 3


def test_java_browsers_arrive_and_leave_forever():
    rig = Rig()
    ja = JavaApplets(rig.env, rig.net, rig.streams, rig.factory,
                     arrival_rate=1 / 120.0, session_mean=600.0,
                     jit_fraction=0.5, max_arrivals=40)
    ja.deploy()
    rig.env.run(until=2 * 3600)
    assert ja.arrivals >= 20
    # Some browsers are gone for good; no host ever comes back up.
    departed = [h for h in ja.hosts if not h.up]
    assert departed
    assert all(h.name not in ja.drivers for h in departed)
    # Speeds are exactly the paper's two classes.
    speeds = {h.spec.speed for h in ja.hosts}
    assert speeds <= {JAVA_INTERP_IOPS, JAVA_JIT_IOPS}
    assert 0 < ja.jit_count < ja.arrivals


def test_java_jit_interp_ratio_is_papers():
    assert JAVA_JIT_IOPS / JAVA_INTERP_IOPS == pytest.approx(108.5, rel=0.01)


def test_java_time_varying_rate():
    rig = Rig()
    ja = JavaApplets(rig.env, rig.net, rig.streams, rig.factory,
                     rate_fn=lambda t: (1 / 60.0 if t > 1800 else 1e-9),
                     session_mean=600.0, max_arrivals=50)
    ja.deploy()
    rig.env.run(until=1800)
    early = ja.arrivals
    rig.env.run(until=3600)
    assert early == 0
    assert ja.arrivals > 5


def test_globus_light_switch():
    """Fig. 5: one switch activates/deactivates the whole Globus side."""
    rig = Rig()
    gl = GlobusSites(rig.env, rig.net, rig.streams, rig.factory,
                     sites={"isi": 4}, mds_latency=1, gram_latency=2,
                     gass_fetch=3, mtbf=1e9)
    gl.deploy()
    rig.env.run(until=60)
    assert gl.active_host_count() == 4

    killed = gl.switch_off()
    assert killed == 4
    rig.env.run(until=120)
    assert gl.active_host_count() == 0
    assert gl.gram_kills == 4
    # Off means off: nothing relaunches on its own.
    rig.env.run(until=300)
    assert gl.active_host_count() == 0

    gl.switch_on()
    rig.env.run(until=400)
    assert gl.active_host_count() == 4
    # Binaries were cached: no second round of GASS fetches.
    assert gl.gass_fetches == 4


def test_condor_universe_validation():
    rig = Rig()
    with pytest.raises(ValueError):
        CondorPool(rig.env, rig.net, rig.streams, rig.factory, universe="mtv")


def test_condor_standard_universe_checkpoints_and_migrates():
    """§5.4: standard universe preserves a reclaimed guest's progress by
    migrating its image to an idle same-type workstation."""
    rig = Rig()
    pool = CondorPool(rig.env, rig.net, rig.streams, rig.factory,
                      n_hosts=8, idle_mean=900, busy_mean=900,
                      start_delay=10, universe="standard", n_types=2)
    pool.deploy()
    rig.env.run(until=4 * 3600)
    assert pool.reclamations >= 4
    assert pool.checkpoint_migrations >= 1
    # Migrated clients resumed mid-unit: their engines carry prior ops.
    resumed = [c for c in rig.clients
               if c.unit is not None and isinstance(c.unit.get("resume"), dict)]
    assert resumed, "at least one client restored from a checkpoint"
    # Same-type rule was respected: every migration target had a type.
    assert set(pool.host_type.values()) == {0, 1}


def test_condor_vanilla_never_checkpoints():
    rig = Rig()
    pool = CondorPool(rig.env, rig.net, rig.streams, rig.factory,
                      n_hosts=6, idle_mean=600, busy_mean=600,
                      start_delay=10, universe="vanilla")
    pool.deploy()
    rig.env.run(until=2 * 3600)
    assert pool.reclamations >= 3
    assert pool.checkpoint_migrations == 0
