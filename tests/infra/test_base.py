"""Tests for the infrastructure adapter base machinery."""

import pytest

from repro.infra.base import InfraAdapter
from repro.ramsey.client import ModelEngine, RamseyClient
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ComposedLoad, ConstantLoad, EventSchedule, ScheduledEvent
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


class ToyAdapter(InfraAdapter):
    name = "toy"

    def __init__(self, *args, n=2, **kwargs):
        super().__init__(*args, **kwargs)
        self.n = n

    def deploy(self):
        for i in range(self.n):
            host = self._add_host(f"toy-{i}", speed=1e6,
                                  load_model=ConstantLoad(0.5))
            self.launch_client(host)


def factory(host, infra, idx):
    return RamseyClient(f"{infra}-{idx}", schedulers=["nowhere/s"],
                        engine=ModelEngine(), infra=infra, seed=idx)


def build(n=2, **kw):
    env = Environment()
    streams = RngStreams(seed=3)
    net = Network(env, streams, jitter=0.0)
    adapter = ToyAdapter(env, net, streams, factory, n=n, **kw)
    adapter.deploy()
    return env, net, adapter


def test_deploy_and_accounting():
    env, net, adapter = build(n=3)
    env.run(until=10)
    assert adapter.up_host_count() == 3
    assert adapter.active_host_count() == 3
    assert adapter.clients_started == 3
    # Effective speed: 1e6 * 0.5 availability each.
    assert adapter.potential_speed() == pytest.approx(3 * 5e5)


def test_launch_is_idempotent_per_host():
    env, net, adapter = build(n=1)
    assert adapter.launch_client(adapter.hosts[0]) is None  # already running
    assert adapter.clients_started == 1


def test_launch_refused_on_down_host():
    env, net, adapter = build(n=1)
    adapter.hosts[0].go_down()
    env.run(until=5)
    assert adapter.launch_client(adapter.hosts[0]) is None


def test_client_exit_hook_and_counters():
    exits = []

    class HookedAdapter(ToyAdapter):
        def on_client_exit(self, host):
            exits.append(host.name)

    env = Environment()
    streams = RngStreams(seed=3)
    net = Network(env, streams, jitter=0.0)
    adapter = HookedAdapter(env, net, streams, factory, n=2)
    adapter.deploy()
    env.run(until=10)
    adapter.hosts[0].go_down("chaos")
    env.run(until=20)
    assert exits == ["toy-0"]
    assert adapter.clients_lost == 1
    assert adapter.active_host_count() == 1


def test_respawn_later_relaunches_when_up():
    env, net, adapter = build(n=1)
    env.run(until=5)
    host = adapter.hosts[0]
    host.go_down("blip")
    env.run(until=10)
    host.go_up()
    adapter.respawn_later(host, delay=5)
    env.run(until=30)
    assert adapter.active_host_count() == 1
    assert adapter.clients_started == 2


def test_respawn_later_noop_when_host_stays_down():
    env, net, adapter = build(n=1)
    env.run(until=5)
    adapter.hosts[0].go_down("dead")
    adapter.respawn_later(adapter.hosts[0], delay=5)
    env.run(until=60)
    assert adapter.active_host_count() == 0
    assert adapter.clients_started == 1


def test_ambient_composes_into_host_load():
    env, net, adapter = build(
        n=1, ambient=EventSchedule([ScheduledEvent(0, 1000, factor=0.5)]))
    adapter.hosts[0].start()
    env.run(until=120)
    # Own model 0.5 x ambient 0.5 = 0.25.
    assert adapter.hosts[0].availability == pytest.approx(0.25)


def test_streams_namespaced_per_adapter():
    env = Environment()
    streams = RngStreams(seed=3)
    net = Network(env, streams, jitter=0.0)
    a = ToyAdapter(env, net, streams, factory)
    # The adapter's streams are prefixed with its name: independent of root.
    assert a.streams.get("x").random() == RngStreams(3).get("toy:x").random()
