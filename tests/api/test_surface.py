"""The public api contract, frozen as a golden file.

``repro.api`` is the supported surface of the reproduction; this test
is the tripwire that turns an accidental rename/removal into a red
diff against ``golden_api_surface.json``. Changing the surface is
allowed — it just has to be *deliberate*: regenerate the golden file
(``repro info --api``) in the same commit and say so.
"""

import importlib
import json
import os
import warnings

import pytest

import repro.api as api

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_api_surface.json")


def test_surface_matches_golden_file():
    with open(GOLDEN, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    assert api.surface() == golden, (
        "the public api surface changed; if deliberate, regenerate "
        "tests/api/golden_api_surface.json with `repro info --api`")


def test_every_public_name_importable_flat():
    # The flat-module compatibility contract: everything that was ever
    # public on repro.api still resolves there.
    missing = [name for name in api.surface()["names"]
               if not hasattr(api, name)]
    assert missing == []


def test_every_layer_exports_exactly_its_contract():
    for layer, names in api.surface()["layers"].items():
        module = importlib.import_module(f"repro.api.{layer}")
        assert sorted(module.__all__) == names, layer
        for name in names:
            assert getattr(module, name) is getattr(api, name), name


def test_each_name_has_one_home_layer():
    layers = api.surface()["layers"]
    flat = [n for names in layers.values() for n in names]
    assert len(flat) == len(set(flat))
    assert sorted(set(flat)) == api.surface()["names"]


def test_layer_modules_reachable_as_attributes():
    for layer in api.surface()["layers"]:
        module = getattr(api, layer)
        assert module.__name__ == f"repro.api.{layer}"


def test_moved_internal_warns_but_resolves():
    # Reaching a non-public name that lives in a layer module earns a
    # DeprecationWarning pointing at its home, not an AttributeError.
    api_core = importlib.import_module("repro.api.core")
    probe = object()
    api_core.moved_probe_for_test = probe
    try:
        d = vars(api)
        assert "moved_probe_for_test" not in d
        with pytest.warns(DeprecationWarning, match="repro.api.core"):
            assert api.moved_probe_for_test is probe
        del d["moved_probe_for_test"]  # undo the lazy cache
    finally:
        del api_core.moved_probe_for_test


def test_unknown_name_raises_attribute_error():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(AttributeError):
            api.definitely_not_an_api_name
    with pytest.raises(AttributeError):
        api._private_probe


def test_star_import_covers_the_surface():
    namespace = {}
    exec("from repro.api import *", namespace)
    missing = [n for n in api.surface()["names"] if n not in namespace]
    assert missing == []


def test_dir_lists_surface_and_layers():
    listing = dir(api)
    for name in ("Component", "run_serve", "core", "control", "surface"):
        assert name in listing
