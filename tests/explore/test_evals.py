"""The black-box objectives: pure, deterministic, self-checking.

Determinism here is what makes the whole subsystem twin-able: the same
spec must evaluate to the same value (and digest) on any host, any
plane, any number of times.
"""

import pytest

from repro.core.services.kinds import ResultCheckError
from repro.explore import (
    EVAL_FUNCTIONS,
    EVAL_KIND,
    check_eval_result,
    evaluate,
    execute_unit,
    make_eval_spec,
    validate_eval,
)


def test_make_eval_spec_shape_and_validation():
    spec = make_eval_spec("sphere", {"y": 2, "x": 1}, seed=5, tag={"g": 0})
    assert spec["kind"] == EVAL_KIND
    assert spec["params"] == {"x": 1.0, "y": 2.0}   # sorted, floated
    assert spec["tag"] == {"g": 0}
    validate_eval(spec)


@pytest.mark.parametrize("bad", [
    {"kind": "wrong", "fn": "sphere", "params": {"x": 1.0},
     "seed": 0, "ops_budget": 1.0},
    {"kind": EVAL_KIND, "fn": "nope", "params": {"x": 1.0},
     "seed": 0, "ops_budget": 1.0},
    {"kind": EVAL_KIND, "fn": "sphere", "params": {},
     "seed": 0, "ops_budget": 1.0},
    {"kind": EVAL_KIND, "fn": "sphere", "params": {"x": "nan?"},
     "seed": 0, "ops_budget": 1.0},
    {"kind": EVAL_KIND, "fn": "sphere", "params": {"x": 1.0},
     "seed": 0, "ops_budget": 0.0},
])
def test_validate_eval_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        validate_eval(bad)


@pytest.mark.parametrize("fn", sorted(EVAL_FUNCTIONS))
def test_evaluate_is_deterministic_and_seed_sensitive(fn):
    params = {"bias": 0.3, "damping": 0.5, "nudging": 0.1}
    spec = make_eval_spec(fn, params, seed=3)
    a, b = evaluate(spec), evaluate(spec)
    assert a == b                                   # same spec, same bytes
    other = evaluate(make_eval_spec(fn, params, seed=4))
    assert other["value"] != a["value"]             # seeds shift the fn
    assert isinstance(a["value"], float)
    assert a["digest"] == evaluate(spec)["digest"]


def test_execute_unit_ignores_queue_bookkeeping_fields():
    spec = make_eval_spec("rastrigin", {"x": 0.5, "y": -0.5}, seed=1)
    unit = dict(spec, id="job-17", trace=[1, 2])
    assert execute_unit(unit) == evaluate(spec)


def test_check_eval_result_accepts_honest_work():
    spec = make_eval_spec("forecast",
                          {"bias": 0.0, "damping": 0.5, "nudging": 0.2},
                          seed=9)
    check_eval_result(spec, evaluate(spec))         # no raise


def test_check_eval_result_rejects_corruption():
    spec = make_eval_spec("sphere", {"x": 1.0, "y": 1.0}, seed=2)
    honest = evaluate(spec)
    with pytest.raises(ResultCheckError):
        check_eval_result(spec, {**honest, "value": honest["value"] + 1.0})
    with pytest.raises(ResultCheckError):
        check_eval_result(spec, {**honest, "digest": "00000000"})
    with pytest.raises(ResultCheckError):
        check_eval_result(spec, None)
    with pytest.raises(ResultCheckError):
        check_eval_result(spec, {})
