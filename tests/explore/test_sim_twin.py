"""The deterministic twin: byte-identical worlds, chaos included.

This is the tentpole's sim gate: the full ME subsystem — driver
component, gateway, scheduler, workers — runs under simulated time, and
same-seed runs must serialize to identical bytes even with a mid-run
gateway restart and corrupted worker results in the schedule.
"""

import json

import pytest

from repro.explore import run_sim_explore


def _canon(report):
    return json.dumps(report, sort_keys=True)


@pytest.fixture(scope="module")
def chaos_pair():
    """Two same-seed hill runs with a gateway restart AND a corrupted
    result in the schedule."""
    kwargs = dict(seed=7, algo="hill", duration=240.0, scale=0.5,
                  restart_after=4.0, corrupt_first=1)
    return run_sim_explore(**kwargs), run_sim_explore(**kwargs)


def test_sim_twin_is_byte_identical_under_chaos(chaos_pair):
    a, b = chaos_pair
    assert _canon(a) == _canon(b)


def test_sim_twin_holds_invariants_under_chaos(chaos_pair):
    a, _ = chaos_pair
    assert a["violations"] == []
    assert a["gateway"]["restarts"] == 1
    # Exactly-once: every pushed evaluation completed once, even though
    # the restart requeued in-flight assignments.
    assert a["gateway"]["work"]["completed"] == a["me"]["pushed"]
    assert a["me"]["outstanding"] == 0
    assert a["driver"]["best"] is not None


def test_sim_twin_rejects_corrupted_results_then_converges(chaos_pair):
    a, _ = chaos_pair
    # The corrupting worker's first report failed its §3.1 check: the
    # evaluation was requeued and honestly re-executed, never recorded.
    assert a["gateway"]["work"]["results_rejected"] == 1
    assert sum(w.get("results_corrupted", 0)
               for w in a["workers"].values()) == 1
    assert a["driver"]["failed"] == 0        # the ME never saw a bad value


def test_sim_twin_sweep_consumes_whole_grid():
    report = run_sim_explore(seed=3, algo="sweep", duration=120.0, scale=0.4)
    assert report["violations"] == []
    assert report["driver"]["evals"] == report["driver"]["expected"]
    assert report["me"]["rounds"] == []      # sweeps have no follow-ups


def test_sim_twin_seed_changes_world():
    a = run_sim_explore(seed=1, algo="sweep", duration=120.0, scale=0.4)
    b = run_sim_explore(seed=2, algo="sweep", duration=120.0, scale=0.4)
    assert _canon(a) != _canon(b)
