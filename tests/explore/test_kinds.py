"""The app-kind registry: the contract that makes work units agnostic.

The queue/scheduler/gateway stack never interprets a spec; everything
that *does* — validation, client-side engines, §3.1 result checks — is
looked up here by the unit's ``kind`` field.
"""

import pytest

from repro.core.services.kinds import (
    DEFAULT_KIND,
    AppKind,
    KindEngine,
    KindRegistry,
    ResultCheckError,
    kind_of,
    registry,
)


def test_kind_of_defaults_unlabelled_specs_to_ramsey():
    # Pre-registry journal records must keep meaning what they meant.
    assert kind_of({"k": 8, "n": 4}) == DEFAULT_KIND == "ramsey"
    assert kind_of({"kind": "explore.eval"}) == "explore.eval"
    assert kind_of({"kind": ""}) == DEFAULT_KIND


def test_registry_exact_then_family_wildcard():
    reg = KindRegistry()
    family = reg.register(AppKind(name="fam.*"))
    exact = reg.register(AppKind(name="fam.special"))
    assert reg.get("fam.special") is exact
    assert reg.get("fam.other") is family
    assert reg.get("other.thing") is None
    assert reg.get("fam") is None            # no bare-head fallback
    assert reg.names() == ["fam.*", "fam.special"]


def test_register_refuses_silent_replacement():
    reg = KindRegistry()
    reg.register(AppKind(name="a"))
    with pytest.raises(ValueError):
        reg.register(AppKind(name="a"))
    reg.register(AppKind(name="a", description="v2"), replace=True)
    assert reg.get("a").description == "v2"


def test_validate_and_checker_dispatch_by_spec_kind():
    reg = KindRegistry()

    def validate(spec):
        if "x" not in spec:
            raise ValueError("needs x")

    def check(spec, result):
        raise ResultCheckError("always distrust")

    reg.register(AppKind(name="v", validate=validate, check_result=check))
    reg.validate({"kind": "v", "x": 1})
    with pytest.raises(ValueError):
        reg.validate({"kind": "v"})
    reg.validate({"kind": "unknown-kind"})   # unregistered: admitted
    assert reg.checker_for({"kind": "v"}) is check
    assert reg.checker_for({"kind": "unknown-kind"}) is None


def test_default_registry_knows_both_first_class_apps():
    import repro.explore  # noqa: F401  (import registers explore.eval)
    import repro.ramsey.tasks  # noqa: F401  (import registers ramsey)

    assert "ramsey" in registry.names()
    assert "explore.eval" in registry.names()
    assert registry.checker_for({"k": 8, "n": 4}) is not None
    assert registry.checker_for({"kind": "explore.eval"}) is not None


class _FakeEngine:
    def __init__(self, tag):
        self.tag = tag
        self.loaded = None

    def load(self, unit, rng):
        self.loaded = unit

    def advance(self, ops_budget):
        return f"{self.tag}:{ops_budget}"

    def progress(self):
        return {"tag": self.tag}


def test_kind_engine_dispatches_per_unit_and_caches():
    reg = KindRegistry()
    reg.register(AppKind(name="made", engine_factory=lambda: _FakeEngine("made")))
    engine = KindEngine(engines={"ramsey": _FakeEngine("r")}, kinds=reg)

    engine.load({"id": "u-1", "kind": "made"}, rng=None)
    assert engine.active_kind == "made"
    assert engine.advance(10.0) == "made:10.0"
    made = engine.active

    engine.load({"id": "u-2"}, rng=None)     # unlabelled -> ramsey
    assert engine.active_kind == "ramsey"
    assert engine.progress() == {"tag": "r"}

    engine.load({"id": "u-3", "kind": "made"}, rng=None)
    assert engine.active is made             # cached, still warm

    with pytest.raises(ValueError):
        engine.load({"id": "u-4", "kind": "nope"}, rng=None)


def test_kind_engine_result_is_optional():
    reg = KindRegistry()
    engine = KindEngine(engines={"plain": _FakeEngine("p")}, kinds=reg)
    engine.load({"kind": "plain"}, rng=None)
    assert engine.result() is None           # _FakeEngine has no result()
    assert engine.apply_params({"x": 1}) is False
