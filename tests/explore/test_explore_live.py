"""End-to-end: the ME subsystem on real processes, with SIGKILL chaos.

One small live world (gateway + gossip + persistent + logger + two
computational clients), one grid sweep pushed through the ExploreQueue,
one SIGKILL of a client mid-sweep. The tier-1 guarantee for ROADMAP
item 4: every pushed evaluation is done exactly once and the killed
client restarted.
"""

import json
import os

import pytest

from repro.explore import ExploreConfig, run_explore


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("exploreworld")
    config = ExploreConfig(algo="sweep", fn="forecast", clients=2,
                           duration=60.0, scale=0.5, ops_budget=50_000.0,
                           kill_at=1.5, seed=0)
    return run_explore(config, out=str(out)), str(out)


def test_every_evaluation_done_exactly_once_across_kill(report):
    rep, _ = report
    assert rep["violations"] == []
    assert rep["ok"]
    jobs = rep["jobs"]
    assert jobs["pushed"] > 0
    assert jobs["done"] == jobs["pushed"]
    assert jobs["not_done"] == []
    # Exactly-once at the store: completions never exceed pushed jobs.
    assert rep["work_stats"]["completed"] == jobs["pushed"]


def test_killed_client_restarted_and_me_finished(report):
    rep, _ = report
    assert [c["node"] for c in rep["chaos"]] == [rep["config"]["kill_node"]]
    assert rep["nodes"][rep["config"]["kill_node"]]["restarts"] >= 1
    summary = rep["summary"]
    assert summary["timed_out"] is False
    assert summary["evals"] == rep["jobs"]["pushed"]
    assert summary["best"] is not None


def test_report_artifact_written(report):
    rep, out = report
    path = os.path.join(out, "explore_report.json")
    assert rep["artifacts"]["report"] == path
    with open(path, encoding="utf-8") as fh:
        on_disk = json.load(fh)
    assert on_disk["ok"] is True
