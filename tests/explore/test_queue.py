"""ExploreQueue semantics against the real router, sans IO.

A thin adapter drives :class:`GatewayCore` directly — same routes, same
status codes, same events feed as the live HTTP plane — so push/pop/done
semantics are proven without sockets or processes.
"""

import json

import pytest

from repro.control import GatewayCore, WorkQueue
from repro.explore import ExploreQueue, make_eval_spec


class CoreClient:
    """GatewayClient-shaped adapter over a sans-IO GatewayCore."""

    def __init__(self, core):
        self.core = core
        self.now = 0.0

    def _handle(self, method, path, body=b""):
        self.now += 0.001
        return self.core.handle(method, path, body, self.now)

    def submit(self, spec):
        status, doc, _ = self._handle(
            "POST", "/jobs", json.dumps(spec).encode())
        assert status == 201, doc
        return doc

    def submit_batch(self, specs):
        status, doc, _ = self._handle(
            "POST", "/jobs/batch",
            json.dumps({"specs": list(specs)}).encode())
        assert status == 201, doc
        return [str(job_id) for job_id in doc["ids"]]

    def job(self, job_id):
        status, doc, _ = self._handle("GET", f"/jobs/{job_id}")
        return doc if status == 200 else None

    def events(self, since=-1, wait=0.0, limit=500):
        status, payload, _ = self._handle(
            "GET", f"/events?since={int(since)}&limit={int(limit)}")
        assert status == 200
        return [json.loads(line) for line in payload.splitlines()
                if line.strip()]

    def close(self):
        pass


@pytest.fixture()
def world():
    work = WorkQueue(prefix="t")
    core = GatewayCore("gw-test", work)
    client = CoreClient(core)
    queue = ExploreQueue(client, batch=True, poll=0.0)
    return work, queue


def _specs(n):
    return [make_eval_spec("sphere", {"x": float(i)}, seed=0)
            for i in range(n)]


def _finish(work, n=100):
    from repro.explore.evals import execute_unit

    for _ in range(n):
        unit = work.next_unit()
        if unit is None:
            return
        work.complete(str(unit["id"]), execute_unit(unit))


def test_push_pop_done_roundtrip(world):
    work, queue = world
    ids = queue.push_tasks(_specs(3))
    assert ids == ["t-1", "t-2", "t-3"]
    assert queue.pushed == 3
    assert sorted(queue.outstanding) == ids
    assert queue.pushed_ids == ids

    _finish(work)
    results = queue.pop_results(min_results=3, timeout=1.0)
    assert {r["id"] for r in results} == set(ids)
    assert all(r["state"] == "done" for r in results)
    assert all(r["result"]["value"] is not None for r in results)
    assert all(r["latency_ms"] is not None for r in results)

    stats = queue.done()
    assert stats["pushed"] == stats["popped"] == 3
    assert stats["outstanding"] == 0
    assert stats["pop_p99_ms"] is not None


def test_pop_results_returns_early_when_nothing_outstanding(world):
    _, queue = world
    assert queue.pop_results(min_results=1, timeout=5.0) == []


def test_done_refuses_while_outstanding(world):
    work, queue = world
    queue.push_tasks(_specs(1))
    with pytest.raises(RuntimeError):
        queue.done()
    _finish(work)
    queue.pop_results(min_results=1, timeout=1.0)
    queue.done()


def test_single_submit_mode_matches_batch_mode(world):
    work, _ = world
    core = GatewayCore("gw2", WorkQueue(prefix="s"))
    single = ExploreQueue(CoreClient(core), batch=False, poll=0.0)
    ids = single.push_tasks(_specs(2))
    assert ids == ["s-1", "s-2"]
    assert sorted(single.outstanding) == ids


def test_cancelled_jobs_pop_as_cancelled_results(world):
    work, queue = world
    ids = queue.push_tasks(_specs(2))
    work.cancel(ids[0], now=1.0)
    _finish(work)
    results = queue.pop_results(min_results=2, timeout=1.0)
    by_id = {r["id"]: r for r in results}
    assert by_id[ids[0]]["state"] == "cancelled"
    assert by_id[ids[0]]["result"] is None
    assert by_id[ids[1]]["state"] == "done"
    assert queue.cancelled_seen == 1


def test_probe_fallback_survives_events_ring_overflow(world):
    work, queue = world
    # Overflow the bounded events ring so the completion events for the
    # first pushed jobs age out before the queue ever polls.
    ids = queue.push_tasks(_specs(4))
    _finish(work)
    capacity = queue.client.core.events.capacity
    for i in range(capacity + 10):
        work._event("noise", f"x-{i}", now=2.0)
    results = queue.pop_results(min_results=4, timeout=1.0)
    assert {r["id"] for r in results} == set(ids)


def test_queue_tracks_every_pushed_id_across_batches(world):
    work, queue = world
    queue.push_tasks(_specs(2))
    _finish(work)
    queue.pop_results(min_results=2, timeout=1.0)
    queue.push_tasks(_specs(3))
    assert queue.pushed == 5
    assert len(queue.pushed_ids) == 5        # retired ids stay listed
