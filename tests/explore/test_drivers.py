"""ME drivers: generational dependence, order-independence, the pump.

The drivers are exercised against a local synchronous queue stub — no
gateway, no scheduler — because their contract is pure strategy: same
ctor args + same per-round result sets => same decisions, regardless of
arrival order.
"""

import json
import random

from repro.explore import (
    GridSweep,
    HillClimber,
    evaluate,
    make_driver,
    run_driver,
)


class LocalQueue:
    """Synchronous in-process stand-in for ExploreQueue: push evaluates
    immediately; pop hands results back in a configurable order."""

    def __init__(self, shuffle_seed=None):
        self._ready = []
        self._rng = (random.Random(shuffle_seed)
                     if shuffle_seed is not None else None)
        self.pushed = 0
        self.outstanding = {}

    def push_tasks(self, specs):
        ids = []
        for spec in specs:
            job_id = f"loc-{self.pushed + 1}"
            self.pushed += 1
            self._ready.append({"id": job_id, "state": "done",
                                "spec": dict(spec),
                                "result": evaluate(spec),
                                "requeues": 0, "latency_ms": 0.0})
            ids.append(job_id)
        return ids

    def pop_results(self, min_results=1, timeout=0.0):
        out, self._ready = self._ready, []
        if self._rng is not None:
            self._rng.shuffle(out)
        return out


def test_grid_sweep_covers_grid_and_finds_grid_minimum():
    grid = {"x": [-1.0, 0.0, 1.0], "y": [-1.0, 0.0, 1.0]}
    driver = GridSweep(fn="sphere", grid=grid, seed=0)
    tasks = driver.initial_tasks()
    assert len(tasks) == 9 == driver.expected
    assert driver.next_tasks() == []         # everything known up front
    points = {(spec["params"]["x"], spec["params"]["y"]) for spec in tasks}
    assert len(points) == 9
    for spec in tasks:
        driver.observe(spec, evaluate(spec))
    assert driver.finished()
    best = driver.best()
    # sphere's grid minimum is the point nearest the (seeded) offset
    # center — assert it beats every other grid point.
    values = sorted(evaluate(spec)["value"] for spec in tasks)
    assert best["value"] == values[0]


def test_hill_climber_generations_depend_on_results():
    driver = HillClimber(fn="sphere", restarts=1, population=3,
                         generations=2, seed=5)
    wave = driver.initial_tasks()
    assert len(wave) == 1                    # gen 0 scores the seed point
    assert driver.next_tasks() == []         # nothing until consumed
    rounds = 0
    while not driver.finished():
        for spec in wave:
            driver.observe(spec, evaluate(spec))
        wave = driver.next_tasks()
        if wave:
            rounds += 1
            assert len(wave) == 3            # population per restart
    assert rounds == 2                       # generations after gen 0
    assert driver.summary()["generations"] == 3
    assert driver.best() is not None


def test_hill_climber_decisions_ignore_arrival_order():
    summaries = []
    for shuffle_seed in (None, 1, 2):
        driver = make_driver("hill", seed=11, fn="forecast")
        queue = LocalQueue(shuffle_seed=shuffle_seed)
        summary = run_driver(driver, queue, timeout=30.0, poll_timeout=0.0,
                             clock=lambda: 0.0)
        summaries.append(json.dumps(summary, sort_keys=True))
    assert summaries[0] == summaries[1] == summaries[2]


def test_hill_climber_same_seed_same_trajectory_different_seed_differs():
    one = run_driver(make_driver("hill", seed=3), LocalQueue(),
                     clock=lambda: 0.0)
    two = run_driver(make_driver("hill", seed=3), LocalQueue(),
                     clock=lambda: 0.0)
    other = run_driver(make_driver("hill", seed=4), LocalQueue(),
                       clock=lambda: 0.0)
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
    assert one["best"] != other["best"]


def test_failed_results_are_counted_not_fatal():
    driver = GridSweep(fn="sphere", grid={"x": [0.0, 1.0]}, seed=0)
    tasks = driver.initial_tasks()
    driver.observe(tasks[0], None)           # a cancelled/lost evaluation
    driver.observe(tasks[1], evaluate(tasks[1]))
    assert driver.finished()
    summary = driver.summary()
    assert summary["failed"] == 1
    assert summary["best"]["value"] == evaluate(tasks[1])["value"]


def test_make_driver_scales_workload_and_rejects_unknown():
    import pytest

    small = make_driver("sweep", scale=0.5)
    full = make_driver("sweep", scale=1.0)
    assert small.expected < full.expected
    hill = make_driver("hill", scale=0.5)
    assert hill.generations == 2
    with pytest.raises(ValueError):
        make_driver("genetic")


def test_run_driver_records_rounds_and_timeout():
    summary = run_driver(make_driver("hill", seed=0, scale=0.5),
                         LocalQueue(), clock=lambda: 0.0)
    assert summary["timed_out"] is False
    # One follow-up push per generation after the gen-0 seed wave.
    assert len(summary["rounds"]) == summary["generations"] - 1
