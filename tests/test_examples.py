"""Smoke tests: the runnable examples must stay runnable.

The fast examples are executed end-to-end as subprocesses; the long ones
(full topology replays) are compile-checked — their logic is covered by
the integration suites.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST = ["quickstart.py", "forecasting_demo.py", "gnet_mining.py"]
ALL = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_expected_examples_present():
    assert set(ALL) >= {
        "quickstart.py",
        "ramsey_search.py",
        "forecasting_demo.py",
        "gossip_cluster.py",
        "sc98_replay.py",
        "pet_reconstruction.py",
        "gnet_mining.py",
    }


@pytest.mark.parametrize("name", ALL)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
