"""Flight recorder: crash-surviving spool of recent spans and logs."""

import json
import os

from repro.core.telemetry import Telemetry
from repro.obs.flight import FlightRecorder, flight_path, load_flight


def _telemetry():
    return Telemetry(trace=True, id_base=500)


def test_flight_path_names_node_and_incarnation(tmp_path):
    p = flight_path(str(tmp_path), "cli0", 2)
    assert p.endswith("cli0.2.flight.jsonl")


def test_tick_spools_closed_spans_only(tmp_path):
    tel = _telemetry()
    rec = FlightRecorder(flight_path(str(tmp_path), "n", 0), telemetry=tel,
                         node="n", incarnation=0, epoch=100.0)
    open_span = tel.tracer.begin("job work", component="n", start=1.0)
    done = tel.tracer.begin("journal flush", component="n", start=0.5)
    tel.tracer.finish(done, 0.6)
    assert rec.tick() == 1  # only the finished span lands
    tel.tracer.finish(open_span, 2.0)
    assert rec.tick() == 1  # now the other one does
    rec.close()

    dump = load_flight(rec.path)
    assert dump is not None
    assert dump["node"] == "n"
    assert dump["epoch"] == 100.0
    assert [s["name"] for s in dump["spans"]] == ["journal flush", "job work"]
    assert dump["sealed"] is False


def test_seal_dumps_open_spans_and_reason(tmp_path):
    tel = _telemetry()
    rec = FlightRecorder(flight_path(str(tmp_path), "n", 1), telemetry=tel,
                         node="n", incarnation=1)
    tel.tracer.begin("job work", component="n", start=1.0)  # never finished
    rec.seal("deadline")
    dump = load_flight(rec.path)
    assert dump["sealed"] is True
    assert dump["reason"] == "deadline"
    assert [s["name"] for s in dump["spans"]] == ["job work"]
    rec.seal("again")  # idempotent, no error after close


def test_logs_are_recorded(tmp_path):
    rec = FlightRecorder(flight_path(str(tmp_path), "n", 0), node="n")
    rec.observe_log(1.5, "n", "info", "hello world")
    rec.close()
    dump = load_flight(rec.path)
    assert dump["logs"] == [{"t": 1.5, "component": "n", "level": "info",
                             "text": "hello world"}]


def test_rotation_bounds_disk_and_keeps_recent(tmp_path):
    tel = _telemetry()
    rec = FlightRecorder(flight_path(str(tmp_path), "n", 0), telemetry=tel,
                         node="n", capacity=10)
    for i in range(35):
        s = tel.tracer.begin(f"s{i}", component="n", start=float(i))
        tel.tracer.finish(s, float(i) + 0.1)
        rec.tick()
    assert rec.rotations >= 2
    assert os.path.exists(rec.path + ".1")
    rec.close()
    dump = load_flight(rec.path)
    # The most recent <= capacity spans survive, ending at the last one.
    assert dump["spans"][-1]["name"] == "s34"
    assert len(dump["spans"]) <= 10


def test_load_tolerates_torn_tail_line(tmp_path):
    tel = _telemetry()
    rec = FlightRecorder(flight_path(str(tmp_path), "n", 0), telemetry=tel,
                         node="n")
    s = tel.tracer.begin("done", component="n", start=0.0)
    tel.tracer.finish(s, 1.0)
    rec.tick()
    rec.close()
    with open(rec.path, "a", encoding="utf-8") as fh:
        fh.write('{"kind":"span","name":"torn')  # SIGKILL mid-write
    dump = load_flight(rec.path)
    assert [x["name"] for x in dump["spans"]] == ["done"]


def test_load_missing_spool_returns_none(tmp_path):
    assert load_flight(str(tmp_path / "nope.flight.jsonl")) is None


def test_spool_is_flushed_per_record(tmp_path):
    # The bytes must be on disk *before* any close/seal runs — that is
    # the whole SIGKILL story.
    tel = _telemetry()
    rec = FlightRecorder(flight_path(str(tmp_path), "n", 0), telemetry=tel,
                         node="n")
    s = tel.tracer.begin("x", component="n", start=0.0)
    tel.tracer.finish(s, 0.5)
    rec.tick()
    with open(rec.path, encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    assert any(r.get("kind") == "span" for r in lines)
    rec.close()
