"""End-to-end job trace assembly from recorded spans.

The synthetic span sets here mirror what the live plane actually emits:
gateway ingress roots the trace, WorkQueue instants (journal flush,
assign, requeue, done) and client work spans parent on it, and span ids
carry (node index, incarnation) provenance via the id-block layout.
"""

import json

import pytest

from repro.obs.jobtrace import (
    ID_BLOCK,
    MAX_INCARNATIONS,
    job_trace,
    load_spans,
    render_job_trace,
    span_origin,
)


def _base(idx: int, incarnation: int) -> int:
    return ((idx + 1) * MAX_INCARNATIONS + incarnation) * ID_BLOCK


def test_span_origin_inverts_id_base():
    assert span_origin(_base(0, 0) + 7) == (0, 0)
    assert span_origin(_base(3, 2) + 1) == (3, 2)
    assert span_origin(123) == (-1, -1)  # simulated runs: id_base 0


def _gateway_trace():
    gw, cli0, cli1 = _base(1, 0), _base(5, 0), _base(5, 1)
    trace = gw + 1
    return [
        {"trace_id": trace, "span_id": gw + 1, "parent_id": None,
         "name": "job ingress", "component": "gw0", "start": 0.0,
         "end": 0.001, "outcome": "ok", "args": {"job_id": "gw0-job-1"}},
        {"trace_id": trace, "span_id": gw + 2, "parent_id": gw + 1,
         "name": "journal flush", "component": "gw0", "start": 0.0005,
         "end": 0.0005, "outcome": "ok", "args": {"id": "gw0-job-1"}},
        {"trace_id": trace, "span_id": gw + 3, "parent_id": gw + 1,
         "name": "job assign", "component": "gw0", "start": 0.1,
         "end": 0.1, "outcome": "ok", "args": {"id": "gw0-job-1"}},
        {"trace_id": trace, "span_id": cli0 + 1, "parent_id": gw + 1,
         "name": "job work", "component": "cli0", "start": 0.2, "end": 0.9,
         "outcome": "ok", "args": {"unit_id": "gw0-job-1"}},
        {"trace_id": trace, "span_id": gw + 4, "parent_id": gw + 1,
         "name": "job requeue", "component": "gw0", "start": 1.5,
         "end": 1.5, "outcome": "requeue", "args": {"id": "gw0-job-1"}},
        {"trace_id": trace, "span_id": cli1 + 1, "parent_id": gw + 1,
         "name": "job work", "component": "cli0", "start": 2.0, "end": 2.7,
         "outcome": "ok", "args": {"unit_id": "gw0-job-1"}},
        {"trace_id": trace, "span_id": gw + 5, "parent_id": gw + 1,
         "name": "job done", "component": "gw0", "start": 2.8, "end": 2.8,
         "outcome": "ok", "args": {"id": "gw0-job-1"}},
        # Noise from another job on another trace.
        {"trace_id": trace + 99, "span_id": gw + 50, "parent_id": None,
         "name": "job ingress", "component": "gw0", "start": 0.3,
         "end": 0.3, "outcome": "ok", "args": {"job_id": "gw0-job-2"}},
    ]


def test_job_trace_collects_one_causal_chain():
    trace = job_trace(_gateway_trace(), "gw0-job-1")
    assert trace["job"] == "gw0-job-1"
    assert [s["name"] for s in trace["spans"]] == [
        "job ingress", "journal flush", "job assign", "job work",
        "job requeue", "job work", "job done"]
    assert trace["requeues"] == 1
    # The kill/restart story: the chain crosses two client incarnations.
    assert (5, 0) in trace["incarnations"]
    assert (5, 1) in trace["incarnations"]


def test_job_trace_unknown_job_raises():
    with pytest.raises(KeyError):
        job_trace(_gateway_trace(), "gw0-job-404")


def test_render_names_incarnations_and_requeue():
    text = render_job_trace(job_trace(_gateway_trace(), "gw0-job-1"))
    assert "job gw0-job-1" in text
    assert "requeues=1" in text
    assert "inc0" in text and "inc1" in text
    assert "[requeue]" in text


def test_load_spans_accepts_file_dict_and_directory(tmp_path):
    spans = _gateway_trace()
    path = tmp_path / "spans.json"
    path.write_text(json.dumps({"spans": spans}), encoding="utf-8")
    assert len(load_spans(str(path))) == len(spans)
    assert len(load_spans(str(tmp_path))) == len(spans)  # dir form
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps(spans), encoding="utf-8")
    assert len(load_spans(str(bare))) == len(spans)
