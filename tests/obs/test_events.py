"""The bounded job-lifecycle feed behind ``GET /events``."""

from repro.obs.events import EventLog, parse_jsonl, render_jsonl


def test_append_stamps_monotonic_seq():
    log = EventLog()
    assert log.latest_seq == -1
    for i in range(3):
        log.append({"event": "submitted", "job": f"j-{i}"})
    assert log.latest_seq == 2
    assert [e["seq"] for e in log.since(-1)] == [0, 1, 2]


def test_ring_drops_oldest_and_counts():
    log = EventLog(capacity=4)
    for i in range(10):
        log.append({"i": i})
    assert len(log) == 4
    assert log.dropped == 6
    assert [e["i"] for e in log.since(-1)] == [6, 7, 8, 9]
    assert log.latest_seq == 9


def test_since_is_strictly_greater_and_limited():
    log = EventLog()
    for i in range(5):
        log.append({"i": i})
    assert [e["seq"] for e in log.since(2)] == [3, 4]
    assert [e["seq"] for e in log.since(-1, limit=2)] == [0, 1]
    assert log.since(99) == []


def test_jsonl_round_trip():
    log = EventLog()
    log.append({"event": "submitted", "job": "a-1", "t": 0.5})
    log.append({"event": "done", "job": "a-1", "t": 1.25})
    text = render_jsonl(log.since(-1))
    assert text.count("\n") == 2
    events = parse_jsonl(text)
    assert [e["event"] for e in events] == ["submitted", "done"]
    assert events[0]["seq"] == 0


def test_empty_feed_renders_empty_string():
    assert render_jsonl([]) == ""
    assert parse_jsonl("") == []
