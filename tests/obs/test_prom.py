"""Prometheus text exposition over the telemetry snapshot shape.

The renderer and the (strict) parser are tested against each other:
every snapshot must round-trip, because CI's obs-smoke job gates on
``parse_prometheus(scrape)`` succeeding against a live gateway.
"""

import math

import pytest

from repro.core.telemetry import MetricsRegistry
from repro.obs.prom import (
    parse_prometheus,
    render_prometheus,
    sample_value,
    split_metric_key,
)


def _snapshot():
    m = MetricsRegistry()
    m.counter("http.requests", route="POST /jobs", status="201").inc(7)
    m.counter("http.requests", route="GET /queue", status="200").inc(3)
    m.counter("sch.units", outcome="done").inc()
    m.gauge("site.utilisation", site="ucsd").set(0.75)
    m.gauge("site.utilisation", site="utk").set(0.5)
    m.gauge("sch.queue_depth").set(12.0)
    h = m.histogram("http.latency_ms", bounds=(1.0, 5.0, 25.0),
                    route="POST /jobs")
    for v in (0.5, 2.0, 4.0, 30.0):
        h.observe(v)
    return m.snapshot()


def test_split_metric_key():
    assert split_metric_key("plain") == ("plain", {})
    name, labels = split_metric_key("http.requests{route=POST /jobs,status=201}")
    assert name == "http.requests"
    assert labels == {"route": "POST /jobs", "status": "201"}


def test_render_produces_typed_families():
    text = render_prometheus(_snapshot())
    assert "# TYPE http_requests counter" in text
    assert "# TYPE site_utilisation gauge" in text
    assert "# TYPE http_latency_ms histogram" in text
    assert text.endswith("\n")


def test_round_trip_every_sample():
    text = render_prometheus(_snapshot())
    samples = parse_prometheus(text)
    assert sample_value(samples, "http_requests",
                        route="POST /jobs", status="201") == 7
    assert sample_value(samples, "site_utilisation", site="ucsd") == 0.75
    assert sample_value(samples, "sch_queue_depth") == 12


def test_histogram_buckets_are_cumulative_with_inf():
    samples = parse_prometheus(render_prometheus(_snapshot()))
    le = {s["labels"]["le"]: s["value"] for s in samples
          if s["name"] == "http_latency_ms_bucket"}
    assert le["1"] == 1
    assert le["5"] == 3
    assert le["25"] == 3
    assert le["+Inf"] == 4
    assert sample_value(samples, "http_latency_ms_count",
                        route="POST /jobs") == 4
    total = sample_value(samples, "http_latency_ms_sum", route="POST /jobs")
    assert math.isclose(total, 36.5)


def test_label_values_escaped():
    m = MetricsRegistry()
    m.counter("odd", path='a"b\\c').inc()
    samples = parse_prometheus(render_prometheus(m.snapshot()))
    assert samples and samples[0]["labels"]["path"] == 'a"b\\c'


def test_metric_names_sanitised():
    m = MetricsRegistry()
    m.counter("http.requests-total").inc(2)
    text = render_prometheus(m.snapshot())
    assert "http_requests_total 2" in text


def test_parser_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("this is { not prometheus\n")


def test_empty_snapshot_renders_empty():
    assert parse_prometheus(render_prometheus(
        {"counters": {}, "gauges": {}, "histograms": {}})) == []
