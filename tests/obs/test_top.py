"""The repro-top frame builder and renderer (pure functions, no I/O)."""

from repro.obs.top import build_frame, quantile_from_histogram, render_top


def _metrics():
    return {
        "counters": {
            "http.requests{route=POST /jobs,status=201}": 40,
            "http.requests{route=POST /jobs,status=400}": 2,
            "http.requests{route=GET /queue,status=200}": 8,
        },
        "gauges": {
            "sch.queue_depth": 5.0,
            "site.utilisation{site=ucsd}": 0.8,
            "site.delivered_ops{site=ucsd}": 800.0,
            "site.available_ops{site=ucsd}": 1000.0,
            "site.utilisation{site=utk}": 0.25,
        },
        "histograms": {
            "http.latency_ms{route=POST /jobs}": {
                "bounds": [1.0, 5.0, 25.0],
                "counts": [10, 25, 4, 1],
                "count": 40,
                "total": 120.0,
            },
        },
    }


def test_quantiles_pick_bucket_bounds():
    hist = _metrics()["histograms"]["http.latency_ms{route=POST /jobs}"]
    assert quantile_from_histogram(hist, 0.50) == 5.0
    assert quantile_from_histogram(hist, 0.99) == 25.0
    assert quantile_from_histogram({"count": 0}, 0.5) == 0.0


def test_build_frame_totals_and_sites():
    frame = build_frame(_metrics(), queue={"depth": 5, "queued": 3,
                                           "done": 2}, now=10.0)
    assert frame["submitted_total"] == 42  # both statuses on POST /jobs
    assert frame["requests_total"] == 50
    assert frame["queue_depth"] == 5.0
    assert frame["sites"]["ucsd"]["utilisation"] == 0.8
    assert frame["sites"]["ucsd"]["delivered"] == 800.0
    assert frame["routes"]["POST /jobs"]["p50_ms"] == 5.0
    # First sample: no rates yet.
    assert frame["submissions_per_s"] == 0.0


def test_rates_are_deltas_against_prev_frame():
    prev = build_frame(_metrics(), now=10.0)
    metrics = _metrics()
    metrics["counters"]["http.requests{route=POST /jobs,status=201}"] = 60
    frame = build_frame(metrics, prev=prev, now=12.0)
    assert frame["submissions_per_s"] == 10.0  # +20 over 2s


def test_render_top_mentions_everything():
    frame = build_frame(_metrics(), queue={"depth": 5, "queued": 3},
                        events=[{"event": "done", "job": "j-9", "t": 4.5}],
                        now=10.0)
    text = render_top(frame)
    assert "repro top" in text
    assert "queue depth      5" in text
    assert "ucsd" in text and "80.0%" in text
    assert "POST /jobs" in text
    assert "j-9" in text


def test_render_top_survives_empty_frame():
    text = render_top(build_frame({}, now=0.0))
    assert "repro top" in text
    assert "?" in text  # unknown queue depth
