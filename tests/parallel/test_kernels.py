"""Kernel tasks: vectorized vs reference parity, op-metering exactness.

The compute plane's determinism contract rests on one invariant: for any
task, ``run_task(task, vectorized=True)`` and
``run_task(task, vectorized=False)`` return byte-for-byte equal results
*including the op meters* (simulated time is charged from op counts, so
a metering drift would silently change simulation outcomes).
"""

import numpy as np
import pytest

from repro.parallel.kernels import (
    _NP_MAX_K,
    EvalRound,
    Recount,
    StepBatch,
    run_task,
)
from repro.ramsey.graphs import Coloring, OpCounter, count_mono_cliques
from repro.ramsey.heuristics import TabuSearch


def _random_coloring(k: int, seed: int) -> Coloring:
    return Coloring.random(k, np.random.default_rng(seed))


def _random_edges(k: int, count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < count:
        u = int(rng.integers(k))
        v = int(rng.integers(k - 1))
        if v >= u:
            v += 1
        edges.add((min(u, v), max(u, v)))
    return sorted(edges)


@pytest.mark.parametrize("k,n", [(12, 4), (18, 5), (43, 5), (9, 3), (8, 2)])
def test_eval_round_vectorized_matches_reference(k, n):
    coloring = _random_coloring(k, seed=k * 31 + n)
    edges = _random_edges(k, min(16, k), seed=n)
    task = EvalRound(k, n, list(coloring.red), edges)
    ref = run_task(task, vectorized=False)
    vec = run_task(task, vectorized=True)
    assert vec.best_move == ref.best_move
    assert vec.best_delta == ref.best_delta
    assert vec.ops == ref.ops


def test_eval_round_tabu_and_aspiration_filtering():
    k, n = 14, 4
    coloring = _random_coloring(k, seed=5)
    edges = _random_edges(k, 10, seed=6)
    tabu = [True, False] * 5
    task = EvalRound(k, n, list(coloring.red), edges,
                     tabu=tabu, aspiration_below=2)
    ref = run_task(task, vectorized=False)
    vec = run_task(task, vectorized=True)
    assert (vec.best_move, vec.best_delta, vec.ops) == (
        ref.best_move, ref.best_delta, ref.ops)


@pytest.mark.parametrize("k,n", [(12, 4), (43, 5), (9, 3)])
def test_recount_vectorized_matches_reference(k, n):
    coloring = _random_coloring(k, seed=k + n)
    task = Recount(k, n, list(coloring.red))
    ref = run_task(task, vectorized=False)
    vec = run_task(task, vectorized=True)
    assert vec.energy == ref.energy
    assert vec.ops == ref.ops
    ops = OpCounter()
    assert ref.energy == count_mono_cliques(coloring, n, ops)
    assert ref.ops == ops.ops


def test_large_k_falls_back_to_reference():
    # Beyond the vectorized kernels' word width the dispatcher must fall
    # back to the reference path, still bit-identical.
    k, n = _NP_MAX_K + 7, 4
    coloring = _random_coloring(k, seed=2)
    edges = _random_edges(k, 6, seed=3)
    task = EvalRound(k, n, list(coloring.red), edges)
    ref = run_task(task, vectorized=False)
    vec = run_task(task, vectorized=True)
    assert (vec.best_move, vec.best_delta, vec.ops) == (
        ref.best_move, ref.best_delta, ref.ops)


def test_step_batch_matches_serial_step_loop():
    k, n, candidates = 18, 4, 12
    serial = TabuSearch(k, n, np.random.default_rng(11),
                        ops=OpCounter(), candidates=candidates)
    batched = TabuSearch(k, n, np.random.default_rng(11),
                         ops=OpCounter(), candidates=candidates)
    state = batched.export_state()
    ops_at_start = serial.ops.ops  # construction meters the initial recount
    total_ops = 0
    for _ in range(12):
        outcome = run_task(StepBatch(state, max_steps=25), vectorized=True)
        state = outcome.state
        total_ops += outcome.ops
        for _ in range(outcome.steps):
            serial.step()
    resumed = TabuSearch.from_state(state, ops=OpCounter())
    assert resumed.coloring.red == serial.coloring.red
    assert resumed.best_coloring.red == serial.best_coloring.red
    assert resumed.energy == serial.energy
    assert resumed.best_energy == serial.best_energy
    assert resumed.steps == serial.steps
    assert total_ops == serial.ops.ops - ops_at_start
    assert (resumed.rng.bit_generator.state["state"]
            == serial.rng.bit_generator.state["state"])


def test_step_batch_respects_ops_budget():
    search = TabuSearch(16, 4, np.random.default_rng(0),
                        ops=OpCounter(), candidates=8)
    state = search.export_state()
    outcome = run_task(StepBatch(state, max_steps=10_000, ops_budget=5_000),
                       vectorized=True)
    # The budget is checked between steps (mirroring RealEngine.advance),
    # so the batch may overshoot by at most one step's worth of ops but
    # must stop promptly rather than exhausting max_steps.
    assert outcome.steps < 10_000
    assert outcome.ops >= 5_000
