"""Serial-vs-pool determinism: same seed, same bytes.

The compute plane's whole claim is that offloading changes wall-clock
time and nothing else. These tests run the same seeded scenarios with
the inline lane, a worker pool, and (for the evaluator) deferred
harvesting, and require identical simulation outcomes — results, world
metrics snapshots (message counters per type are a wire-traffic
fingerprint), and search trajectories.
"""

import json

from repro.core.simdriver import SimDriver
from repro.experiments.export import headlines_json
from repro.experiments.sc98 import SC98Config, SC98World
from repro.parallel import make_lane
from repro.ramsey.parallel import ParallelEvaluator, ParallelTabuCoordinator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


def _tiny_cfg(pool: int) -> SC98Config:
    return SC98Config(scale=0.08, duration=900.0, seed=4, k=18, n=4,
                      engine="real", compute_pool=pool,
                      max_steps_per_advance=200)


def _run_world(pool: int) -> tuple[str, str]:
    world = SC98World(_tiny_cfg(pool))
    results = world.run()
    metrics = json.dumps(world.telemetry.metrics.snapshot(), sort_keys=True)
    return headlines_json(results), metrics


def test_sc98_pool_bit_identical_to_serial():
    serial_results, serial_metrics = _run_world(pool=0)
    pooled_results, pooled_metrics = _run_world(pool=2)
    assert pooled_results == serial_results
    # Equal msg.sent/msg.recv counters per mtype mean the pool run put
    # the same traffic on the wire, not just reached the same totals.
    assert pooled_metrics == serial_metrics


def test_sc98_pool_run_twice_identical():
    first = _run_world(pool=2)
    second = _run_world(pool=2)
    assert first == second


def _coordinator_world(k, n, lane=None, defer=False, n_evals=2, seed=2,
                       max_rounds=30):
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.0)

    def add(name):
        h = Host(env, HostSpec(name=name, speed=1e7,
                               load_model=ConstantLoad(1.0)), streams)
        net.add_host(h)
        return h

    contacts = []
    for i in range(n_evals):
        ev = ParallelEvaluator(f"eval{i}", lane=lane, defer=defer)
        SimDriver(env, net, add(f"eval{i}"), "eval", ev, streams).start()
        contacts.append(f"eval{i}/eval")
    coord = ParallelTabuCoordinator(
        "coord", k, n, contacts, candidates_per_eval=8,
        seed=seed, max_rounds=max_rounds, default_timeout=5.0)
    SimDriver(env, net, add("coord"), "coord", coord, streams).start()
    return env, coord


def _trajectory(coord) -> tuple:
    return (coord.rounds_closed, coord.moves_applied, coord.energy,
            coord.best_energy, coord.remote_ops,
            coord.best_coloring.to_hex())


def test_evaluator_lane_modes_preserve_coordinator_trajectory():
    env, baseline = _coordinator_world(14, 4)
    env.run(until=3000)

    lane = make_lane(2)
    try:
        env2, sync = _coordinator_world(14, 4, lane=lane)
        env2.drain_hook = lane.drain
        env2.run(until=3000)

        env3, deferred = _coordinator_world(14, 4, lane=lane, defer=True)
        env3.drain_hook = lane.drain
        env3.run(until=3000)
    finally:
        lane.close()

    assert _trajectory(sync) == _trajectory(baseline)
    assert _trajectory(deferred) == _trajectory(baseline)


def test_drain_hook_does_not_perturb_scheduling():
    def clock_series(hook: bool) -> list[float]:
        env = Environment()
        seen: list[float] = []

        def ticker(env, period):
            for _ in range(50):
                yield env.timeout(period)
                seen.append(env.now)

        for i in range(5):
            env.process(ticker(env, 1.0 + 0.1 * i))
        if hook:
            calls = []
            env.drain_hook = lambda: calls.append(env.now)
            env.run()
            assert calls, "drain hook never invoked"
        else:
            env.run()
        return seen

    assert clock_series(hook=True) == clock_series(hook=False)
