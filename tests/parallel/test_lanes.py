"""Lanes, pool transport, shared memory, crash recovery.

These tests exercise the machinery around the kernels: ticket routing,
the shm arena's slot lifecycle, worker-crash fallback, and the
lane-private telemetry that keeps world metrics byte-identical between
serial and pooled runs.
"""

import glob

import numpy as np
import pytest

from repro.parallel import (
    EvalRound,
    InlineLane,
    PoolLane,
    Recount,
    StepBatch,
    make_lane,
    run_task,
)
from repro.parallel.pool import CRASH_TASK, KernelPool
from repro.parallel.shm import ROW_WORDS, ShmArena
from repro.ramsey.graphs import Coloring, OpCounter
from repro.ramsey.heuristics import TabuSearch


def _eval_task(k=20, n=4, seed=0, edges=8):
    rng = np.random.default_rng(seed)
    coloring = Coloring.random(k, rng)
    pairs = sorted({(min(u, v), max(u, v)) for u, v in
                    ((int(rng.integers(k)), int(rng.integers(k)))
                     for _ in range(edges * 3)) if u != v})[:edges]
    return EvalRound(k, n, list(coloring.red), pairs)


def test_make_lane_selects_implementation():
    inline = make_lane(0)
    assert isinstance(inline, InlineLane)
    assert inline.workers == 0
    pooled = make_lane(2)
    try:
        assert isinstance(pooled, PoolLane)
        assert pooled.workers == 2
    finally:
        pooled.close()
    inline.close()


def test_inline_lane_matches_direct_run():
    lane = make_lane(0)
    task = _eval_task()
    direct = run_task(task, vectorized=False)
    via_lane = lane.run(task)
    assert (via_lane.best_move, via_lane.best_delta, via_lane.ops) == (
        direct.best_move, direct.best_delta, direct.ops)


def test_pool_lane_results_bit_identical_to_inline():
    tasks = [_eval_task(seed=s) for s in range(6)]
    tasks.append(Recount(20, 4, tasks[0].red))
    inline = make_lane(0)
    pool = make_lane(2)
    try:
        for task in tasks:
            a = inline.run(task)
            b = pool.run(task)
            assert a == b
        assert pool.fallbacks == 0
    finally:
        pool.close()
        inline.close()


def test_result_routes_interleaved_tickets():
    lane = make_lane(2)
    try:
        t1 = lane.submit(_eval_task(seed=1))
        t2 = lane.submit(_eval_task(seed=2))
        # Ask for them in reverse submit order: the lane must buffer the
        # non-matching completion instead of dropping or misrouting it.
        r2 = lane.result(t2)
        r1 = lane.result(t1)
        assert r1 == run_task(_eval_task(seed=1), vectorized=False)
        assert r2 == run_task(_eval_task(seed=2), vectorized=False)
    finally:
        lane.close()


def test_worker_crash_falls_back_inline():
    lane = make_lane(2)
    try:
        tasks = {lane.submit(_eval_task(seed=s)): _eval_task(seed=s)
                 for s in range(5)}
        crash_ticket = lane.submit(CRASH_TASK)
        for ticket, task in tasks.items():
            outcome = lane.result(ticket)
            assert outcome == run_task(task, vectorized=False)
        assert lane.result(crash_ticket) is None
        assert lane.fallbacks >= 1
        counters = lane.metrics.snapshot()["counters"]
        assert counters.get("parallel.fallback", 0) >= 1
    finally:
        lane.close()


def test_large_k_uses_inline_payload():
    # k beyond the shm row width must still round-trip (pickled payload).
    task = _eval_task(k=ROW_WORDS + 6, n=4, seed=3)
    lane = make_lane(1)
    try:
        outcome = lane.run(task)
        assert outcome == run_task(task, vectorized=False)
        assert lane.fallbacks == 0
    finally:
        lane.close()


def test_step_batch_through_pool_writes_state_back():
    search = TabuSearch(30, 5, np.random.default_rng(4),
                        ops=OpCounter(), candidates=8)
    task = StepBatch(search.export_state(), max_steps=15)
    ref = run_task(task, vectorized=False)
    lane = make_lane(1)
    try:
        via_pool = lane.run(task)
        assert via_pool.state == ref.state
        assert via_pool.ops == ref.ops
        assert via_pool.steps == ref.steps
    finally:
        lane.close()


def test_arena_slot_lifecycle():
    arena = ShmArena(slots=2)
    try:
        s1 = arena.acquire()
        s2 = arena.acquire()
        assert arena.acquire() is None  # full: callers fall back inline
        arena.write_row(s1, 0, [3, 5, 7])
        assert arena.read_row(s1, 0, 3) == [3, 5, 7]
        arena.release(s2)
        assert arena.acquire() == s2
    finally:
        arena.close()


def test_shm_released_across_repeated_worlds():
    before = set(glob.glob("/dev/shm/*"))
    for _ in range(4):
        lane = make_lane(2)
        lane.run(_eval_task())
        lane.close()
        lane.close()  # double-close must be safe
    leaked = set(glob.glob("/dev/shm/*")) - before
    assert not leaked, f"leaked shm segments: {leaked}"


def test_lane_telemetry_records_submit_complete():
    lane = make_lane(1, trace=True)
    try:
        lane.run(_eval_task())
        snap = lane.metrics.snapshot()["counters"]
        assert snap["parallel.submitted"] == 1
        assert snap["parallel.completed"] == 1
        spans = [s for s in lane.tracer.spans if s.name == "parallel.task"]
        assert len(spans) == 1
    finally:
        lane.close()
