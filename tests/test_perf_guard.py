"""The perf-snapshot baseline guard: ``before`` blocks are load-bearing.

``BENCH_*.json`` reports every speedup relative to its committed
``before`` baseline; an accidental ``--before-tree`` against the wrong
checkout would silently re-anchor the whole trajectory. The snapshot
tool must refuse to overwrite a committed baseline unless
``--rebaseline`` is passed explicitly.
"""

import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import perf_snapshot  # noqa: E402
import perfjson  # noqa: E402

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")


def _committed(path, median=123.0):
    perfjson.write(path, {
        "toy": {
            "unit": "items/s", "work_items": 1000, "rounds": 3,
            "before": {"best": median, "median": median, "source": "seed"},
            "after": {"best": median * 2, "median": median * 2},
        },
    })


def test_baseline_conflicts_detects_changed_before(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    _committed(path)
    unchanged = {"toy": {"before": {"best": 123.0, "median": 123.0}}}
    assert perfjson.baseline_conflicts(path, unchanged) == []
    changed = {"toy": {"before": {"best": 999.0, "median": 999.0}}}
    assert perfjson.baseline_conflicts(path, changed) == ["toy"]


def test_baseline_conflicts_ignores_new_workloads_and_missing_files(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    fresh = {"new": {"before": {"best": 1.0, "median": 1.0}}}
    assert perfjson.baseline_conflicts(path, fresh) == []  # no file yet
    _committed(path)
    assert perfjson.baseline_conflicts(path, fresh) == []  # new workload
    no_before = {"toy": {"after": {"best": 2.0, "median": 2.0}}}
    assert perfjson.baseline_conflicts(path, no_before) == []


@pytest.fixture
def snapshot_sandbox(tmp_path, monkeypatch):
    engine = tmp_path / "BENCH_engine.json"
    kernels = tmp_path / "BENCH_kernels.json"
    monkeypatch.setattr(perfjson, "ENGINE_JSON", engine)
    monkeypatch.setattr(perfjson, "KERNELS_JSON", kernels)
    monkeypatch.setattr(perf_snapshot, "WORKLOADS", {
        "toy": (lambda: 1000, "items/s", 1000, "engine"),
    })
    _committed(engine)
    return engine


def test_snapshot_refuses_to_rewrite_committed_baseline(snapshot_sandbox):
    # --before-tree re-measures the origin: the fresh 'before' median
    # cannot equal the committed 123.0, so the write must be refused.
    with pytest.raises(SystemExit) as exc:
        perf_snapshot.main(["--before-tree", SRC, "--rounds", "1"])
    assert exc.value.code == 2
    committed = perfjson.load(snapshot_sandbox)
    assert committed["workloads"]["toy"]["before"]["median"] == 123.0


def test_snapshot_rebaseline_accepts_new_baseline(snapshot_sandbox):
    assert perf_snapshot.main(
        ["--before-tree", SRC, "--rounds", "1", "--rebaseline"]) == 0
    rewritten = perfjson.load(snapshot_sandbox)
    assert rewritten["workloads"]["toy"]["before"]["median"] != 123.0


def test_snapshot_without_before_tree_preserves_baseline(snapshot_sandbox):
    assert perf_snapshot.main(["--rounds", "1"]) == 0
    kept = perfjson.load(snapshot_sandbox)
    assert kept["workloads"]["toy"]["before"]["median"] == 123.0
