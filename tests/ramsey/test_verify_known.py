"""Tests for Paley constructions and the independent verifier."""

import numpy as np
import pytest

from repro.core.services.persistent import ValidationError
from repro.ramsey.graphs import Coloring, count_mono_cliques
from repro.ramsey.known import (
    KNOWN_RAMSEY,
    PALEY_WITNESSES,
    SEARCH_TARGETS,
    paley_coloring,
)
from repro.ramsey.verify import (
    counter_example_validator,
    find_mono_clique,
    is_counter_example,
    verify_counter_example_object,
)


def test_paley_5_witnesses_r3():
    c = paley_coloring(5)
    assert is_counter_example(c, 3)
    assert count_mono_cliques(c, 3) == 0


def test_paley_13_witnesses_r4():
    c = paley_coloring(13)
    assert count_mono_cliques(c, 4) == 0
    assert is_counter_example(c, 4)


def test_paley_17_witnesses_r4_tight():
    """Paley(17) proves R(4,4) > 17 — tight, since R(4,4) = 18."""
    c = paley_coloring(17)
    assert count_mono_cliques(c, 4) == 0


def test_paley_17_is_not_a_k5_free_but_has_no_mono_k4():
    # Sanity: it *does* contain mono triangles (3 < 4).
    c = paley_coloring(17)
    assert count_mono_cliques(c, 3) > 0


def test_paley_37_witnesses_r5():
    c = paley_coloring(37)
    assert count_mono_cliques(c, 5) == 0


def test_paley_rejects_bad_q():
    with pytest.raises(ValueError):
        paley_coloring(7)  # 7 % 4 == 3
    with pytest.raises(ValueError):
        paley_coloring(9)  # not prime
    with pytest.raises(ValueError):
        paley_coloring(4)


def test_paley_is_self_complementary_in_counts():
    """Red and blue mono-clique counts are equal for Paley colorings."""
    from repro.ramsey.graphs import _count_cliques

    c = paley_coloring(13)
    red = _count_cliques(c.red, 13, 3, None)
    blue = _count_cliques([c.blue_mask(v) for v in range(13)], 13, 3, None)
    assert red == blue


def test_find_mono_clique_returns_witness():
    k = 6  # R(3,3)=6: every 2-coloring of K_6 has a mono triangle
    rng = np.random.default_rng(0)
    for _ in range(5):
        c = Coloring.random(k, rng)
        witness = find_mono_clique(c, 3)
        assert witness is not None
        colors = {c.color(u, v) for i, u in enumerate(witness) for v in witness[i + 1:]}
        assert len(colors) == 1  # genuinely monochromatic


def test_known_table_consistency():
    assert KNOWN_RAMSEY[3] == (6, 6)
    assert KNOWN_RAMSEY[4] == (18, 18)
    assert KNOWN_RAMSEY[5][1] == 43
    assert SEARCH_TARGETS[5] == 43


def test_verify_object_accepts_valid():
    c = paley_coloring(17)
    obj = {"k": 17, "n": 4, "coloring": c.to_hex()}
    decoded = verify_counter_example_object(obj)
    assert decoded == c


def test_verify_object_rejects_non_counter_example():
    rng = np.random.default_rng(1)
    c = Coloring.random(6, rng)  # K_6 always has a mono triangle
    obj = {"k": 6, "n": 3, "coloring": c.to_hex()}
    with pytest.raises(ValidationError, match="monochromatic"):
        verify_counter_example_object(obj)


def test_verify_object_rejects_malformed():
    with pytest.raises(ValidationError):
        verify_counter_example_object({"k": 5})
    with pytest.raises(ValidationError):
        verify_counter_example_object({"k": 5, "n": 3, "coloring": "zz-not-hex"})
    with pytest.raises(ValidationError):
        verify_counter_example_object({"k": 3, "n": 5, "coloring": ""})


def test_validator_hook_scopes_to_ramsey_keys():
    # Non-ramsey keys pass untouched.
    counter_example_validator("other/key", {"anything": 1})
    # Ramsey keys are checked.
    c = paley_coloring(5)
    counter_example_validator("ramsey/r3", {"k": 5, "n": 3, "coloring": c.to_hex()})
    with pytest.raises(ValidationError):
        counter_example_validator("ramsey/r3", {"k": 5, "n": 3, "coloring": ""})
