"""Tests for the Ramsey search heuristics."""

import numpy as np
import pytest

from repro.ramsey.graphs import Coloring, OpCounter, count_mono_cliques
from repro.ramsey.heuristics import (
    Annealing,
    SearchSnapshot,
    TabuSearch,
    make_search,
)
from repro.ramsey.verify import is_counter_example


def test_tabu_finds_r3_counter_example_on_k5():
    """Counter-example for R(3,3) > 5 exists (the pentagon); local search
    must find it quickly."""
    rng = np.random.default_rng(0)
    s = TabuSearch(5, 3, rng)
    s.run(max_steps=2000)
    assert s.found
    best = Coloring.from_hex(5, s.snapshot().best_coloring)
    assert is_counter_example(best, 3)


def test_annealing_finds_r3_counter_example_on_k5():
    rng = np.random.default_rng(1)
    s = Annealing(5, 3, rng)
    s.run(max_steps=5000)
    assert s.found


def test_tabu_finds_r4_counter_example_on_k10():
    """K_10 is comfortably below R(4,4)=18; tabu should zero the energy."""
    rng = np.random.default_rng(2)
    s = TabuSearch(10, 4, rng)
    s.run(max_steps=5000)
    assert s.found
    best = Coloring.from_hex(10, s.snapshot().best_coloring)
    assert count_mono_cliques(best, 4) == 0


def test_energy_incremental_accounting_is_exact():
    """After any number of steps, the tracked energy equals a recount."""
    rng = np.random.default_rng(3)
    s = TabuSearch(8, 3, rng)
    for _ in range(50):
        s.step()
    assert s.energy == count_mono_cliques(s.coloring, 3)
    assert s.best_energy == count_mono_cliques(s.best_coloring, 3)


def test_annealing_energy_accounting_is_exact():
    rng = np.random.default_rng(4)
    s = Annealing(8, 3, rng)
    for _ in range(200):
        s.step()
    assert s.energy == count_mono_cliques(s.coloring, 3)


def test_best_energy_monotonically_nonincreasing():
    rng = np.random.default_rng(5)
    s = TabuSearch(9, 4, rng)
    history = []
    for _ in range(300):
        s.step()
        history.append(s.best_energy)
    assert all(b >= a for a, b in zip(history[1:], history))


def test_k6_r3_never_succeeds():
    """R(3,3)=6: no coloring of K_6 avoids a mono triangle; energy stays
    positive no matter how long we search."""
    rng = np.random.default_rng(6)
    s = TabuSearch(6, 3, rng)
    s.run(max_steps=1500)
    assert not s.found
    assert s.best_energy >= 1


def test_ops_metered_during_search():
    ops = OpCounter()
    rng = np.random.default_rng(7)
    s = TabuSearch(8, 3, rng, ops=ops)
    s.run(max_steps=20)
    assert ops.ops > 0


def test_snapshot_roundtrip_and_restore():
    rng = np.random.default_rng(8)
    s = TabuSearch(8, 3, rng)
    s.run(max_steps=100)
    snap = s.snapshot()
    d = snap.to_dict()
    restored_snap = SearchSnapshot.from_dict(d)
    assert restored_snap == snap

    fresh = TabuSearch(8, 3, np.random.default_rng(99))
    fresh.restore(restored_snap)
    assert fresh.energy == count_mono_cliques(fresh.coloring, 3)
    assert fresh.best_energy <= snap.best_energy  # recount can't be worse
    assert fresh.steps == snap.steps


def test_restore_rejects_size_mismatch():
    rng = np.random.default_rng(9)
    s = TabuSearch(8, 3, rng)
    snap = s.snapshot()
    other = TabuSearch(9, 3, np.random.default_rng(0))
    with pytest.raises(ValueError):
        other.restore(snap)


def test_restore_recounts_untrusted_energy():
    """A tampered snapshot energy is corrected on restore (snapshots cross
    the wire — trust the coloring, recount the numbers)."""
    rng = np.random.default_rng(10)
    s = TabuSearch(7, 3, rng)
    snap = s.snapshot()
    lied = SearchSnapshot.from_dict({**snap.to_dict(), "energy": 0, "best_energy": 0})
    fresh = TabuSearch(7, 3, np.random.default_rng(0))
    fresh.restore(lied)
    assert fresh.energy == count_mono_cliques(fresh.coloring, 3)


def test_perturb_restart_changes_state_but_keeps_best():
    rng = np.random.default_rng(11)
    s = TabuSearch(8, 3, rng, stall_limit=5)
    s.run(max_steps=60)
    best_before = s.best_energy
    s._perturb()
    assert s.best_energy <= best_before
    assert s.restarts >= 1


def test_make_search_factory():
    rng = np.random.default_rng(12)
    assert isinstance(make_search("tabu", 6, 3, rng), TabuSearch)
    assert isinstance(make_search("anneal", 6, 3, rng), Annealing)
    with pytest.raises(ValueError):
        make_search("quantum", 6, 3, rng)


def test_search_validates_sizes():
    rng = np.random.default_rng(13)
    with pytest.raises(ValueError):
        TabuSearch(5, 2, rng)
    with pytest.raises(ValueError):
        TabuSearch(3, 4, rng)


def test_deterministic_given_seed():
    a = TabuSearch(7, 3, np.random.default_rng(42))
    b = TabuSearch(7, 3, np.random.default_rng(42))
    a.run(max_steps=100)
    b.run(max_steps=100)
    assert a.snapshot() == b.snapshot()


def test_run_with_relaxed_target_stops_early():
    rng = np.random.default_rng(14)
    s = TabuSearch(6, 3, rng)
    initial = s.best_energy
    taken = s.run(max_steps=10_000, target=initial)  # already satisfied
    assert taken == 0


def test_annealing_temperature_floor_and_cooling():
    rng = np.random.default_rng(15)
    s = Annealing(6, 3, rng, t_start=1.0, t_min=0.1, cooling=0.5,
                  stall_limit=10**9)
    temps = []
    for _ in range(10):
        s.step()
        temps.append(s.temperature)
    assert temps[0] == pytest.approx(0.5)
    assert temps[-1] == pytest.approx(0.1)  # clamped at the floor
    assert all(t2 <= t1 for t1, t2 in zip(temps, temps[1:]))


def test_annealing_reheats_on_stall():
    rng = np.random.default_rng(16)
    s = Annealing(6, 3, rng, t_start=2.0, t_min=0.01, cooling=0.5,
                  stall_limit=30)
    s.run(max_steps=500)
    # With such a tiny stall limit on an unsolvable instance, at least one
    # reheat/perturbation must have occurred.
    assert s.restarts >= 1


# ---------------------------------------------------------------- minconflicts


def test_minconflicts_finds_r3_counter_example_on_k5():
    from repro.ramsey.heuristics import MinConflicts

    rng = np.random.default_rng(20)
    s = MinConflicts(5, 3, rng)
    s.run(max_steps=3000)
    assert s.found
    best = Coloring.from_hex(5, s.snapshot().best_coloring)
    assert is_counter_example(best, 3)


def test_minconflicts_finds_r4_counter_example_on_k10():
    from repro.ramsey.heuristics import MinConflicts

    rng = np.random.default_rng(21)
    s = MinConflicts(10, 4, rng)
    s.run(max_steps=8000)
    assert s.found


def test_minconflicts_energy_accounting_exact():
    from repro.ramsey.heuristics import MinConflicts

    rng = np.random.default_rng(22)
    s = MinConflicts(8, 3, rng)
    for _ in range(120):
        s.step()
    assert s.energy == count_mono_cliques(s.coloring, 3)


def test_minconflicts_step_noop_at_solution():
    from repro.ramsey.heuristics import MinConflicts

    rng = np.random.default_rng(23)
    s = MinConflicts(5, 3, rng)
    s.run(max_steps=3000)
    # Once solved (energy 0), further steps change nothing.
    e = s.energy
    coloring = s.coloring.copy()
    if e == 0:
        s.step()
        assert s.coloring == coloring


def test_minconflicts_in_factory_and_units():
    from repro.ramsey.heuristics import MinConflicts
    from repro.ramsey.tasks import make_unit, run_unit

    rng = np.random.default_rng(24)
    assert isinstance(make_search("minconflict", 6, 3, rng), MinConflicts)
    result = run_unit(make_unit("u", 5, 3, heuristic="minconflict", seed=1),
                      max_steps=3000)
    assert result["found"]


def test_find_any_mono_clique_agrees_with_slow_search():
    from repro.ramsey.graphs import find_any_mono_clique
    from repro.ramsey.verify import find_mono_clique
    from itertools import combinations
    from repro.ramsey.graphs import RED, BLUE

    rng = np.random.default_rng(25)
    for _ in range(25):
        k = int(rng.integers(4, 9))
        n = int(rng.integers(3, 5))
        c = Coloring.random(k, rng)
        fast = find_any_mono_clique(c, n, start=int(rng.integers(k)))
        slow = find_mono_clique(c, n)
        assert (fast is None) == (slow is None)
        if fast is not None:
            colors = {c.color(u, v) for u, v in combinations(fast, 2)}
            assert len(colors) == 1  # genuinely monochromatic
            assert len(fast) == n
