"""Tests for work units."""

import pytest

from repro.core.services.scheduler import QueueWorkSource
from repro.ramsey.graphs import Coloring
from repro.ramsey.tasks import make_unit, run_unit, unit_generator, validate_unit
from repro.ramsey.verify import is_counter_example


def test_make_and_validate_unit():
    unit = make_unit("u1", k=10, n=4, heuristic="tabu", seed=3)
    validate_unit(unit)
    assert unit["id"] == "u1"
    assert unit["ops_budget"] > 0


def test_make_unit_rejects_unknown_heuristic():
    with pytest.raises(ValueError):
        make_unit("u1", 10, 4, heuristic="bogosort")


def test_validate_rejects_missing_fields_and_bad_sizes():
    with pytest.raises(ValueError):
        validate_unit({"id": "x"})
    bad = make_unit("u", 10, 4)
    bad["k"] = 3
    with pytest.raises(ValueError):
        validate_unit(bad)


def test_unit_generator_cycles_heuristics_and_seeds():
    gen = unit_generator(k=43, n=5, base_seed=100)
    units = [gen(i) for i in range(1, 5)]
    assert [u["heuristic"] for u in units] == [
        "anneal", "minconflict", "tabu", "anneal"]
    assert len({u["seed"] for u in units}) == 4
    assert all(u["k"] == 43 and u["n"] == 5 for u in units)
    for u in units:
        validate_unit(u)


def test_unit_generator_feeds_work_source():
    source = QueueWorkSource(generator=unit_generator(10, 4))
    a, b = source.next_unit(), source.next_unit()
    assert a["id"] != b["id"]


def test_run_unit_finds_small_counter_example():
    unit = make_unit("u", k=5, n=3, heuristic="tabu", seed=0)
    result = run_unit(unit, max_steps=3000)
    assert result["found"]
    coloring = Coloring.from_hex(5, result["coloring"])
    assert is_counter_example(coloring, 3)
    assert result["ops"] > 0


def test_run_unit_with_resume_snapshot():
    unit = make_unit("u", k=8, n=3, heuristic="tabu", seed=1)
    partial = run_unit(unit, max_steps=30)
    from repro.ramsey.heuristics import TabuSearch
    import numpy as np

    # Fabricate a resume from the partial result's best coloring.
    resumed_unit = dict(unit)
    resumed_unit["resume"] = {
        "k": 8, "n": 3,
        "coloring": partial["coloring"],
        "energy": 0, "best_coloring": partial["coloring"],
        "best_energy": 0, "steps": partial["steps"],
    }
    result = run_unit(resumed_unit, max_steps=100)
    assert result["best_energy"] <= partial["best_energy"]


def test_run_unit_ignores_corrupt_resume():
    unit = make_unit("u", k=6, n=3, heuristic="anneal", seed=2)
    unit["resume"] = {"coloring": "zz", "garbage": True}
    result = run_unit(unit, max_steps=50)  # must not raise
    assert result["steps"] == 50 or result["found"]
