"""The paper's three classes of program state, demonstrated (§3.1.2).

* **local** state dies with the process (a client's in-progress search);
* **volatile-but-replicated** state survives individual process loss via
  the Gossip service (the best-so-far record);
* **persistent** state survives the loss of *every* active process via
  the persistent state manager (checkpointed counter-examples).
"""

import pytest

from repro.core.gossip import ComparatorRegistry, GossipServer
from repro.core.services import PersistentStateServer, QueueWorkSource, SchedulerServer
from repro.core.simdriver import SimDriver
from repro.ramsey.client import RAMSEY_BEST, RamseyClient, RealEngine, ramsey_comparator
from repro.ramsey.graphs import Coloring
from repro.ramsey.tasks import unit_generator
from repro.ramsey.verify import counter_example_validator, is_counter_example
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


@pytest.fixture(scope="module")
def world():
    env = Environment()
    streams = RngStreams(seed=77)
    net = Network(env, streams, jitter=0.0)
    hosts = {}

    def add(name, speed=2e6):
        h = Host(env, HostSpec(name=name, speed=speed,
                               load_model=ConstantLoad(1.0)), streams)
        net.add_host(h)
        hosts[name] = h
        return h

    comparators = ComparatorRegistry()
    comparators.register(RAMSEY_BEST, ramsey_comparator)
    gossip = GossipServer("gos", ["gos/gossip"], comparators=comparators,
                          poll_period=5, sync_period=8)
    SimDriver(env, net, add("gos"), "gossip", gossip, streams).start()

    work = QueueWorkSource(generator=unit_generator(5, 3, ops_budget=1e8))
    sched = SchedulerServer("sched", work, report_period=15)
    SimDriver(env, net, add("sched"), "sched", sched, streams).start()

    pst = PersistentStateServer("pst")
    pst.add_validator(counter_example_validator)
    SimDriver(env, net, add("pst"), "pst", pst, streams).start()

    clients = []
    for i in range(2):
        client = RamseyClient(
            f"cli{i}", schedulers=["sched/sched"],
            engine=RealEngine(max_steps_per_advance=200), infra="unix",
            persistent="pst/pst", gossip_well_known=["gos/gossip"],
            work_period=5, report_period=15, seed=i)
        SimDriver(env, net, add(f"cli{i}"), "cli", client, streams).start()
        clients.append(client)

    # Run until a counter-example has been found and checkpointed.
    env.run(until=600)
    assert pst.stats.stores >= 1, "scenario precondition: witness checkpointed"
    return env, net, hosts, gossip, pst, clients


def test_local_state_dies_with_the_process(world):
    env, net, hosts, gossip, pst, clients = world
    victim = clients[0]
    engine_before = victim.engine.search
    hosts["cli0"].go_down("reclaimed")
    env.run(until=env.now + 30)
    # The search object (local state) is unreachable/not resumed anywhere:
    # nothing in the system references the dead client's in-flight search.
    assert not hosts["cli0"].up
    assert engine_before is victim.engine.search  # frozen, no one resumes it


def test_replicated_state_survives_single_process_loss(world):
    env, net, hosts, gossip, pst, clients = world
    # cli0 is dead (previous test); the best-so-far record lives on in the
    # gossip pool and the surviving client.
    rec = gossip.freshest.get(RAMSEY_BEST)
    assert rec is not None
    assert rec.data["energy"] == 0
    survivor = clients[1].store.get_data(RAMSEY_BEST)
    assert survivor is not None and survivor["energy"] == 0


def test_persistent_state_survives_total_application_loss(world):
    env, net, hosts, gossip, pst, clients = world
    # Kill EVERYTHING except the persistent manager: all clients, the
    # scheduler, the gossip pool.
    for name in ("cli0", "cli1", "sched", "gos"):
        if hosts[name].up:
            hosts[name].go_down("catastrophe")
    env.run(until=env.now + 60)
    keys = [k for k in pst.backend.keys() if k.startswith("ramsey")]
    assert keys, "checkpoint must outlive every active process"
    obj = pst.backend.get(keys[0])
    coloring = Coloring.from_hex(obj["k"], obj["coloring"])
    assert is_counter_example(coloring, obj["n"])


def test_restarted_application_reuses_persistent_state(world):
    env, net, hosts, gossip, pst, clients = world
    # A fresh client generation can fetch the checkpoint back.
    from repro.core.linguafranca.endpoint import SimEndpoint
    from repro.core.linguafranca.messages import Message
    from repro.simgrid.network import Address

    hosts["cli1"].go_up()
    probe = SimEndpoint(env, net, Address("cli1", "probe"))

    def fetch(env):
        reply, _ = yield from probe.request(
            "pst/pst", Message(mtype="PST_LIST", sender="",
                               body={"prefix": "ramsey"}), timeout=10)
        key = reply.body["keys"][0]
        reply, _ = yield from probe.request(
            "pst/pst", Message(mtype="PST_FETCH", sender="",
                               body={"key": key}), timeout=10)
        return reply.body["object"]

    proc = env.process(fetch(env))
    env.run(until=env.now + 60)
    obj = proc.value
    assert is_counter_example(Coloring.from_hex(obj["k"], obj["coloring"]),
                              obj["n"])
