"""Tests for the parallel tabu search (§6 future work, delivered)."""

import pytest

from repro.core.simdriver import SimDriver
from repro.ramsey.graphs import Coloring, count_mono_cliques
from repro.ramsey.parallel import ParallelEvaluator, ParallelTabuCoordinator
from repro.ramsey.verify import is_counter_example
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


def build_world(k, n, n_evals=3, seed=2, max_rounds=None, jitter=0.0):
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=jitter)
    hosts = {}

    def add(name):
        h = Host(env, HostSpec(name=name, speed=1e7,
                               load_model=ConstantLoad(1.0)), streams)
        net.add_host(h)
        hosts[name] = h
        return h

    evaluators = []
    contacts = []
    for i in range(n_evals):
        h = add(f"eval{i}")
        ev = ParallelEvaluator(f"eval{i}")
        SimDriver(env, net, h, "eval", ev, streams).start()
        evaluators.append(ev)
        contacts.append(f"eval{i}/eval")

    coord = ParallelTabuCoordinator(
        "coord", k, n, contacts, candidates_per_eval=10,
        seed=seed, max_rounds=max_rounds, default_timeout=5.0)
    SimDriver(env, net, add("coord"), "coord", coord, streams).start()
    return env, net, hosts, coord, evaluators


def test_requires_evaluators():
    with pytest.raises(ValueError):
        ParallelTabuCoordinator("c", 5, 3, [])


def test_parallel_search_finds_counter_example():
    env, net, hosts, coord, evals = build_world(8, 4, n_evals=3)
    env.run(until=4000)
    assert coord.found
    best = coord.best_coloring
    assert is_counter_example(best, 4)
    assert coord.moves_applied > 0
    assert all(ev.rounds_served > 0 for ev in evals)


def test_energy_accounting_exact_despite_distribution():
    env, net, hosts, coord, evals = build_world(9, 4, n_evals=2, max_rounds=40)
    env.run(until=4000)
    assert coord.energy == count_mono_cliques(coord.coloring, 4)
    assert coord.best_energy == count_mono_cliques(coord.best_coloring, 4)


def test_round_barrier_counts():
    # K_6 / n=3 is unsolvable (R(3,3) = 6): the search can never stop
    # early, so the barrier arithmetic is fully observable.
    env, net, hosts, coord, evals = build_world(6, 3, n_evals=3, max_rounds=25)
    env.run(until=4000)
    assert coord.rounds_closed == 25
    # Healthy evaluators: no straggler-closed rounds.
    assert coord.straggler_rounds == 0
    # Every evaluator served every round.
    assert all(ev.rounds_served == 25 for ev in evals)
    assert coord.remote_ops > 0


def test_survives_evaluator_death():
    """A dead evaluator stalls exactly one barrier; rounds keep closing
    on the forecast time-out with partial results."""
    env, net, hosts, coord, evals = build_world(6, 3, n_evals=3, max_rounds=60)
    env.run(until=0.05)  # a few ~5ms rounds have closed
    hosts["eval1"].go_down("reclaimed")
    env.run(until=8000)
    assert coord.rounds_closed >= 60
    assert coord.straggler_rounds >= 1
    assert coord.moves_applied > 0


def test_late_responses_from_closed_rounds_ignored():
    """High jitter can deliver a PAR_BEST after its round timed out; the
    coordinator must not double-apply."""
    env, net, hosts, coord, evals = build_world(
        8, 4, n_evals=3, max_rounds=30, jitter=3.0, seed=6)
    env.run(until=8000)
    # However the rounds unfolded, the accounting must stay exact.
    assert coord.energy == count_mono_cliques(coord.coloring, 4)
    assert coord.rounds_closed >= 1
