"""End-to-end tests: Ramsey clients + scheduler + gossip + persistent +
logging, all over the simulated Grid — Figure 1's topology in miniature."""

import pytest

from repro.core.gossip import ComparatorRegistry, GossipServer
from repro.core.services import (
    LoggingServer,
    PersistentStateServer,
    QueueWorkSource,
    SchedulerServer,
)
from repro.core.simdriver import SimDriver
from repro.ramsey.client import (
    RAMSEY_BEST,
    ModelEngine,
    RamseyClient,
    RealEngine,
    ramsey_comparator,
)
from repro.ramsey.tasks import unit_generator
from repro.ramsey.verify import counter_example_validator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams


class MiniGrid:
    """One of everything, plus N clients."""

    def __init__(self, n_clients=2, k=5, n=3, engine_factory=None, seed=21,
                 client_speed=1e6):
        self.env = Environment()
        self.streams = RngStreams(seed=seed)
        self.net = Network(self.env, self.streams, jitter=0.0)
        self.hosts = {}

        def add_host(name, speed=1e7):
            h = Host(self.env, HostSpec(name=name, speed=speed,
                                        load_model=ConstantLoad(1.0)), self.streams)
            self.net.add_host(h)
            self.hosts[name] = h
            return h

        comparators = ComparatorRegistry()
        comparators.register(RAMSEY_BEST, ramsey_comparator)

        self.gossip = GossipServer("gossip0", ["gos0/gossip"],
                                   comparators=comparators,
                                   poll_period=5, sync_period=7)
        SimDriver(self.env, self.net, add_host("gos0"), "gossip",
                  self.gossip, self.streams).start()

        self.work = QueueWorkSource(generator=unit_generator(k, n, base_seed=7,
                                                             ops_budget=5e7))
        self.sched = SchedulerServer("sched0", self.work, report_period=20,
                                     reap_period=40)
        SimDriver(self.env, self.net, add_host("sch0"), "sched",
                  self.sched, self.streams).start()

        self.pst = PersistentStateServer("pst0")
        self.pst.add_validator(counter_example_validator)
        SimDriver(self.env, self.net, add_host("pst0"), "pst",
                  self.pst, self.streams).start()

        self.logsrv = LoggingServer("log0")
        SimDriver(self.env, self.net, add_host("log0"), "log",
                  self.logsrv, self.streams).start()

        engine_factory = engine_factory or (lambda i: RealEngine(max_steps_per_advance=500))
        self.clients = []
        for i in range(n_clients):
            h = add_host(f"cli{i}", speed=client_speed)
            client = RamseyClient(
                f"cli{i}",
                schedulers=["sch0/sched"],
                engine=engine_factory(i),
                infra="unix",
                loggers=["log0/log"],
                persistent="pst0/pst",
                gossip_well_known=["gos0/gossip"],
                work_period=10,
                report_period=20,
                hello_retry=15,
                seed=i,
            )
            SimDriver(self.env, self.net, h, "cli", client, self.streams).start()
            self.clients.append(client)


def test_clients_get_work_and_report():
    g = MiniGrid(n_clients=2)
    g.env.run(until=120)
    assert g.sched.stats.hellos >= 2
    assert g.sched.stats.units_assigned >= 2
    assert g.sched.stats.reports >= 2
    assert all(c.unit is not None or c._unit_done for c in g.clients)


def test_counter_example_found_checkpointed_and_verified():
    g = MiniGrid(n_clients=2, k=5, n=3)
    g.env.run(until=400)
    found = sum(c.counter_examples_found for c in g.clients)
    assert found >= 1
    # The persistent manager verified and accepted a genuine witness.
    assert g.pst.stats.stores >= 1
    assert g.pst.stats.denials == 0
    keys = g.pst.backend.keys()
    assert any(k.startswith("ramsey") for k in keys)
    acks = sum(c.checkpoint_acks for c in g.clients)
    assert acks >= 1


def test_best_state_spreads_through_gossip():
    g = MiniGrid(n_clients=3, k=5, n=3)
    g.env.run(until=400)
    # Every client's RAMSEY_BEST should converge to energy 0 via gossip.
    datas = [c.store.get_data(RAMSEY_BEST) for c in g.clients]
    assert all(d is not None for d in datas)
    assert min(d["energy"] for d in datas) == 0
    # At least one client learned it *remotely* (adopted via GOS_UPDATE)
    # or all found it locally; either way the gossip adopted records.
    assert g.gossip.stats.records_adopted >= 1


def test_performance_records_reach_logging_server():
    g = MiniGrid(n_clients=2)
    g.env.run(until=150)
    perf = g.logsrv.by_kind("perf")
    assert len(perf) >= 4
    assert all("rate" in r.data and r.data["infra"] == "unix" for r in perf)


def test_model_engine_clients_burn_host_speed():
    g = MiniGrid(n_clients=2, engine_factory=lambda i: ModelEngine(),
                 client_speed=2e6)
    g.env.run(until=200)
    perf = g.logsrv.by_kind("perf")
    assert perf, "model clients must report performance"
    rates = [r.data["rate"] for r in perf if r.data["rate"] > 0]
    assert rates
    # Rate cannot exceed host speed (conservative metric).
    assert max(rates) <= 2e6 * 1.01


def test_scheduler_failover():
    """When the scheduler dies, clients rotate to the backup and keep
    getting work."""
    g = MiniGrid(n_clients=2, engine_factory=lambda i: ModelEngine())
    # Add a backup scheduler.
    h = Host(g.env, HostSpec(name="sch1", speed=1e7), g.streams)
    g.net.add_host(h)
    backup_work = QueueWorkSource(generator=unit_generator(5, 3, base_seed=99,
                                                           ops_budget=5e7))
    backup = SchedulerServer("sched1", backup_work, report_period=20)
    SimDriver(g.env, g.net, h, "sched", backup, g.streams).start()
    for c in g.clients:
        c.schedulers = ["sch0/sched", "sch1/sched"]
    g.env.run(until=100)
    g.hosts["sch0"].go_down("failure")
    g.env.run(until=500)
    assert backup.stats.hellos >= 2
    assert all(c.unit is not None or c._unit_done for c in g.clients)


def test_client_death_reaps_and_requeues():
    g = MiniGrid(n_clients=2, engine_factory=lambda i: ModelEngine())
    g.env.run(until=100)
    g.hosts["cli0"].go_down("reclaimed")
    g.env.run(until=400)
    assert g.sched.stats.reaps >= 1
    assert g.sched.active_clients() == ["cli1/cli"]


# ------------------------------------------------- assignment acknowledgment


def test_client_acks_correlated_assignments_even_when_mid_unit():
    """Reliable assignments carry a req_id; the client must SCH_ACK every
    one — including duplicates while mid-unit — or the scheduler's retry
    ladder gives up and requeues work the client actually holds."""
    from repro.core.component import NullRuntime, Send
    from repro.core.linguafranca.messages import Message
    from repro.core.services.scheduler import SCH_ACK, SCH_WORK

    client = RamseyClient("cli", ["sch0/sched"], ModelEngine(), seed=1)
    client.bind_runtime(NullRuntime(contact="cli/c"))
    unit = {"id": "u1", "k": 5, "n": 3, "seed": 1, "ops_budget": 1e6,
            "heuristic": "tabu"}
    first = Message(mtype=SCH_WORK, sender="sch0/sched",
                    body={"unit": unit}, req_id=11)
    effects = client.on_message(first, 1.0)
    acks = [e for e in effects if isinstance(e, Send)
            and e.message.mtype == SCH_ACK]
    assert len(acks) == 1
    assert acks[0].message.reply_to == 11
    assert client.unit["id"] == "u1"
    # A duplicate delivery (retransmit raced the first ACK) is ACKed
    # again and the in-hand unit is kept.
    dup = Message(mtype=SCH_WORK, sender="sch0/sched",
                  body={"unit": unit}, req_id=12)
    effects = client.on_message(dup, 2.0)
    acks = [e for e in effects if isinstance(e, Send)
            and e.message.mtype == SCH_ACK]
    assert len(acks) == 1 and acks[0].message.reply_to == 12
    assert client.unit["id"] == "u1"
    # Uncorrelated (fire-and-forget) assignments are not ACKed.
    plain = Message(mtype=SCH_WORK, sender="sch0/sched", body={"unit": None})
    assert not [e for e in client.on_message(plain, 3.0)
                if isinstance(e, Send)]
