"""Tests for colorings and monochromatic-clique counting."""

from itertools import combinations
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ramsey.graphs import (
    BLUE,
    RED,
    Coloring,
    OpCounter,
    count_mono_cliques,
    count_mono_cliques_with_edge,
)


def brute_force_mono(coloring, n):
    """Reference count by direct subset enumeration."""
    total = 0
    for subset in combinations(range(coloring.k), n):
        for color in (RED, BLUE):
            if all(coloring.color(u, v) == color for u, v in combinations(subset, 2)):
                total += 1
    return total


def test_coloring_basics():
    c = Coloring(4)
    assert c.color(0, 1) == BLUE  # default all-blue
    c.flip(0, 1)
    assert c.color(0, 1) == RED
    assert c.color(1, 0) == RED  # symmetric
    c.flip(0, 1)
    assert c.color(0, 1) == BLUE


def test_coloring_rejects_self_edge():
    c = Coloring(4)
    with pytest.raises(ValueError):
        c.color(2, 2)
    with pytest.raises(ValueError):
        Coloring.from_edges(4, [(1, 1)])


def test_coloring_validates_masks():
    with pytest.raises(ValueError):
        Coloring(3, [1 << 5, 0, 0])  # bit beyond k
    with pytest.raises(ValueError):
        Coloring(3, [2, 0, 0])  # asymmetric
    with pytest.raises(ValueError):
        Coloring(3, [1, 2, 4])  # self loops


def test_coloring_too_small():
    with pytest.raises(ValueError):
        Coloring(1)


def test_all_red_counts_binomial():
    k = 8
    c = Coloring.from_edges(k, ((u, v) for u in range(k) for v in range(u + 1, k)))
    for n in (3, 4, 5):
        assert count_mono_cliques(c, n) == comb(k, n)


def test_all_blue_counts_binomial():
    k = 7
    c = Coloring(k)
    assert count_mono_cliques(c, 3) == comb(7, 3)


def test_random_coloring_matches_brute_force():
    rng = np.random.default_rng(0)
    for _ in range(10):
        k = int(rng.integers(4, 9))
        c = Coloring.random(k, rng)
        for n in (3, 4):
            assert count_mono_cliques(c, n) == brute_force_mono(c, n)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_property_count_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(4, 10))
    n = int(rng.integers(3, 5))
    c = Coloring.random(k, rng)
    assert count_mono_cliques(c, n) == brute_force_mono(c, n)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_property_flip_delta_consistent(seed):
    """with-edge counting predicts the exact energy change of a flip."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(5, 10))
    n = int(rng.integers(3, 5))
    c = Coloring.random(k, rng)
    u = int(rng.integers(k - 1))
    v = int(rng.integers(u + 1, k))
    before_total = count_mono_cliques(c, n)
    before_edge = count_mono_cliques_with_edge(c, u, v, n)
    c.flip(u, v)
    after_total = count_mono_cliques(c, n)
    after_edge = count_mono_cliques_with_edge(c, u, v, n)
    assert after_total - before_total == after_edge - before_edge


def test_with_edge_counts_triangles():
    # Triangle 0-1-2 all red; edge (0,1) participates in exactly one.
    c = Coloring.from_edges(5, [(0, 1), (1, 2), (0, 2)])
    assert count_mono_cliques_with_edge(c, 0, 1, 3) == 1
    # Blue edge (3,4): blue common neighborhood of {3,4} is {0,1,2}
    # minus red adjacencies — all of 0,1,2 are blue-adjacent to 3 and 4.
    assert count_mono_cliques_with_edge(c, 3, 4, 3) == 3


def test_hex_roundtrip():
    rng = np.random.default_rng(7)
    for k in (2, 5, 9, 17):
        c = Coloring.random(k, rng)
        assert Coloring.from_hex(k, c.to_hex()) == c


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_hex_roundtrip(seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 20))
    c = Coloring.random(k, rng)
    assert Coloring.from_hex(k, c.to_hex()) == c


def test_copy_is_independent():
    rng = np.random.default_rng(1)
    a = Coloring.random(6, rng)
    b = a.copy()
    b.flip(0, 1)
    assert a != b


def test_edges_iterator_complete():
    rng = np.random.default_rng(2)
    c = Coloring.random(6, rng)
    edges = list(c.edges())
    assert len(edges) == comb(6, 2)
    for u, v, color in edges:
        assert color == c.color(u, v)


def test_op_counter_counts_and_resets():
    ops = OpCounter()
    rng = np.random.default_rng(3)
    c = Coloring.random(10, rng)
    count_mono_cliques(c, 4, ops)
    assert ops.ops > 0
    first = ops.reset()
    assert first > 0
    assert ops.ops == 0


def test_op_count_scales_with_problem_size():
    """Bigger k must cost more metered ops (sanity of the meter)."""
    rng = np.random.default_rng(4)
    costs = []
    for k in (8, 16, 24):
        ops = OpCounter()
        c = Coloring.random(k, np.random.default_rng(0))
        count_mono_cliques(c, 4, ops)
        costs.append(ops.ops)
    assert costs[0] < costs[1] < costs[2]
