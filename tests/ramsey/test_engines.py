"""Unit tests for the client compute engines and the RAMSEY_BEST
comparator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip.state import StateRecord
from repro.ramsey.client import ModelEngine, RealEngine, ramsey_comparator
from repro.ramsey.tasks import make_unit


def rec(k=43, energy=10.0, ops=0.0, stamp=0.0, origin="a/1", seq=1):
    return StateRecord(
        mtype="RAMSEY_BEST",
        data={"k": k, "n": 5, "energy": energy, "ops": ops},
        stamp=stamp, origin=origin, seq=seq)


# ---------------------------------------------------------------- comparator


def test_comparator_lower_energy_wins_regardless_of_recency():
    good_old = rec(energy=1.0, stamp=0.0)
    bad_new = rec(energy=50.0, stamp=1e9)
    assert ramsey_comparator(good_old, bad_new) > 0


def test_comparator_bigger_problem_dominates():
    small_solved = rec(k=10, energy=0.0)
    big_unsolved = rec(k=43, energy=100.0)
    assert ramsey_comparator(big_unsolved, small_solved) > 0


def test_comparator_ops_breaks_energy_ties():
    a = rec(energy=5.0, ops=1e9)
    b = rec(energy=5.0, ops=1e6)
    assert ramsey_comparator(a, b) > 0


def test_comparator_total_order_on_missing_fields():
    incomplete = StateRecord("RAMSEY_BEST", {}, 0.0, "x/1", 1)
    complete = rec()
    # Must not raise, and must be antisymmetric.
    assert ramsey_comparator(incomplete, complete) == -ramsey_comparator(
        complete, incomplete)


@given(
    e1=st.floats(min_value=0, max_value=1e4),
    e2=st.floats(min_value=0, max_value=1e4),
)
def test_comparator_antisymmetry_property(e1, e2):
    a, b = rec(energy=e1), rec(energy=e2)
    assert ramsey_comparator(a, b) == -ramsey_comparator(b, a)


# ---------------------------------------------------------------- ModelEngine


def make_model(**kw):
    engine = ModelEngine(**kw)
    unit = make_unit("u", 43, 5, ops_budget=1e10)
    engine.load(unit, np.random.default_rng(0))
    return engine


def test_model_engine_energy_decays_toward_floor():
    engine = make_model(energy0=1000.0, floor=3.0, decay_ops=1e8)
    e_start = engine.energy
    statuses = [engine.advance(1e8) for _ in range(30)]
    assert statuses[-1].energy < e_start
    assert statuses[-1].energy >= 3.0 * 0.9  # never meaningfully below floor
    # Monotone best-energy bookkeeping.
    bests = [s.best_energy for s in statuses]
    assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(bests, bests[1:]))


def test_model_engine_never_finds_at_positive_floor():
    engine = make_model(floor=3.0, decay_ops=1e6)
    for _ in range(50):
        status = engine.advance(1e9)
        assert status.found is None


def test_model_engine_done_at_budget():
    engine = ModelEngine()
    unit = make_unit("u", 43, 5, ops_budget=5e6)
    engine.load(unit, np.random.default_rng(0))
    assert not engine.advance(4e6).done
    assert engine.advance(2e6).done


def test_model_engine_resume_carries_ops():
    engine = ModelEngine(decay_ops=1e8)
    unit = make_unit("u", 43, 5, ops_budget=1e12)
    unit["resume"] = {"ops": 5e8}
    engine.load(unit, np.random.default_rng(0))
    assert engine.total_ops == 5e8
    # Resumed engines start further down the decay curve.
    fresh = make_model(decay_ops=1e8)
    assert engine.energy < fresh.energy


def test_model_engine_progress_serializable():
    import json

    engine = make_model()
    engine.advance(1e7)
    json.dumps(engine.progress())  # must be JSON-safe for the wire


def test_model_engine_ops_accounting_matches_budget_given():
    engine = make_model()
    status = engine.advance(123456.0)
    assert status.ops_done == 123456.0
    assert engine.advance(-5).ops_done == 0.0  # negative budgets clamp


# ---------------------------------------------------------------- RealEngine


def test_real_engine_runs_and_meters():
    engine = RealEngine(max_steps_per_advance=50)
    unit = make_unit("u", 8, 3, ops_budget=1e12)
    engine.load(unit, np.random.default_rng(1))
    status = engine.advance(1e6)
    assert status.ops_done > 0
    assert status.energy >= 0


def test_real_engine_reports_found_exactly_once():
    engine = RealEngine(max_steps_per_advance=5000)
    unit = make_unit("u", 5, 3, ops_budget=1e12)
    engine.load(unit, np.random.default_rng(2))
    found_reports = 0
    for _ in range(20):
        status = engine.advance(1e6)
        if status.found is not None:
            found_reports += 1
        if status.done:
            break
    assert found_reports == 1


def test_real_engine_done_when_found():
    engine = RealEngine(max_steps_per_advance=5000)
    unit = make_unit("u", 5, 3, ops_budget=1e18)
    engine.load(unit, np.random.default_rng(3))
    for _ in range(50):
        status = engine.advance(1e7)
        if status.done:
            break
    assert status.done
    assert status.best_energy == 0


def test_real_engine_respects_ops_budget_cutoff():
    engine = RealEngine(max_steps_per_advance=100000)
    unit = make_unit("u", 6, 3, ops_budget=1e4)  # tiny budget, unsolvable
    engine.load(unit, np.random.default_rng(4))
    status = engine.advance(1e5)
    assert status.done  # budget exhausted counts as done
    assert not status.found


def test_real_engine_resume_snapshot():
    engine = RealEngine(max_steps_per_advance=100)
    unit = make_unit("u", 8, 3, ops_budget=1e12)
    engine.load(unit, np.random.default_rng(5))
    engine.advance(1e6)
    snap = engine.progress()

    resumed = RealEngine(max_steps_per_advance=100)
    unit2 = dict(unit)
    unit2["resume"] = snap
    resumed.load(unit2, np.random.default_rng(99))
    assert resumed.search.best_energy <= snap["best_energy"]


def test_real_engine_rejects_invalid_unit():
    engine = RealEngine()
    with pytest.raises(ValueError):
        engine.load({"id": "x"}, np.random.default_rng(0))


def test_real_engine_apply_params_reheats_annealer():
    engine = RealEngine(max_steps_per_advance=200)
    unit = make_unit("u", 6, 3, heuristic="anneal", ops_budget=1e12)
    engine.load(unit, np.random.default_rng(6))
    engine.advance(1e6)
    engine.search.temperature = engine.search.t_min  # fully cooled
    assert engine.apply_params({"reheat": True})
    assert engine.search.temperature == engine.search.t_start


def test_real_engine_apply_params_noop_for_tabu():
    engine = RealEngine(max_steps_per_advance=50)
    engine.load(make_unit("u", 6, 3, heuristic="tabu", ops_budget=1e12),
                np.random.default_rng(7))
    assert not engine.apply_params({"reheat": True})
    assert not engine.apply_params({"unknown": 1})
