"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simgrid.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5
    assert env.now == 5


def test_zero_delay_timeout_runs_same_time():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_fifo_order_at_same_time():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_propagates():
    env = Environment()

    def inner(env):
        yield env.timeout(3)
        return 42

    def outer(env):
        value = yield env.process(inner(env))
        return value + 1

    p = env.process(outer(env))
    env.run()
    assert p.value == 43
    assert env.now == 3


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def inner(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def outer(env):
        try:
            yield env.process(inner(env))
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(outer(env))
    env.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_raises_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            return ("interrupted", i.cause, env.now)

    def attacker(env, target):
        yield env.timeout(7)
        target.interrupt("reclaimed")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == ("interrupted", "reclaimed", 7)


def test_interrupt_terminated_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_keep_waiting():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(10)
        except Interrupt:
            pass
        yield env.timeout(10)
        return env.now

    def attacker(env, target):
        yield env.timeout(4)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == 14


def test_any_of_first_wins():
    env = Environment()

    def proc(env):
        fast = env.timeout(1, value="fast")
        slow = env.timeout(5, value="slow")
        result = yield AnyOf(env, [fast, slow])
        return (list(result.values()), env.now)

    p = env.process(proc(env))
    env.run()
    assert p.value == (["fast"], 1)


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        a = env.timeout(2, value="a")
        b = env.timeout(5, value="b")
        result = yield AllOf(env, [a, b])
        return (sorted(result.values()), env.now)

    p = env.process(proc(env))
    env.run()
    assert p.value == (["a", "b"], 5)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(10)

    env.process(ticker(env))
    env.run(until=35)
    assert env.now == 35


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "done"

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == "done"
    assert env.now == 3


def test_run_until_past_time_is_error():
    env = Environment(initial_time=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_event_succeed_only_once():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_is_error():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()
    assert not p.ok


def test_process_cannot_interrupt_itself():
    env = Environment()

    def selfharm(env, box):
        box.append(env.active_process)
        with pytest.raises(SimulationError):
            box[0].interrupt()
        yield env.timeout(0)

    box = []
    env.process(selfharm(env, box))
    env.run()


def test_waiting_on_already_processed_event():
    env = Environment()

    def proc(env):
        t = env.timeout(1, value="x")
        yield env.timeout(5)
        # t processed long ago; yielding it must resume immediately.
        v = yield t
        return (v, env.now)

    p = env.process(proc(env))
    env.run()
    assert p.value == ("x", 5)


def test_initial_time():
    env = Environment(initial_time=1000.0)
    assert env.now == 1000.0

    def proc(env):
        yield env.timeout(5)

    env.process(proc(env))
    env.run()
    assert env.now == 1005.0


def test_peek_and_step():
    env = Environment()
    env.timeout(4)
    assert env.peek() == 4
    env.step()
    assert env.now == 4
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_deterministic_replay():
    """Two identical simulations produce identical event traces."""

    def build(env, trace):
        def worker(env, name, delays):
            for d in delays:
                yield env.timeout(d)
                trace.append((env.now, name))

        env.process(worker(env, "w1", [1, 2, 3]))
        env.process(worker(env, "w2", [2, 2, 2]))
        env.process(worker(env, "w3", [3, 1, 2]))

    t1, t2 = [], []
    for trace in (t1, t2):
        env = Environment()
        build(env, trace)
        env.run()
    assert t1 == t2


def test_process_is_alive():
    env = Environment()

    def proc(env):
        yield env.timeout(10)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive
