"""Determinism guarantees of the DES engine.

The reproduction's headline claim — same seed, same Fig. 2 curve — rests
on the engine resolving every scheduling ambiguity the same way on every
run: simultaneous timeouts fire in creation order, interrupts preempt
normal events at the same timestamp, and resuming on an already-processed
event continues immediately. These tests pin those rules down so the
hot-path work in the engine cannot silently reorder anything.
"""

import hashlib

import pytest

from repro.experiments.sc98 import SC98Config, build_sc98
from repro.simgrid.engine import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
)


def _run_mini_sc98():
    cfg = SC98Config(scale=0.02, seed=1998, duration=1800.0)
    world = build_sc98(cfg)
    res = world.run()
    digest = hashlib.sha256()
    digest.update(res.series.times.tobytes())
    digest.update(res.series.total_rate.tobytes())
    for k in sorted(res.series.rate_by_infra):
        digest.update(res.series.rate_by_infra[k].tobytes())
    for k in sorted(res.series.hosts_by_infra):
        digest.update(res.series.hosts_by_infra[k].tobytes())
    return digest.hexdigest(), world.env.now, world.env._seq


def test_same_seed_sc98_run_is_bit_identical():
    first = _run_mini_sc98()
    second = _run_mini_sc98()
    assert first == second


def test_simultaneous_timeouts_fire_in_creation_order():
    env = Environment()
    order = []

    def waiter(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    # All four deadlines coincide at t=6; creation order must win.
    env.process(waiter(env, "a", 6.0))
    env.process(waiter(env, "b", 6.0))
    env.process(waiter(env, "c", 6.0))
    env.process(waiter(env, "d", 6.0))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_staggered_creation_same_deadline_is_fifo():
    env = Environment()
    order = []

    def spawn_later(env):
        # Created later but waiting on the same absolute deadline (t=10).
        yield env.timeout(4.0)
        yield env.timeout(6.0)
        order.append("late")

    def early(env):
        yield env.timeout(10.0)
        order.append("early")

    env.process(early(env))
    env.process(spawn_later(env))
    env.run()
    # The t=10 timeout scheduled at t=0 precedes the one scheduled at t=4.
    assert order == ["early", "late"]


def test_interrupt_preempts_same_time_timeout():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(5.0)
            log.append("timeout")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))

    def interrupter(env):
        yield env.timeout(5.0)
        victim.interrupt(cause="now")

    # Created first, so the interrupter wakes before the victim's timeout
    # fires at the shared t=5 deadline.
    env.process(interrupter(env))
    victim = env.process(sleeper(env))
    env.run()
    # Both the victim's timeout and the interrupt land at t=5; the urgent
    # interrupt must be delivered, not the timeout.
    assert log == [("interrupted", "now")]
    assert env.now == 5.0


def test_yielding_processed_event_resumes_immediately():
    env = Environment()
    seen = []

    def producer(env):
        yield env.timeout(1.0)

    def consumer(env, ev):
        yield env.timeout(3.0)  # ev is long processed by now
        value = yield ev
        seen.append((env.now, value))

    ev = env.event()

    def trigger(env):
        yield env.timeout(1.0)
        ev.succeed("ready")

    env.process(producer(env))
    env.process(trigger(env))
    env.process(consumer(env, ev))
    env.run()
    # No extra delay: the consumer resumes at t=3 with the stored value.
    assert seen == [(3.0, "ready")]


def test_empty_allof_succeeds_immediately():
    env = Environment()
    results = []

    def proc(env):
        value = yield AllOf(env, [])
        results.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert results == [(0, {})]


def test_empty_anyof_succeeds_immediately():
    env = Environment()
    results = []

    def proc(env):
        value = yield AnyOf(env, [])
        results.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert results == [(0, {})]


def test_condition_with_already_processed_constituents():
    env = Environment()
    results = []

    def stage_one(env):
        yield env.timeout(1.0)

    def late_waiter(env, t1, t2):
        yield env.timeout(5.0)
        value = yield AllOf(env, [t1, t2])
        results.append((env.now, value))

    t1 = env.timeout(1.0, value="one")
    t2 = env.timeout(2.0, value="two")
    env.process(stage_one(env))
    env.process(late_waiter(env, t1, t2))
    env.run()
    assert results == [(5.0, {t1: "one", t2: "two"})]


def test_run_until_processed_event_returns_its_value():
    env = Environment()
    t = env.timeout(1.0, value=42)
    env.run(until=5.0)
    assert t.processed
    assert env.run(until=t) == 42


def test_interrupt_terminated_process_raises():
    from repro.simgrid.engine import SimulationError

    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()
