"""Unit tests for Store, Gate and get_with_timeout."""

import pytest

from repro.simgrid.engine import Environment, SimulationError
from repro.simgrid.resources import Gate, Store, get_with_timeout


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put("hello")

    def consumer(env):
        item = yield store.get()
        return item

    env.process(producer(env))
    c = env.process(consumer(env))
    env.run()
    assert c.value == "hello"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (item, env.now)

    def producer(env):
        yield env.timeout(9)
        yield store.put("late")

    c = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert c.value == ("late", 9)


def test_store_fifo_item_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(5):
            yield store.put(i)

    def consumer(env):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(env.now)
        yield store.put("b")  # blocks until a consumed
        times.append(env.now)

    def consumer(env):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [0, 5]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None

    def producer(env):
        yield store.put(1)

    env.process(producer(env))
    env.run()
    assert store.try_get() == 1
    assert store.try_get() is None


def test_get_with_timeout_receives_in_time():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield env.timeout(2)
        yield store.put("msg")

    def consumer(env):
        item = yield from get_with_timeout(env, store, 5)
        return (item, env.now)

    env.process(producer(env))
    c = env.process(consumer(env))
    env.run()
    assert c.value == ("msg", 2)


def test_get_with_timeout_expires():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield from get_with_timeout(env, store, 5)
        return (item, env.now)

    c = env.process(consumer(env))
    env.run()
    assert c.value == (None, 5)
    # The cancelled getter must not steal a later item.
    assert len(store._getters) == 0


def test_get_with_timeout_cancelled_getter_does_not_consume():
    env = Environment()
    store = Store(env)

    def impatient(env):
        item = yield from get_with_timeout(env, store, 1)
        return item

    def patient(env):
        item = yield from get_with_timeout(env, store, 100)
        return item

    def producer(env):
        yield env.timeout(10)
        yield store.put("only")

    a = env.process(impatient(env))
    b = env.process(patient(env))
    env.process(producer(env))
    env.run()
    assert a.value is None
    assert b.value == "only"


def test_get_with_timeout_none_blocks_forever_until_item():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield env.timeout(50)
        yield store.put("eventually")

    def consumer(env):
        item = yield from get_with_timeout(env, store, None)
        return (item, env.now)

    env.process(producer(env))
    c = env.process(consumer(env))
    env.run()
    assert c.value == ("eventually", 50)


def test_gate_broadcast():
    env = Environment()
    gate = Gate(env)
    woken = []

    def waiter(env, name):
        value = yield gate.wait()
        woken.append((name, value, env.now))

    def firer(env):
        yield env.timeout(3)
        n = gate.fire("go")
        assert n == 2

    env.process(waiter(env, "a"))
    env.process(waiter(env, "b"))
    env.process(firer(env))
    env.run()
    assert woken == [("a", "go", 3), ("b", "go", 3)]


def test_gate_fire_with_no_waiters():
    env = Environment()
    gate = Gate(env)
    assert gate.fire() == 0
