"""Edge-case and failure-propagation tests for the simulation engine."""

import pytest

from repro.simgrid.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    PRIORITY_URGENT,
    SimulationError,
)


def test_failed_event_propagates_into_anyof():
    env = Environment()

    def proc(env):
        ev = env.event()

        def fail_later(env, ev):
            yield env.timeout(1)
            ev.fail(ValueError("boom"))

        env.process(fail_later(env, ev))
        try:
            yield AnyOf(env, [ev, env.timeout(100)])
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(proc(env))
    env.run()
    assert p.value == "caught boom"


def test_failed_event_propagates_into_allof():
    env = Environment()

    def proc(env):
        ok = env.timeout(1)
        bad = env.event()

        def fail_later(env, ev):
            yield env.timeout(2)
            ev.fail(RuntimeError("nope"))

        env.process(fail_later(env, bad))
        try:
            yield AllOf(env, [ok, bad])
        except RuntimeError:
            return "failed as expected"

    p = env.process(proc(env))
    env.run()
    assert p.value == "failed as expected"


def test_unwaited_failed_event_raises_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(KeyError("unobserved"))
    with pytest.raises(KeyError):
        env.run()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_urgent_priority_processed_first():
    env = Environment()
    order = []

    normal = env.event()
    urgent = env.event()
    normal.callbacks.append(lambda e: order.append("normal"))
    urgent.callbacks.append(lambda e: order.append("urgent"))
    normal.succeed()
    urgent.succeed(priority=PRIORITY_URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_event_trigger_chaining():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed("payload")
    env.run()
    dst.trigger(src)
    assert dst.triggered
    env.run()
    assert dst.value == "payload"


def test_anyof_empty_event_list_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield AnyOf(env, [])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_allof_empty_event_list_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_condition_with_already_processed_events():
    env = Environment()
    t = env.timeout(1, value="early")

    def proc(env):
        yield env.timeout(5)
        result = yield AllOf(env, [t])
        return list(result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["early"]


def test_nested_process_chains():
    env = Environment()

    def leaf(env, n):
        yield env.timeout(n)
        return n

    def mid(env):
        a = yield env.process(leaf(env, 2))
        b = yield env.process(leaf(env, 3))
        return a + b

    def top(env):
        total = yield env.process(mid(env))
        return total * 10

    p = env.process(top(env))
    env.run()
    assert p.value == 50
    assert env.now == 5


def test_interrupt_during_condition_wait():
    env = Environment()

    def victim(env):
        try:
            yield AllOf(env, [env.timeout(100), env.timeout(200)])
        except BaseException as exc:
            return type(exc).__name__

    def attacker(env, target):
        yield env.timeout(5)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run(until=300)
    assert v.value == "Interrupt"


def test_run_until_triggered_event_already_processed():
    env = Environment()
    t = env.timeout(1, value="x")
    env.run(until=10)
    assert env.run(until=t) == "x"


def test_many_simultaneous_events_deterministic():
    env = Environment()
    order = []
    for i in range(100):
        ev = env.timeout(5, value=i)
        ev.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == list(range(100))
