"""Engine profiler: the sampling run() twin must count events without
changing what the simulation computes, and the report/render surfaces
must be well-formed. Wall-clock values are asserted only as sane (>= 0),
never exact — they are intentionally not deterministic.
"""

from repro.core.component import Component, Send
from repro.core.linguafranca.messages import Message
from repro.core.simdriver import SimDriver
from repro.core.telemetry import Telemetry
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.profile import EngineProfiler
from repro.simgrid.rand import RngStreams


class Ping(Component):
    def __init__(self, dst, n):
        super().__init__("ping")
        self.dst = dst
        self.left = n
        self.pongs = 0

    def on_start(self, now):
        return [Send(self.dst, Message(mtype="PING", sender=self.contact,
                                       body={}))]

    def on_message(self, message, now):
        self.pongs += 1
        self.left -= 1
        if self.left <= 0:
            return []
        return [Send(self.dst, Message(mtype="PING", sender=self.contact,
                                       body={}))]


class Pong(Component):
    def on_message(self, message, now):
        return [Send(message.sender, message.reply("PONG",
                                                   sender=self.contact))]


def _run(profiler, n=20):
    env = Environment()
    env.profiler = profiler
    streams = RngStreams(seed=11)
    net = Network(env, streams, jitter=0.0)
    hosts = [Host(env, HostSpec(name=f"h{i}"), streams) for i in range(2)]
    for h in hosts:
        net.add_host(h)
    tel = Telemetry()
    ping = Ping("h1/pong", n)
    SimDriver(env, net, hosts[1], "pong", Pong("pong"), streams,
              telemetry=tel).start()
    SimDriver(env, net, hosts[0], "ping", ping, streams, telemetry=tel).start()
    env.run(until=600)
    return env, ping


def test_record_handler_accumulates():
    p = EngineProfiler()
    p.record_handler("sched0", "SCH_REPORT", 0.002)
    p.record_handler("sched0", "SCH_REPORT", 0.004)
    p.record_handler("cli0", "SCH_WORK", 0.001)
    assert p.handlers[("sched0", "SCH_REPORT")] == [2, 0.006, 0.004]
    report = p.report()
    cell = report["handlers"]["sched0:SCH_REPORT"]
    assert cell["calls"] == 2
    assert cell["max_us"] == 4000.0


def test_profiled_run_counts_events_and_preserves_outcome():
    baseline_env, baseline_ping = _run(profiler=None)
    profiler = EngineProfiler()
    env, ping = _run(profiler=profiler)
    # Same simulated outcome: the profiler twin observes, never perturbs.
    assert ping.pongs == baseline_ping.pongs == 20
    assert env.now == baseline_env.now
    # The loop counted real work.
    assert profiler.events > 0
    assert sum(profiler.events_by_type.values()) == profiler.events
    assert profiler.run_wall_time >= profiler.callback_time >= 0.0
    # Drivers fed handler latencies for both components.
    components = {comp for comp, _ in profiler.handlers}
    assert components == {"ping", "pong"}
    assert profiler.handlers[("ping", "PONG")][0] == 20


def test_report_and_render_are_well_formed():
    profiler = EngineProfiler()
    _run(profiler=profiler)
    report = profiler.report()
    assert report["events"] == profiler.events
    assert report["events_per_second"] >= 0.0
    assert list(report["events_by_type"]) == sorted(report["events_by_type"])
    text = profiler.render()
    assert "events processed" in text
    assert "slowest handlers" in text
    assert "pong" in text


def test_profiler_detached_by_default():
    env = Environment()
    assert env.profiler is None


def test_accumulates_across_runs():
    profiler = EngineProfiler()
    _run(profiler=profiler, n=5)
    first = profiler.events
    _run(profiler=profiler, n=5)
    assert profiler.events > first
