"""Conservative parallel DES: windowing, partitions, and parity.

The windowed runner's whole claim is that synchronization windows change
wall-clock behavior and nothing else: event order, RNG draws, world
metrics, and search outcomes must be byte-identical to a plain serial
run. These tests check the mechanism (run_windowed vs run), the
partition planning (sites + lookahead), and the end-to-end contract on
the SC98 world across seeds and worker counts.
"""

import json

import pytest

from repro.experiments.export import headlines_json
from repro.experiments.sc98 import SC98Config, SC98World
from repro.simgrid.engine import Environment, SimulationError
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.pdes import MIN_WINDOW, WindowedRunner, plan_partitions
from repro.simgrid.rand import RngStreams


# -- run_windowed is order-identical to run ----------------------------------


def _ticker_series(windowed: bool, window: float = 0.7) -> list[tuple]:
    env = Environment()
    seen: list[tuple] = []

    def ticker(env, name, period):
        for _ in range(40):
            yield env.timeout(period)
            seen.append((name, env.now))

    for i in range(5):
        env.process(ticker(env, f"t{i}", 0.9 + 0.13 * i))
    if windowed:
        env.run_windowed(30.0, window)
    else:
        env.run(until=30.0)
    assert env.now == 30.0
    return seen


def test_run_windowed_is_byte_identical_to_run():
    plain = _ticker_series(windowed=False)
    assert plain  # the workload actually produced events
    for window in (0.05, 0.7, 1.0, 29.0, 100.0):
        assert _ticker_series(windowed=True, window=window) == plain


def test_run_windowed_events_at_edges_keep_order():
    # Events landing exactly on a window edge must be processed at the
    # start of the next window in FIFO order — the deadline sentinel
    # sorts before them, never between them.
    def series(windowed: bool) -> list[str]:
        env = Environment()
        out: list[str] = []
        for name in ("a", "b", "c"):
            t = env.timeout(1.0)  # exactly on the edge for window=0.5
            t.callbacks.append(lambda _ev, n=name: out.append(n))
        if windowed:
            env.run_windowed(2.0, 0.5)
        else:
            env.run(until=2.0)
        return out

    assert series(True) == series(False) == ["a", "b", "c"]


def test_run_windowed_invokes_barrier_per_window():
    env = Environment()
    edges: list[float] = []
    env.run_windowed(1.0, 0.25, barrier=edges.append)
    assert edges == pytest.approx([0.25, 0.5, 0.75, 1.0])


def test_run_windowed_rejects_bad_arguments():
    env = Environment()
    env.run_windowed(1.0, 0.5)
    with pytest.raises(SimulationError):
        env.run_windowed(0.5, 0.5)  # until in the past
    with pytest.raises(SimulationError):
        env.run_windowed(2.0, 0.0)  # non-positive window


# -- partition planning -------------------------------------------------------


def _net_with_sites() -> Network:
    env = Environment()
    streams = RngStreams(seed=1)
    net = Network(env, streams, base_latency=0.05)
    for name, site in (("h0", "east"), ("h1", "east"),
                       ("h2", "west"), ("h3", "south")):
        net.add_host(Host(env, HostSpec(name=name, site=site, speed=1e6,
                                        load_model=ConstantLoad(1.0)),
                          streams))
    return net


def test_site_partitions_group_hosts_by_site():
    net = _net_with_sites()
    assert net.site_partitions() == {
        "east": ["h0", "h1"], "west": ["h2"], "south": ["h3"]}


def test_lookahead_is_min_cross_site_latency():
    net = _net_with_sites()
    assert net.min_cross_site_latency() == pytest.approx(0.05)
    net.set_site_latency("east", "west", 0.02)
    net.set_site_latency("east", "east", 0.001)  # intra-site: ignored
    assert net.min_cross_site_latency() == pytest.approx(0.02)
    plan = plan_partitions(net)
    assert plan.lookahead == pytest.approx(0.02)
    assert plan.n_partitions == 3
    assert plan.n_hosts == 4


def test_window_override_can_only_shrink_lookahead():
    net = _net_with_sites()
    assert plan_partitions(net, window=0.01).lookahead == pytest.approx(0.01)
    # A larger window would void the conservative guarantee: clamped.
    assert plan_partitions(net, window=10.0).lookahead == pytest.approx(0.05)
    assert plan_partitions(net, window=0.0).lookahead == MIN_WINDOW


# -- end-to-end parity on the SC98 world -------------------------------------


def _cfg(seed: int, pool: int, parallel_des: bool) -> SC98Config:
    return SC98Config(scale=0.08, duration=600.0, seed=seed, k=18, n=4,
                      engine="real", compute_pool=pool,
                      max_steps_per_advance=200,
                      parallel_des=parallel_des)


def _run(seed: int, pool: int, parallel_des: bool) -> tuple[str, str]:
    world = SC98World(_cfg(seed, pool, parallel_des))
    results = world.run()
    metrics = json.dumps(world.telemetry.metrics.snapshot(), sort_keys=True)
    if parallel_des:
        assert world.pdes_stats is not None
        assert world.pdes_stats["windows"] > 0
        assert world.pdes_stats["n_partitions"] >= 2
    return headlines_json(results), metrics


@pytest.mark.parametrize("seed", [4, 11])
@pytest.mark.parametrize("pool", [0, 2])
def test_parallel_des_byte_identical_to_serial(seed, pool):
    # The acceptance matrix: two seeds x two worker counts, windowed
    # parallel vs plain serial — headline results AND the per-mtype
    # message counters (a wire-traffic fingerprint) must match exactly.
    serial = _run(seed, pool=0, parallel_des=False)
    windowed = _run(seed, pool=pool, parallel_des=True)
    assert windowed == serial


def test_windowed_runner_reports_stats():
    net = _net_with_sites()
    runner = WindowedRunner(net.env, net)
    stats = runner.run(until=0.5)
    assert stats["windows"] == runner.windows > 0
    assert stats["lookahead"] == pytest.approx(0.05)
    assert stats["workers"] == 0
    assert stats["barriers"] == 0  # no lane attached
