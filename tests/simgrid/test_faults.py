"""Tests for the fault-injection subsystem (FaultPlan and injectors)."""

import pytest

from repro.core.linguafranca.endpoint import SimEndpoint
from repro.core.linguafranca.messages import Message
from repro.core.simdriver import SimDriver
from repro.experiments.scenario import build_core, model_client_factory
from repro.infra.unixpool import UnixPool
from repro.simgrid.engine import Environment
from repro.simgrid.faults import FaultPlan, HostCrash, MessageChaos, SitePartition
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams


def build_world(n_hosts=2, sites=("east", "west")):
    env = Environment()
    streams = RngStreams(seed=11)
    net = Network(env, streams, jitter=0.0)
    hosts = []
    for i in range(n_hosts):
        h = Host(env, HostSpec(name=f"h{i}", site=sites[i % len(sites)]), streams)
        net.add_host(h)
        h.start()
        hosts.append(h)
    return env, streams, net, hosts


# -- plan construction ------------------------------------------------------

def test_plan_chainable_and_last_heal_time():
    plan = (FaultPlan()
            .crash(100.0, "a", reboot_after=50.0)
            .partition(200.0, [["east"], ["west"]], heal_after=100.0)
            .outage(400.0, "unix", restore_after=25.0)
            .chaos(10.0, 20.0, drop=0.1))
    assert len(plan.injectors) == 4
    # partition heals at 300, crash reboots at 150, outage restores at
    # 425, chaos closes at 30 -> the last disturbance ends at 425.
    assert plan.last_heal_time() == 425.0
    assert FaultPlan().last_heal_time() is None
    # Permanent faults contribute no end time.
    assert FaultPlan().crash(5.0, "a").last_heal_time() is None


def test_plan_installs_once():
    env, streams, net, hosts = build_world()
    plan = FaultPlan().crash(1.0, "h0")
    plan.install(env, net)
    with pytest.raises(RuntimeError):
        plan.install(env, net)


# -- host crash -------------------------------------------------------------

def test_crash_and_reboot():
    env, streams, net, hosts = build_world()
    plan = FaultPlan().crash(10.0, "h0", reboot_after=5.0)
    plan.install(env, net)
    env.run(until=12.0)
    assert not hosts[0].up
    env.run(until=20.0)
    assert hosts[0].up
    assert plan.stats.crashes == 1 and plan.stats.reboots == 1
    assert [event for _, event in plan.log] == ["crash h0", "reboot h0"]


def test_crash_unknown_host_is_skipped():
    env, streams, net, hosts = build_world()
    plan = FaultPlan().crash(1.0, "ghost")
    plan.install(env, net)
    env.run(until=5.0)
    assert plan.stats.crashes == 0 and plan.stats.skipped == 1


# -- partition --------------------------------------------------------------

def test_partition_blocks_cross_site_traffic_until_heal():
    env, streams, net, hosts = build_world()
    sender = SimEndpoint(env, net, Address("h0", "a"))
    SimEndpoint(env, net, Address("h1", "b"))
    plan = FaultPlan().partition(10.0, [["east"], ["west"]], heal_after=10.0)
    plan.install(env, net)

    def talk(env):
        yield env.timeout(15.0)  # inside the partition
        sender.send("h1/b", Message(mtype="X", sender="h0/a"))
        yield env.timeout(10.0)  # after the heal
        sender.send("h1/b", Message(mtype="X", sender="h0/a"))

    env.process(talk(env))
    env.run(until=40.0)
    assert net.stats.dropped_partition == 1
    assert net.stats.delivered == 1
    assert plan.stats.partitions == 1 and plan.stats.heals == 1


# -- message chaos ----------------------------------------------------------

class FakeRng:
    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


def test_chaos_fates_drop_duplicate_delay():
    # Certain drop: the first draw decides.
    assert MessageChaos(0, 1, drop=1.0).fates(FakeRng([0.5])) == []
    # Certain duplicate: original plus a delayed copy.
    fates = MessageChaos(0, 1, duplicate=1.0, delay_max=5.0).fates(
        FakeRng([0.9, 0.4]))
    assert fates == [0.0, pytest.approx(2.0)]
    # Certain delay: one copy, late.
    fates = MessageChaos(0, 1, delay=1.0, delay_max=10.0).fates(
        FakeRng([0.9, 0.25]))
    assert fates == [pytest.approx(2.5)]
    # No chaos configured: one on-time copy, no draws consumed.
    assert MessageChaos(0, 1).fates(FakeRng([])) == [0.0]


def test_chaos_window_attaches_and_detaches():
    env, streams, net, hosts = build_world()
    sender = SimEndpoint(env, net, Address("h0", "a"))
    SimEndpoint(env, net, Address("h1", "b"))
    plan = FaultPlan().chaos(10.0, 10.0, drop=1.0)
    plan.install(env, net)

    times = [5.0, 15.0, 25.0]  # before, during, after

    def talk(env):
        last = 0.0
        for t in times:
            yield env.timeout(t - last)
            sender.send("h1/b", Message(mtype="X", sender="h0/a"))
            last = t

    env.process(talk(env))
    env.run(until=12.0)
    assert net.chaos is plan.injectors[0]
    env.run(until=40.0)
    assert net.chaos is None
    assert net.stats.dropped_fault == 1
    assert net.stats.delivered == 2


def test_chaos_duplicates_deliver_twice():
    env, streams, net, hosts = build_world()
    sender = SimEndpoint(env, net, Address("h0", "a"))
    inbox = SimEndpoint(env, net, Address("h1", "b"))
    plan = FaultPlan().chaos(0.0, 100.0, duplicate=1.0, delay_max=2.0)
    plan.install(env, net)

    def talk(env):
        yield env.timeout(5.0)
        sender.send("h1/b", Message(mtype="X", sender="h0/a"))

    got = []

    def listen(env):
        while True:
            m = yield from inbox.recv(timeout=20.0)
            if m is None:
                return
            got.append(m.mtype)

    env.process(talk(env))
    env.process(listen(env))
    env.run(until=50.0)
    assert net.stats.duplicated_fault == 1
    assert net.stats.delivered == 2
    assert got == ["X", "X"]


# -- infra outage + adapter integration ------------------------------------

def build_grid_world(**core_kw):
    env = Environment()
    streams = RngStreams(seed=23)
    net = Network(env, streams, jitter=0.0)
    core = build_core(
        env, net, streams,
        n_schedulers=1, n_gossips=3, n_loggers=1, n_persistents=1,
        ks=[8], n=4, unit_ops_budget=1e5,
        report_period=60.0, gossip_poll_period=60.0, gossip_sync_period=45.0,
        **core_kw,
    )
    return env, streams, net, core


def test_infra_outage_darkens_and_restores_pool():
    env, streams, net, core = build_grid_world()
    factory = model_client_factory(core, work_period=20.0, report_period=60.0)
    pool = UnixPool(env, net, streams, factory, site="paci",
                    n_workstations=3, n_mpp_nodes=0, with_tera_mta=False,
                    mtbf=1e9, restart_delay=5.0)
    pool.deploy()
    net.start()
    plan = FaultPlan().outage(50.0, "unix", restore_after=30.0)
    plan.install(env, net, adapters=[pool])

    env.run(until=60.0)
    assert all(not h.up for h in pool.hosts)
    assert pool.active_host_count() == 0

    env.run(until=200.0)
    assert all(h.up for h in pool.hosts)
    # relight() relaunched a client on every host.
    assert pool.active_host_count() == 3
    assert plan.stats.outages == 1 and plan.stats.restores == 1


def test_crash_reboot_respawns_adapter_client():
    env, streams, net, core = build_grid_world()
    factory = model_client_factory(core, work_period=20.0, report_period=60.0)
    pool = UnixPool(env, net, streams, factory, site="paci",
                    n_workstations=2, n_mpp_nodes=0, with_tera_mta=False,
                    mtbf=1e9, restart_delay=5.0)
    pool.deploy()
    net.start()
    plan = FaultPlan().crash(50.0, "unix-ws0", reboot_after=20.0)
    plan.install(env, net, adapters=[pool])

    env.run(until=60.0)
    assert "unix-ws0" not in pool.drivers
    env.run(until=200.0)
    # The plan asked the owning adapter to relaunch after the reboot.
    assert "unix-ws0" in pool.drivers
    assert pool.drivers["unix-ws0"].running


# -- gossip pool under faults ----------------------------------------------

def clique_views(core):
    return [tuple(sorted(g.clique.members)) for g in core.gossips]


def test_partition_splits_and_remerges_gossip_cliques():
    env, streams, net, core = build_grid_world()
    net.start()
    # gossip0 sits at ucsd; gossip1/gossip2 at utk/uva.
    plan = FaultPlan().partition(
        300.0, [["ucsd", "ncsa"], ["utk", "uva"]], heal_after=900.0)
    plan.install(env, net)

    env.run(until=250.0)
    full = tuple(sorted(core.gossip_contacts))
    assert clique_views(core) == [full, full, full]

    env.run(until=1100.0)  # partition in force since t=300
    views = clique_views(core)
    assert views[0] == (core.gossip_contacts[0],)
    assert views[1] == views[2] == tuple(sorted(core.gossip_contacts[1:]))

    env.run(until=1600.0)  # healed at t=1200
    assert clique_views(core) == [full, full, full]
    assert plan.stats.heals == 1


def test_crash_during_sync_preserves_registered_state():
    env, streams, net, core = build_grid_world()
    factory = model_client_factory(core, work_period=20.0, report_period=60.0)
    host = Host(env, HostSpec(name="cli0", site="ucsd"), streams)
    net.add_host(host)
    host.start()
    client = factory(host, "test", 0)
    SimDriver(env, net, host, "ramsey", client, streams).start()
    net.start()

    # Crash one gossip mid-run (amid its poll/sync rounds) and reboot it.
    plan = FaultPlan().crash(200.0, "gossip1", reboot_after=120.0)
    plan.install(env, net)
    crashed = core.gossips[1]

    def relaunch(env):
        yield env.timeout(321.0)  # just after the reboot
        drv = SimDriver(env, net, net.host("gossip1"), "gossip",
                        crashed, streams)
        drv.start()
        core.service_drivers[drv.endpoint.contact] = drv

    env.process(relaunch(env))

    env.run(until=150.0)
    assert any("cli0/ramsey" in g.registry for g in core.gossips)

    env.run(until=250.0)  # gossip1 is down; survivors keep the record
    survivors = [g for g in core.gossips if g is not crashed]
    assert any("cli0/ramsey" in g.registry for g in survivors)

    env.run(until=900.0)
    # The rebooted gossip rejoined the clique with its in-memory state,
    # and the client's registration survived the whole episode.
    full = tuple(sorted(core.gossip_contacts))
    assert clique_views(core) == [full, full, full]
    assert any("cli0/ramsey" in g.registry for g in core.gossips)
