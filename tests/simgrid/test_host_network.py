"""Tests for hosts, load models, RNG streams, and the simulated network."""

import numpy as np
import pytest

from repro.simgrid.engine import Environment, Interrupt
from repro.simgrid.host import Host, HostDown, HostSpec
from repro.simgrid.load import (
    ComposedLoad,
    ConstantLoad,
    DiurnalLoad,
    EventSchedule,
    MeanRevertingLoad,
    ScheduledEvent,
)
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams


# ---------------------------------------------------------------- rng


def test_rng_streams_reproducible_and_independent():
    a = RngStreams(seed=7)
    b = RngStreams(seed=7)
    assert a.get("x").random() == b.get("x").random()
    # Different names differ; creation order does not matter.
    c = RngStreams(seed=7)
    c.get("y")  # create y first
    assert c.get("x").random() == RngStreams(seed=7).get("x").random()


def test_rng_streams_seed_changes_stream():
    assert RngStreams(1).get("x").random() != RngStreams(2).get("x").random()


def test_rng_child_prefixing():
    root = RngStreams(seed=3)
    child = root.child("condor")
    assert child.get("h1").random() == RngStreams(3).get("condor:h1").random()


def test_rng_same_stream_cached():
    root = RngStreams(0)
    assert root.get("a") is root.get("a")


# ---------------------------------------------------------------- load models


def test_constant_load():
    m = ConstantLoad(0.5)
    rng = np.random.default_rng(0)
    assert m.advance(0, 30, rng) == 0.5


def test_constant_load_validates():
    with pytest.raises(ValueError):
        ConstantLoad(1.5)


def test_mean_reverting_stays_in_bounds_and_near_mean():
    m = MeanRevertingLoad(mean=0.7, sigma=0.005)
    rng = np.random.default_rng(42)
    values = [m.advance(i * 30.0, 30.0, rng) for i in range(2000)]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert abs(np.mean(values[200:]) - 0.7) < 0.15


def test_mean_reverting_reset():
    m = MeanRevertingLoad(mean=0.5, initial=0.9)
    rng = np.random.default_rng(0)
    m.advance(0, 30, rng)
    m.reset()
    assert m._x == 0.9


def test_diurnal_trough_and_peak():
    m = DiurnalLoad(day_trough=0.3, night_peak=0.9, trough_hour=14.0, noise_sigma=0.0)
    rng = np.random.default_rng(0)
    at_trough = m.advance(14 * 3600.0, 30, rng)
    at_peak = m.advance(2 * 3600.0, 30, rng)
    assert at_trough == pytest.approx(0.3, abs=1e-9)
    assert at_peak == pytest.approx(0.9, abs=1e-9)


def test_scheduled_event_window_and_ramp():
    ev = ScheduledEvent(start=100, end=200, factor=0.4, ramp=50)
    assert ev.multiplier(50) == 1.0
    assert ev.multiplier(150) == 0.4
    assert ev.multiplier(225) == pytest.approx(0.7)
    assert ev.multiplier(300) == 1.0


def test_event_schedule_composes_multiplicatively():
    sched = EventSchedule([
        ScheduledEvent(0, 100, 0.5),
        ScheduledEvent(50, 150, 0.5),
    ])
    rng = np.random.default_rng(0)
    assert sched.advance(75, 30, rng) == pytest.approx(0.25)
    assert sched.advance(125, 30, rng) == pytest.approx(0.5)


def test_composed_load():
    m = ComposedLoad(ConstantLoad(0.5), ConstantLoad(0.5))
    rng = np.random.default_rng(0)
    assert m.advance(0, 30, rng) == pytest.approx(0.25)


# ---------------------------------------------------------------- hosts


def make_host(env, name="h1", **kw):
    streams = RngStreams(seed=1)
    spec = HostSpec(name=name, **kw)
    return Host(env, spec, streams)


def test_host_effective_speed_tracks_load():
    env = Environment()
    host = make_host(env, speed=1000.0, load_model=ConstantLoad(0.25))
    host.start()
    env.run(until=31)
    assert host.effective_speed() == pytest.approx(250.0)


def test_host_down_kills_guests_with_cause():
    env = Environment()
    host = make_host(env)
    host.start()
    outcome = []

    def guest(env):
        try:
            yield env.timeout(1000)
        except Interrupt as i:
            outcome.append(i.cause)

    host.spawn(guest(env), "worker")

    def killer(env):
        yield env.timeout(10)
        host.go_down("reclaimed")

    env.process(killer(env))
    env.run(until=20)
    assert len(outcome) == 1
    assert isinstance(outcome[0], HostDown)
    assert outcome[0].reason == "reclaimed"
    assert host.effective_speed() == 0.0


def test_host_spawn_on_down_host_rejected():
    env = Environment()
    host = make_host(env)
    host.go_down()

    def guest(env):
        yield env.timeout(1)

    with pytest.raises(RuntimeError):
        host.spawn(guest(env), "w")


def test_host_guest_deregisters_on_exit():
    env = Environment()
    host = make_host(env)

    def guest(env):
        yield env.timeout(5)

    host.spawn(guest(env), "w")
    assert host.guest_names() == ["w"]
    env.run()
    assert host.guest_names() == []


def test_host_uptime_fraction():
    env = Environment()
    host = make_host(env)
    host.start()

    def cycle(env):
        yield env.timeout(50)
        host.go_down()
        yield env.timeout(50)
        host.go_up()

    env.process(cycle(env))
    env.run(until=100)
    assert host.uptime_fraction == pytest.approx(0.5)


def test_host_go_down_idempotent():
    env = Environment()
    host = make_host(env)
    host.go_down()
    host.go_down()
    assert not host.up
    host.go_up()
    host.go_up()
    assert host.up


# ---------------------------------------------------------------- network


def build_net(n_hosts=2, sites=None, **net_kw):
    env = Environment()
    streams = RngStreams(seed=5)
    net = Network(env, streams, jitter=0.0, **net_kw)
    hosts = []
    for i in range(n_hosts):
        site = sites[i] if sites else "default"
        h = Host(env, HostSpec(name=f"h{i}", site=site), streams)
        net.add_host(h)
        hosts.append(h)
    return env, net, hosts


def test_address_parse_roundtrip():
    a = Address("gateway", "gossip")
    assert Address.parse(str(a)) == a
    with pytest.raises(ValueError):
        Address.parse("noport")


def test_network_delivers_payload():
    env, net, hosts = build_net()
    dst = Address("h1", "svc")
    box = net.bind(dst)
    src = Address("h0", "cli")
    got = []

    def receiver(env):
        d = yield box.get()
        got.append(d)

    env.process(receiver(env))
    net.send(src, dst, b"hello")
    env.run()
    assert got[0].payload == b"hello"
    assert got[0].src == src
    assert got[0].delivered_at > 0
    assert net.stats.delivered == 1


def test_network_drop_when_dst_down():
    env, net, hosts = build_net()
    dst = Address("h1", "svc")
    net.bind(dst)
    hosts[1].go_down()
    net.send(Address("h0", "c"), dst, b"x")
    env.run()
    assert net.stats.delivered == 0
    assert net.stats.dropped_down == 1


def test_network_drop_when_unbound():
    env, net, hosts = build_net()
    net.send(Address("h0", "c"), Address("h1", "nobody"), b"x")
    env.run()
    assert net.stats.dropped_unbound == 1


def test_network_drop_across_partition():
    env, net, hosts = build_net(sites=["east", "west"])
    dst = Address("h1", "svc")
    net.bind(dst)
    net.set_partitions([["east"], ["west"]])
    net.send(Address("h0", "c"), dst, b"x")
    env.run()
    assert net.stats.dropped_partition == 1
    # Healing restores delivery.
    net.set_partitions([])
    net.send(Address("h0", "c"), dst, b"x")
    env.run()
    assert net.stats.delivered == 1


def test_network_intra_site_faster_than_wan():
    env, net, hosts = build_net(sites=["a", "b"])
    local = net.delay("h0", "h0", 100)
    wan = net.delay("h0", "h1", 100)
    assert local < wan


def test_network_site_latency_override():
    env, net, hosts = build_net(sites=["a", "b"])
    net.set_site_latency("a", "b", 1.5)
    assert net.delay("h0", "h1", 0) == pytest.approx(1.5)


def test_network_congestion_scales_delay():
    env, net, hosts = build_net(
        sites=["a", "b"],
        congestion_model=EventSchedule([ScheduledEvent(0, 1000, 0.25)]),
    )
    base = net.delay("h0", "h1", 1000)
    net.start()
    env.run(until=1)
    congested = net.delay("h0", "h1", 1000)
    assert congested == pytest.approx(base * 4.0)


def test_network_bind_duplicate_rejected():
    env, net, hosts = build_net()
    a = Address("h0", "p")
    net.bind(a)
    with pytest.raises(ValueError):
        net.bind(a)
    net.unbind(a)
    net.bind(a)  # rebinding after unbind is fine


def test_network_message_in_flight_survives_sender_death():
    """Paper §2.1: no keep-alives; a message already sent is delivered even
    if the sender dies meanwhile."""
    env, net, hosts = build_net()
    dst = Address("h1", "svc")
    box = net.bind(dst)
    net.send(Address("h0", "c"), dst, b"x")
    hosts[0].go_down()
    env.run()
    assert net.stats.delivered == 1
    assert len(box.items) == 1


# ---------------------------------------------------------------- trace load


def test_trace_load_step_hold():
    from repro.simgrid.load import TraceLoad

    m = TraceLoad(times=[0, 10, 20], values=[0.2, 0.8, 0.5])
    rng = np.random.default_rng(0)
    assert m.advance(0, 1, rng) == pytest.approx(0.2)
    assert m.advance(9.9, 1, rng) == pytest.approx(0.2)
    assert m.advance(10, 1, rng) == pytest.approx(0.8)
    assert m.advance(19, 1, rng) == pytest.approx(0.8)
    assert m.advance(25, 1, rng) == pytest.approx(0.5)  # hold past end
    assert m.advance(-5, 1, rng) == pytest.approx(0.2)  # clamp before start


def test_trace_load_loops():
    from repro.simgrid.load import TraceLoad

    # Final sample marks the period end; the trace spans [0, 20).
    m = TraceLoad(times=[0, 10, 20], values=[0.1, 0.9, 0.9], loop=True)
    rng = np.random.default_rng(0)
    assert m.advance(5, 1, rng) == pytest.approx(0.1)
    assert m.advance(25, 1, rng) == pytest.approx(0.1)  # 25 % 20 = 5
    assert m.advance(35, 1, rng) == pytest.approx(0.9)  # 35 % 20 = 15


def test_trace_load_clips_and_validates():
    from repro.simgrid.load import TraceLoad

    m = TraceLoad(times=[0], values=[3.0])
    rng = np.random.default_rng(0)
    assert m.advance(0, 1, rng) == 1.0  # clipped into [0, 1]
    with pytest.raises(ValueError):
        TraceLoad(times=[], values=[])
    with pytest.raises(ValueError):
        TraceLoad(times=[0, 1], values=[0.5])
    with pytest.raises(ValueError):
        TraceLoad(times=[5, 1], values=[0.5, 0.5])


def test_trace_load_from_csv(tmp_path):
    from repro.simgrid.load import TraceLoad

    path = tmp_path / "trace.csv"
    path.write_text("time,avail\n# comment\n0,0.25\n30,0.75\nbadrow\n")
    m = TraceLoad.from_csv(str(path))
    rng = np.random.default_rng(0)
    assert m.advance(10, 1, rng) == pytest.approx(0.25)
    assert m.advance(31, 1, rng) == pytest.approx(0.75)


def test_trace_load_drives_a_host():
    from repro.simgrid.load import TraceLoad

    env = Environment()
    streams = RngStreams(seed=1)
    spec = HostSpec(name="h", speed=1000.0,
                    load_model=TraceLoad(times=[0, 60], values=[1.0, 0.5]),
                    load_period=30)
    host = Host(env, spec, streams)
    host.start()
    env.run(until=31)
    assert host.effective_speed() == pytest.approx(1000.0)
    env.run(until=91)
    assert host.effective_speed() == pytest.approx(500.0)


def test_address_parse_raises_canonical_error():
    from repro.simgrid.network import AddressError

    for bad in ("noport", "", "a/b/c", "/", "a/", "/b"):
        with pytest.raises(AddressError):
            Address.parse(bad)
    # AddressError stays a ValueError for pre-existing callers.
    assert issubclass(AddressError, ValueError)
