"""Tests for the task-farm service framework (§6)."""

import pytest

from repro.apps.runner import run_farm
from repro.core.component import NullRuntime, Send
from repro.core.linguafranca.messages import Message
from repro.core.services.framework import (
    FARM_ACK,
    FARM_GET,
    FARM_RESULT,
    FARM_TASK,
    TaskFarmMaster,
    TaskFarmWorker,
)


def msg(mtype, sender="w/1", body=None, req_id=1):
    return Message(mtype=mtype, sender=sender, body=body or {}, req_id=req_id)


def sends_of(effects):
    return [e for e in effects if isinstance(e, Send)]


def make_master(n_tasks=3, **kw):
    tasks = [{"id": f"t{i}", "x": i} for i in range(n_tasks)]
    master = TaskFarmMaster("m", tasks, **kw)
    master.bind_runtime(NullRuntime(contact="m/farm"))
    master.on_start(0.0)
    return master


def test_master_requires_unique_ids():
    with pytest.raises(ValueError):
        TaskFarmMaster("m", [{"id": "a"}, {"id": "a"}])
    with pytest.raises(ValueError):
        TaskFarmMaster("m", [{"x": 1}])


def test_master_issues_and_collects():
    master = make_master(2)
    (send,) = sends_of(master.on_message(msg(FARM_GET), 1.0))
    assert send.message.mtype == FARM_TASK
    task = send.message.body["task"]
    assert task["id"] == "t0"

    got = []
    master.on_result = lambda t, r: got.append((t["id"], r))
    effects = master.on_message(
        msg(FARM_RESULT, body={"task_id": "t0", "result": {"y": 9}}), 2.0)
    assert sends_of(effects)[0].message.mtype == FARM_ACK
    assert got == [("t0", {"y": 9})]
    assert master.progress() == (1, 2)
    assert not master.done


def test_master_drained_returns_none_task():
    master = make_master(1)
    master.on_message(msg(FARM_GET, sender="a/1"), 1.0)
    (send,) = sends_of(master.on_message(msg(FARM_GET, sender="b/1"), 2.0))
    assert send.message.body["task"] is None


def test_master_duplicate_result_counted_once():
    master = make_master(1)
    master.on_message(msg(FARM_GET), 1.0)
    body = {"task_id": "t0", "result": {"v": 1}}
    master.on_message(msg(FARM_RESULT, body=body), 2.0)
    master.on_message(msg(FARM_RESULT, body=body), 3.0)
    assert master.duplicate_results == 1
    assert master.progress() == (1, 1)
    assert master.done


def test_master_reissues_lost_tasks():
    master = make_master(1, reissue_timeout=100)
    master.on_message(msg(FARM_GET, sender="dead/1"), 1.0)
    assert master.in_flight
    master.on_timer("farm:reissue", 500.0)
    assert not master.in_flight
    assert master.reissues == 1
    # The task is reissuable to a healthy worker.
    (send,) = sends_of(master.on_message(msg(FARM_GET, sender="alive/1"), 501.0))
    assert send.message.body["task"]["id"] == "t0"


def test_master_ignores_malformed_results():
    master = make_master(1)
    master.on_message(msg(FARM_GET), 1.0)
    master.on_message(msg(FARM_RESULT, body={"task_id": 5, "result": "x"}), 2.0)
    assert master.progress() == (0, 1)


def test_worker_computes_and_submits():
    worker = TaskFarmWorker("w", "m/farm",
                            execute=lambda t: {"out": t["x"] * 2},
                            cost=lambda t: 1000.0)
    worker.bind_runtime(NullRuntime(contact="w/1", speed=100.0))
    effects = worker.on_start(0.0)
    assert sends_of(effects)[0].message.mtype == FARM_GET

    effects = worker.on_message(
        msg(FARM_TASK, sender="m/farm", body={"task": {"id": "t0", "x": 3}}), 1.0)
    # Compute charged at cost/speed = 10 s.
    from repro.core.component import SetTimer
    timers = [e for e in effects if isinstance(e, SetTimer) and e.key == "farm:submit"]
    assert timers and timers[0].delay == pytest.approx(10.0)

    effects = worker.on_timer("farm:submit", 11.0)
    (send, *_) = sends_of(effects)
    assert send.message.mtype == FARM_RESULT
    assert send.message.body == {"task_id": "t0", "result": {"out": 6}}

    effects = worker.on_message(msg(FARM_ACK, sender="m/farm",
                                    body={"task_id": "t0"}), 12.0)
    assert sends_of(effects)[0].message.mtype == FARM_GET
    assert worker.tasks_done == 1


def test_worker_submits_reliably_and_resubmits_on_give_up():
    worker = TaskFarmWorker("w", "m/farm",
                            execute=lambda t: {"ok": 1},
                            cost=lambda t: 10.0, retry_period=5.0)
    worker.bind_runtime(NullRuntime(contact="w/1", speed=100.0))
    worker.on_start(0.0)
    worker.on_message(msg(FARM_TASK, sender="m/farm",
                          body={"task": {"id": "t0"}}), 1.0)
    # The submission is a reliable send: the *driver* retransmits it
    # until the master's FARM_ACK; the component just marks it so.
    (send, *_) = sends_of(worker.on_timer("farm:submit", 2.0))
    assert send.message.mtype == FARM_RESULT
    assert send.retry is worker.retry
    assert send.label == "farm:result"
    # If the whole policy is exhausted the worker resubmits afresh
    # (masters deduplicate, so this is always safe).
    effects = worker.on_send_failed(send, 60.0)
    sends = sends_of(effects)
    assert sends and sends[0].message.mtype == FARM_RESULT
    assert sends[0].message.body["task_id"] == "t0"
    assert worker.master_give_ups == 1


def test_worker_idle_when_farm_drained():
    worker = TaskFarmWorker("w", "m/farm",
                            execute=lambda t: {}, cost=lambda t: 1.0)
    worker.bind_runtime(NullRuntime(contact="w/1", speed=1.0))
    worker.on_start(0.0)
    effects = worker.on_message(msg(FARM_TASK, sender="m/farm",
                                    body={"task": None}), 1.0)
    assert not sends_of(effects)  # just waits and re-polls later
    effects = worker.on_timer("farm:idle", 40.0)
    assert sends_of(effects)[0].message.mtype == FARM_GET


def test_end_to_end_farm_on_simulated_grid():
    results = {}

    def on_result(task, result):
        results[task["id"]] = result["sq"]

    tasks = [{"id": f"t{i}", "x": i} for i in range(12)]
    run = run_farm(
        tasks,
        execute=lambda t: {"sq": t["x"] ** 2},
        cost=lambda t: 1e6,
        on_result=on_result,
        n_workers=3,
    )
    assert run.master.done
    assert results == {f"t{i}": i * i for i in range(12)}
    # Heterogeneous speeds: the fast worker did at least as much work.
    done = [w.tasks_done for w in run.workers]
    assert done[-1] >= done[0]
    assert sum(done) >= 12


def test_farm_survives_worker_death():
    tasks = [{"id": f"t{i}"} for i in range(8)]
    run = run_farm(
        tasks,
        execute=lambda t: {"ok": True},
        cost=lambda t: 5e7,  # long tasks so the kill interrupts one
        n_workers=3,
        kill_worker_at=30.0,
        reissue_timeout=120.0,
    )
    assert run.master.done
    assert run.master.reissues >= 1
