"""Tests for the G-Net-style distributed data mining application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.gnet import (
    PLANTED_PAIRS,
    CountMerger,
    count_supports,
    execute_task,
    frequent_itemsets,
    generate_transactions,
    make_tasks,
    mine_serial,
    task_cost,
)
from repro.apps.runner import run_farm

N_TX = 2000
N_ITEMS = 24
SEED = 3
MIN_SUPPORT = 0.25


def test_generation_reproducible_and_chunked():
    full = generate_transactions(100, N_ITEMS, SEED)
    again = generate_transactions(100, N_ITEMS, SEED)
    assert full == again
    # Chunked regeneration matches the full pass row for row.
    front = generate_transactions(60, N_ITEMS, SEED, offset=0)
    back = generate_transactions(40, N_ITEMS, SEED, offset=60)
    assert front + back == full


def test_baskets_sorted_unique():
    for basket in generate_transactions(50, N_ITEMS, SEED):
        assert basket == sorted(set(basket))
        assert all(0 <= i < N_ITEMS for i in basket)


def test_planted_pairs_are_frequent():
    items, pairs = mine_serial(N_TX, N_ITEMS, SEED, MIN_SUPPORT)
    for pair in PLANTED_PAIRS:
        assert pair in pairs, f"planted pair {pair} not mined"


def test_random_pairs_are_not_frequent():
    _, pairs = mine_serial(N_TX, N_ITEMS, SEED, MIN_SUPPORT)
    # Only the planted structure (and pairs involving its items) clears
    # a 25% support threshold; the vast majority of the 276 pairs do not.
    assert len(pairs) < 10


def test_count_supports_small_example():
    singles, pairs = count_supports([[1, 2], [1, 2, 3], [2]], 4)
    assert singles == {1: 2, 2: 3, 3: 1}
    assert pairs == {(1, 2): 2, (1, 3): 1, (2, 3): 1}


def test_frequent_itemsets_threshold():
    singles = {1: 10, 2: 4}
    pairs = {(1, 2): 4}
    items, fpairs = frequent_itemsets(singles, pairs, 10, 0.5)
    assert items == [1]
    assert fpairs == []


def test_tasks_cover_database_exactly():
    tasks = make_tasks(N_TX, N_ITEMS, SEED, chunk=300)
    assert sum(t["count"] for t in tasks) == N_TX
    offsets = sorted((t["offset"], t["count"]) for t in tasks)
    cursor = 0
    for offset, count in offsets:
        assert offset == cursor
        cursor += count
    assert all(task_cost(t) > 0 for t in tasks)


def test_distributed_mining_equals_serial():
    tasks = make_tasks(N_TX, N_ITEMS, SEED, chunk=250)
    merger = CountMerger()
    run = run_farm(tasks, execute=execute_task, cost=task_cost,
                   on_result=merger, n_workers=4)
    assert run.master.done
    assert merger.n_transactions == N_TX
    assert merger.mine(MIN_SUPPORT) == mine_serial(N_TX, N_ITEMS, SEED, MIN_SUPPORT)


def test_distributed_mining_with_worker_failure():
    tasks = make_tasks(800, N_ITEMS, SEED, chunk=100)
    merger = CountMerger()
    run = run_farm(tasks, execute=execute_task, cost=task_cost,
                   on_result=merger, n_workers=3,
                   kill_worker_at=20.0, reissue_timeout=120.0)
    assert run.master.done
    assert merger.mine(MIN_SUPPORT) == mine_serial(800, N_ITEMS, SEED, MIN_SUPPORT)


@given(chunk=st.integers(min_value=17, max_value=400),
       n_tx=st.integers(min_value=50, max_value=600))
@settings(max_examples=10, deadline=None)
def test_property_partitioned_counts_equal_serial(chunk, n_tx):
    """Any partitioning of the database merges to the same counts."""
    tasks = make_tasks(n_tx, N_ITEMS, SEED, chunk=chunk)
    merger = CountMerger()
    for t in tasks:
        merger(t, execute_task(t))
    serial_singles, serial_pairs = count_supports(
        generate_transactions(n_tx, N_ITEMS, SEED), N_ITEMS)
    assert merger.singles == serial_singles
    assert merger.pairs == serial_pairs
