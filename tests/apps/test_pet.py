"""Tests for the PET reconstruction application."""

import numpy as np
import pytest

from repro.apps.pet import (
    Accumulator,
    backproject,
    execute_task,
    forward_project,
    image_correlation,
    make_phantom,
    make_tasks,
    ramp_filter,
    reconstruct_serial,
    task_cost,
    _rotate,
)
from repro.apps.runner import run_farm

SIZE = 48
ANGLES = [float(a) for a in np.linspace(0, 180, 36, endpoint=False)]


@pytest.fixture(scope="module")
def phantom():
    return make_phantom(SIZE)


@pytest.fixture(scope="module")
def sino(phantom):
    return forward_project(phantom, ANGLES)


def test_phantom_structure(phantom):
    assert phantom.shape == (SIZE, SIZE)
    assert phantom.max() == 2.0  # hot spot
    assert phantom.min() == 0.0
    assert (phantom > 0).mean() > 0.2  # body occupies a real area


def test_rotation_identity_and_mass():
    img = make_phantom(32)
    assert np.allclose(_rotate(img, 0.0), img)
    # Rotation approximately preserves total activity (interior mass).
    rotated = _rotate(img, 37.0)
    assert rotated.sum() == pytest.approx(img.sum(), rel=0.05)


def test_rotation_360_roundtrip():
    img = make_phantom(32)
    out = img
    for _ in range(4):
        out = _rotate(out, 90.0)
    assert image_correlation(out, img) > 0.98


def test_projection_mass_conservation(phantom, sino):
    """Every projection integrates to (approximately) the total activity."""
    total = phantom.sum()
    sums = sino.sum(axis=1)
    assert np.allclose(sums, total, rtol=0.05)


def test_ramp_filter_removes_dc():
    row = np.ones(64)
    filtered = ramp_filter(row)
    assert abs(filtered.sum()) < 1e-9


def test_serial_reconstruction_is_faithful(phantom, sino):
    recon = reconstruct_serial(sino, ANGLES, SIZE)
    assert image_correlation(recon, phantom) > 0.85


def test_unfiltered_backprojection_is_blurrier(phantom, sino):
    fbp = reconstruct_serial(sino, ANGLES, SIZE)
    blurry = backproject(sino, ANGLES, SIZE, filtered=False)
    assert image_correlation(fbp, phantom) > image_correlation(blurry, phantom)


def test_tasks_partition_all_angles(sino):
    tasks = make_tasks(sino, ANGLES, SIZE, chunk=8)
    covered = [a for t in tasks for a in t["angles"]]
    assert covered == ANGLES
    assert all(len(t["projections"]) == len(t["angles"]) for t in tasks)
    assert len({t["id"] for t in tasks}) == len(tasks)
    assert all(task_cost(t) > 0 for t in tasks)


def test_execute_task_matches_direct_backprojection(sino):
    tasks = make_tasks(sino, ANGLES, SIZE, chunk=6)
    task = tasks[2]
    result = execute_task(task)
    direct = backproject(np.asarray(task["projections"]), task["angles"], SIZE)
    assert np.allclose(np.asarray(result["partial"]), direct)


def test_distributed_equals_serial(phantom, sino):
    """The farm's summed partial images must equal the serial FBP up to
    the per-chunk normalization."""
    tasks = make_tasks(sino, ANGLES, SIZE, chunk=9)
    acc = Accumulator(size=SIZE)
    run = run_farm(tasks, execute=execute_task, cost=task_cost,
                   on_result=acc, n_workers=3)
    assert run.master.done
    assert acc.chunks == len(tasks)
    # Each chunk normalizes by its own angle count; rescale to compare.
    # chunks have equal size here, so the sum is serial * (n_chunks ... )
    serial = reconstruct_serial(sino, ANGLES, SIZE)
    assert image_correlation(acc.image, serial) > 0.999
    assert image_correlation(acc.image, phantom) > 0.85


def test_distributed_survives_worker_loss(phantom, sino):
    tasks = make_tasks(sino, ANGLES, SIZE, chunk=6)
    acc = Accumulator(size=SIZE)
    run = run_farm(tasks, execute=execute_task, cost=task_cost,
                   on_result=acc, n_workers=3,
                   kill_worker_at=10.0, reissue_timeout=120.0)
    assert run.master.done
    assert image_correlation(acc.image, phantom) > 0.85
