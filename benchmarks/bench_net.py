"""Refresh the repo-root ``BENCH_net.json`` transport curves.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_net.py
    PYTHONPATH=src python benchmarks/bench_net.py --quick

Runs both before/after transport benchmarks from
:mod:`repro.core.netbench` across connection counts:

* **echo** — request/response storms against a forked echo server:
  ``blocking-threads`` (thread-per-connection, send-per-packet — the
  classic portable design) vs ``async-reactor`` (the selector reactor
  the NetDriver rides). Reports sustained msgs/s and p50/p99 latency.
* **fanout** — one sender shipping bursts to N peer connections:
  ``blocking-send`` (a faithful replica of the old cached blocking
  ``TcpClient.send`` hot path: staleness probe + settimeout + sendall
  per message) vs ``async-send`` (:class:`AsyncSender` per-peer write
  queues, one batched ``sendmsg`` per peer per cycle). This is the path
  the async rewrite replaced, and where the speedup lives.

The gate (``--check``) asserts the acceptance floor: >= 3x sustained
fan-out msgs/s at 1000 connections vs the blocking baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

NET_JSON = HERE.parent / "BENCH_net.json"

#: Acceptance floor: fan-out msgs/s at the top connection count vs the
#: blocking baseline.
SPEEDUP_FLOOR = 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--connections", type=str, default="64,256,1000",
                        help="comma-separated connection counts")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="measured seconds per cell")
    parser.add_argument("--quick", action="store_true",
                        help="small grid, short cells (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless top fan-out speedup >= "
                             f"{SPEEDUP_FLOOR}x")
    parser.add_argument("--out", type=str, default=str(NET_JSON))
    args = parser.parse_args(argv)

    from repro.core.netbench import run_netbench

    counts = tuple(int(c) for c in args.connections.split(","))
    if args.quick:
        counts = tuple(c for c in counts if c <= 500) or (64,)
        report = run_netbench(connection_counts=counts, duration=1.5,
                              warmup=0.4, payload=0)
    else:
        report = run_netbench(connection_counts=counts,
                              duration=args.duration, warmup=0.8, payload=0)

    print(f"{'bench':>7} {'mode':>16} {'conns':>6} {'msgs/s':>10} "
          f"{'p50 ms':>8} {'p99 ms':>8} {'speedup':>8}")
    for row in report["rows"]:
        speed = row.get("speedup_vs_blocking")
        print(f"{row['bench']:>7} {row['mode']:>16} "
              f"{row['connections']:>6} {row['msgs_per_s']:>10,.0f} "
              f"{row.get('p50_ms', 0.0):>8.1f} {row.get('p99_ms', 0.0):>8.1f} "
              f"{'' if speed is None else f'{speed:.2f}x':>8}")
    print(f"host cpus: {report['host_cpus']}")

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path.name}")

    if args.check:
        top = max(counts)
        rows = {(r["bench"], r["mode"], r["connections"]): r
                for r in report["rows"]}
        after = rows.get(("fanout", "async-send", top))
        speed = (after or {}).get("speedup_vs_blocking", 0.0)
        if speed < SPEEDUP_FLOOR:
            print(f"FAIL: fan-out speedup {speed:.2f}x at {top} "
                  f"connections is below the {SPEEDUP_FLOOR}x floor",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
