"""The compute plane must be free when unused (perf-opt tentpole gate).

The inline lane is the default substrate: no pool, no shm, no lane
object anywhere near the hot loops. This gate proves the refactor that
made kernels *offloadable* (TabuSearch round decomposition, the engine's
drain-hook dispatch, the RealEngine lane branch) did not tax the serial
paths everyone else runs.

Under ``REPRO_PERF_STRICT=1`` the bench checks the perf-baseline commit
— the most recent commit, excluding the working HEAD itself, that
refreshed ``BENCH_engine.json`` — out into a temporary git worktree and
alternates timed rounds between the two checkouts in one process (the
same interleaving ``perf_snapshot.py --before-tree`` uses; separate
processes cannot resolve a 2% tolerance on a noisy machine). HEAD is
excluded because a perf PR refreshes the BENCH files in the same commit
it changes the code, which would otherwise make the gate compare the new
tree against itself. Skipped when strict mode is off or the baseline
commit is unreachable (shallow clone).
"""

import os
import pathlib
import subprocess
import tempfile

import pytest

import perf_snapshot
import workloads
from conftest import save_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT") == "1"
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
N_EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS",
                              workloads.N_TIMEOUT_EVENTS))
N_STEPS = int(os.environ.get("REPRO_BENCH_TABU_STEPS",
                             workloads.N_TABU_STEPS))

#: Maximum allowed regression of the lane-capable tree's serial paths
#: against the pre-compute-plane baseline, measured interleaved.
INLINE_OVERHEAD_TOLERANCE = 0.02

GATED_WORKLOADS = {
    "timeout_storm": ("events/s", lambda: workloads.run_timeout_storm(N_EVENTS)),
    "tabu_search": ("moves/s", lambda: workloads.run_tabu_search(N_STEPS)),
}


def _git(*argv: str) -> str:
    return subprocess.check_output(("git", "-C", str(REPO_ROOT)) + argv,
                                   text=True).strip()


def _baseline_commit() -> str:
    """The most recent non-HEAD commit that refreshed the perf baseline."""
    head = _git("rev-parse", "HEAD")
    shas = _git("log", "--format=%H", "--", "BENCH_engine.json").splitlines()
    for sha in shas:
        if sha != head:
            return sha
    raise RuntimeError("no perf-baseline commit before HEAD")


def _interleaved_medians(fn, baseline_src: str, rounds: int):
    baseline_rates, current_rates = [], []
    for _ in range(rounds):
        baseline_rates.append(
            perf_snapshot._one_interleaved_round(baseline_src, fn))
        current_rates.append(perf_snapshot._one_interleaved_round(None, fn))
    baseline_rates.sort()
    current_rates.sort()
    return (baseline_rates[len(baseline_rates) // 2],
            current_rates[len(current_rates) // 2])


def test_inline_lane_within_2pct_of_baseline(artifact_dir):
    if not STRICT:
        pytest.skip("interleaved baseline gate only runs under "
                    "REPRO_PERF_STRICT=1")
    try:
        sha = _baseline_commit()
        worktree = tempfile.mkdtemp(prefix="repro-lane-baseline-")
        _git("worktree", "add", "--detach", worktree, sha)
    except (subprocess.CalledProcessError, RuntimeError) as exc:
        pytest.skip(f"baseline tree unavailable (shallow clone?): {exc}")
    baseline_src = str(pathlib.Path(worktree) / "src")
    lines = [f"Inline-lane (serial-path) overhead vs pre-compute-plane "
             f"tree {sha[:12]} (interleaved, {ROUNDS} rounds):"]
    failures = []
    try:
        for name, (unit, fn) in GATED_WORKLOADS.items():
            base, current = _interleaved_medians(fn, baseline_src, ROUNDS)
            ratio = current / base
            lines.append(f"  {name:<16} baseline {base:12,.0f} {unit:<10} "
                         f"current {current:12,.0f}  ({ratio:.3f}x)")
            if ratio < 1.0 - INLINE_OVERHEAD_TOLERANCE:
                failures.append(f"{name}: {current:,.0f} {unit} is "
                                f"{(1 - ratio) * 100:.1f}% below the "
                                f"baseline tree's {base:,.0f}")
    finally:
        subprocess.run(["git", "-C", str(REPO_ROOT), "worktree", "remove",
                        "--force", worktree], check=False)
    save_artifact(artifact_dir, "lane_overhead.txt", "\n".join(lines))
    assert not failures, "; ".join(failures)
