"""Figure 3c / 4c: total sustained rate alongside the per-infrastructure
series — the paper's smoothness comparison.

"Despite fluctuations in the deliverable performance and host
availability provided by each infrastructure, the application itself was
able to draw power from the overall resource pool relatively uniformly."
Quantified here (as §7's *consistent* criterion): the total series' CV
must sit below the per-infrastructure CVs it aggregates.
"""

import numpy as np

from repro.experiments import render_grid_criteria
from repro.experiments.metrics import coefficient_of_variation
from repro.experiments.report import render_series_table, sparkline

from conftest import save_artifact


def test_fig3c_total_vs_parts(benchmark, sc98_results, artifact_dir):
    world, results = sc98_results
    s = results.series
    skip = max(2, len(s.total_rate) // 12)  # drop the deployment transient

    def analyze():
        total_cv = coefficient_of_variation(s.total_rate, skip=skip)
        infra_cv = {
            name: coefficient_of_variation(series, skip=skip)
            for name, series in s.rate_by_infra.items()
        }
        return total_cv, infra_cv

    total_cv, infra_cv = benchmark(analyze)

    lines = ["Figure 3c/4c: total rate (compare Fig. 2) vs constituents"]
    lines.append(f"  total  : [{sparkline(s.total_rate)}]  CV={total_cv:.3f}")
    lines.append(f"  (log)  : [{sparkline(s.total_rate, log=True)}]")
    for name in sorted(s.rate_by_infra):
        lines.append(f"  {name:>7}: [{sparkline(s.rate_by_infra[name])}]"
                     f"  CV={infra_cv[name]:.3f}")
    lines.append("")
    lines.append(render_grid_criteria(results))
    save_artifact(artifact_dir, "fig3c_4c_total.txt", "\n".join(lines))

    # Total == sum of parts (bookkeeping invariant behind 3c).
    stacked = np.sum(list(s.rate_by_infra.values()), axis=0)
    assert np.allclose(stacked, s.total_rate, rtol=1e-9)

    # The aggregate draws power more uniformly than the median part and
    # far more uniformly than the flakiest parts.
    cvs = sorted(infra_cv.values())
    median_cv = cvs[len(cvs) // 2]
    assert total_cv < median_cv
    assert total_cv < 0.5 * max(cvs)
