"""Ablation A3: adaptive forecaster selection vs any single method (§2.2).

The NWS claim EveryWare inherits: dynamically choosing the technique
"that yields the greatest forecasting accuracy over time" tracks the best
method per regime, so the chooser is near-best on *every* series while
every fixed method has a series that punishes it. Four canonical traces:
stationary noise, regime switches, a trend, and heavy-tailed spikes.

The benchmark times the full bank update (all methods + scoring) — the
per-measurement cost EveryWare pays inside its servers.
"""

import numpy as np

from repro.core.forecasting import ForecasterBank

from conftest import save_artifact


def make_traces(n=800, seed=5):
    rng = np.random.default_rng(seed)
    traces = {}
    traces["stationary"] = 10 + rng.normal(0, 1, n)
    regime = np.concatenate([
        np.full(n // 4, 2.0), np.full(n // 4, 12.0),
        np.full(n // 4, 5.0), np.full(n - 3 * (n // 4), 20.0)])
    traces["regime-switch"] = regime + rng.normal(0, 0.5, n)
    traces["trend"] = np.linspace(1, 20, n) + rng.normal(0, 0.5, n)
    spikes = 5 + rng.normal(0, 0.5, n)
    mask = rng.random(n) < 0.05
    spikes[mask] *= rng.uniform(3, 8, mask.sum())
    traces["spiky"] = spikes
    return {k: np.maximum(v, 0.01) for k, v in traces.items()}


def chooser_mae(trace):
    bank = ForecasterBank()
    err, scored = 0.0, 0
    for v in trace:
        fc = bank.forecast()
        if fc is not None:
            err += abs(fc.value - float(v))
            scored += 1
        bank.update(float(v))
    return err / scored, bank.errors()


def test_adaptive_selection_beats_fixed_methods(benchmark, artifact_dir):
    traces = make_traces()

    # Benchmark the bank's per-measurement cost on one trace.
    def feed_bank():
        bank = ForecasterBank()
        for v in traces["regime-switch"]:
            bank.update(float(v))
        return bank

    benchmark(feed_bank)

    lines = ["Ablation A3: adaptive forecaster selection vs single methods",
             ""]
    regrets = {}
    worst_counts = {}
    for name, trace in traces.items():
        mae, method_errors = chooser_mae(trace)
        best = min(method_errors.values())
        worst = max(v for v in method_errors.values() if np.isfinite(v))
        regrets[name] = mae / best
        lines.append(f"  {name:>13}: chooser MAE {mae:.3f} | best single "
                     f"{best:.3f} | worst single {worst:.3f} | "
                     f"regret {mae / best:.2f}x")
        # Track which method is best per trace: it changes.
        best_name = min(method_errors, key=method_errors.get)
        worst_counts[name] = best_name

    lines.append("")
    lines.append("best single method differs per trace: "
                 + ", ".join(f"{t}->{m}" for t, m in worst_counts.items()))
    lines.append("no fixed choice is safe; the adaptive chooser is near-best "
                 "everywhere.")
    save_artifact(artifact_dir, "ablation_a3_forecasters.txt", "\n".join(lines))

    # Near-best on every series...
    assert all(r < 1.6 for r in regrets.values()), regrets
    # ...and the winning single method is not the same everywhere.
    assert len(set(worst_counts.values())) >= 2
