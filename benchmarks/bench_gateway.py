"""Refresh the repo-root ``BENCH_gateway.json`` control-plane curves.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_gateway.py
    PYTHONPATH=src python benchmarks/bench_gateway.py --quick --check

Benchmarks the HTTP/JSON job gateway as its own OS process (the same
``HttpServer`` + ``GatewayCore`` + journal-backed ``WorkQueue`` stack
``repro serve`` deploys) under a :class:`GatewayStorm` of concurrent
keep-alive HTTP users:

* **steady** cells — sustained submissions/s and query p50/p99 at each
  client count (the top cell is the 1,000-concurrent-user claim);
* a **churn** cell — every storm connection reconnects after a handful
  of responses, so accept/close machinery is on the hot path;
* a **kill-restart** cell — the gateway is SIGKILLed mid-storm and
  respawned on the same port and journal; after the storm, every job id
  it ever answered 201 for must still be known (requeued, not lost).

The gate (``--check``) asserts the acceptance floors at the top cell:
sustained submissions/s, query p99, and zero lost jobs across the kill.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

GATEWAY_JSON = HERE.parent / "BENCH_gateway.json"

#: Acceptance floors for the top steady cell (see --check).
SUBMISSIONS_PER_S_FLOOR = 500.0
QUERY_P99_MS_CEILING = 250.0


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve_child(port: int, journal_path: str) -> int:
    """Child mode: one gateway process, pumped until killed."""
    from repro.control import (FileJournal, GatewayCore, HttpServer,
                               WorkQueue, render_payload)

    work = WorkQueue(journal=FileJournal(journal_path), prefix="bench-job")
    work.clock = time.monotonic
    core = GatewayCore("bench-gw", work, started_at=time.monotonic())

    def app(request):
        status, payload, route = core.handle(
            request.method, request.path, request.body, time.monotonic())
        return render_payload(status, payload, route, close=request.close)

    last: Exception | None = None
    for _ in range(100):  # the port may linger briefly after a SIGKILL
        try:
            server = HttpServer("127.0.0.1", port, app)
            break
        except OSError as exc:
            last = exc
            time.sleep(0.05)
    else:
        raise SystemExit(f"gateway bind failed: {last}")
    while True:
        server.step(0.05)


class GatewayProcess:
    """Spawn/kill/respawn one gateway child on a fixed port + journal."""

    def __init__(self, port: int, journal: str) -> None:
        self.port = port
        self.journal = journal
        self.proc: subprocess.Popen | None = None

    def spawn(self) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, str(HERE / "bench_gateway.py"),
             "--_serve", str(self.port), self.journal],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def wait_healthy(self, timeout: float = 15.0) -> None:
        from repro.control import GatewayClient, HttpError

        deadline = time.monotonic() + timeout
        with GatewayClient(f"127.0.0.1:{self.port}", timeout=2.0) as probe:
            while time.monotonic() < deadline:
                try:
                    probe.health()
                    return
                except HttpError:
                    time.sleep(0.1)
        raise RuntimeError("gateway never became healthy")

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait()

    def __enter__(self) -> "GatewayProcess":
        self.spawn()
        self.wait_healthy()
        return self

    def __exit__(self, *exc) -> None:
        self.kill()


def _storm_cell(port: int, clients: int, duration: float, seed: int,
                churn_every: int = 0,
                kill_restart: bool = False,
                gateway: GatewayProcess | None = None) -> dict:
    from repro.control import GatewayClient, GatewayStorm, HttpError

    storm = GatewayStorm("127.0.0.1", port, clients=clients, seed=seed,
                         churn_every=churn_every)
    killed_at = None
    try:
        t0 = time.monotonic()
        while time.monotonic() - t0 < duration:
            storm.step(0.005)
            if (kill_restart and killed_at is None
                    and time.monotonic() - t0 >= duration / 3):
                gateway.kill()
                killed_at = time.monotonic() - t0
                gateway.spawn()  # same port, same journal
        storm.quiesce(grace=3.0)
        elapsed = time.monotonic() - t0
        stats = storm.stats
        row = {
            "cell": ("kill-restart" if kill_restart
                     else "churn" if churn_every else "steady"),
            "clients": clients,
            "duration_s": round(elapsed, 3),
            "submitted": stats.submitted,
            "queried": stats.queried,
            "cancelled": stats.cancelled,
            "rejected": stats.rejected,
            "errors": stats.errors,
            "reconnects": stats.reconnects,
            "accepted": len(storm.accepted),
            "submissions_per_s": round(stats.submitted / elapsed, 1),
            "requests_per_s": round(
                (stats.submitted + stats.queried + stats.cancelled)
                / elapsed, 1),
            "submit_p50_ms": round(
                _percentile(stats.submit_latencies, 0.50), 2),
            "submit_p99_ms": round(
                _percentile(stats.submit_latencies, 0.99), 2),
            "query_p50_ms": round(
                _percentile(stats.query_latencies, 0.50), 2),
            "query_p99_ms": round(
                _percentile(stats.query_latencies, 0.99), 2),
        }
        if kill_restart:
            gateway.wait_healthy()
            lost = []
            with GatewayClient(f"127.0.0.1:{port}", timeout=3.0) as client:
                for job_id in storm.accepted:
                    try:
                        job = client.job(job_id)
                    except HttpError:
                        job = None
                    if job is None:
                        lost.append(job_id)
            row["killed_at_s"] = round(killed_at, 3)
            row["jobs_lost"] = len(lost)
        return row
    finally:
        storm.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=str, default="100,1000",
                        help="comma-separated storm client counts")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="measured seconds per cell")
    parser.add_argument("--churn-every", type=int, default=10,
                        help="responses per connection in the churn cell")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small grid, short cells (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the acceptance floors hold")
    parser.add_argument("--out", type=str, default=str(GATEWAY_JSON))
    parser.add_argument("--_serve", nargs=2, metavar=("PORT", "JOURNAL"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args._serve:
        return _serve_child(int(args._serve[0]), args._serve[1])

    counts = tuple(int(c) for c in args.clients.split(","))
    duration = args.duration
    if args.quick:
        counts = tuple(c for c in counts if c <= 200) or (100,)
        duration = min(duration, 2.0)
    top = max(counts)

    import tempfile

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-gw-") as tmp:
        for i, clients in enumerate(counts):
            port = _free_port()
            journal = os.path.join(tmp, f"steady-{clients}.jsonl")
            with GatewayProcess(port, journal) as gateway:
                rows.append(_storm_cell(port, clients, duration,
                                        seed=args.seed + i))
            print(f"steady {clients:>5} clients: "
                  f"{rows[-1]['submissions_per_s']:>8,.0f} submissions/s, "
                  f"query p99 {rows[-1]['query_p99_ms']:.1f} ms")

        port = _free_port()
        with GatewayProcess(port, os.path.join(tmp, "churn.jsonl")) \
                as gateway:
            rows.append(_storm_cell(port, top, duration, seed=args.seed + 7,
                                    churn_every=args.churn_every))
        print(f"churn  {top:>5} clients: "
              f"{rows[-1]['submissions_per_s']:>8,.0f} submissions/s "
              f"({rows[-1]['reconnects']} reconnects)")

        port = _free_port()
        gateway = GatewayProcess(port, os.path.join(tmp, "kill.jsonl"))
        with gateway:
            rows.append(_storm_cell(
                port, min(top, 200), max(duration, 3.0),
                seed=args.seed + 13, kill_restart=True, gateway=gateway))
        print(f"kill-restart: {rows[-1]['accepted']} accepted, "
              f"{rows[-1]['jobs_lost']} lost across SIGKILL at "
              f"t={rows[-1]['killed_at_s']:.1f}s")

    report = {
        "bench": "gateway",
        "floors": {
            "submissions_per_s": SUBMISSIONS_PER_S_FLOOR,
            "query_p99_ms": QUERY_P99_MS_CEILING,
            "jobs_lost": 0,
        },
        "rows": rows,
        "host_cpus": os.cpu_count(),
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote: {out_path}")

    if args.check:
        top_row = max((r for r in rows if r["cell"] == "steady"),
                      key=lambda r: r["clients"])
        kill_row = next(r for r in rows if r["cell"] == "kill-restart")
        failures = []
        if top_row["submissions_per_s"] < SUBMISSIONS_PER_S_FLOOR:
            failures.append(
                f"submissions/s {top_row['submissions_per_s']:,.0f} < "
                f"floor {SUBMISSIONS_PER_S_FLOOR:,.0f}")
        if top_row["query_p99_ms"] > QUERY_P99_MS_CEILING:
            failures.append(
                f"query p99 {top_row['query_p99_ms']:.1f} ms > "
                f"ceiling {QUERY_P99_MS_CEILING:.1f} ms")
        if kill_row["jobs_lost"] != 0:
            failures.append(f"{kill_row['jobs_lost']} accepted job(s) "
                            f"lost across the kill/restart")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("check: OK (floors hold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
