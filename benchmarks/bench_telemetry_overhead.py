"""Telemetry must be free when off (observability satellite gate).

Two checks:

* **Baseline gate** — with tracing disabled and no profiler attached, the
  engine hot paths may not regress more than 3% against the tree that
  last refreshed ``BENCH_engine.json`` (the PR that established the perf
  baseline). Separate-process wall-clock numbers are useless at that
  tolerance — machine noise alone exceeds it — so under
  ``REPRO_PERF_STRICT=1`` this bench checks the baseline commit out into
  a temporary git worktree and alternates timed rounds between the two
  checkouts in one process, the same interleaving that
  ``perf_snapshot.py --before-tree`` uses. Skipped when strict mode is
  off or the baseline commit is unreachable (shallow clone).

* **Tracing cost report** — the driver hot path with tracing on vs off,
  interleaved in-process on the current tree. Informational: enabling
  spans is allowed to cost, being *able* to enable them is not.
"""

import os
import pathlib
import subprocess
import tempfile

import pytest

import perf_snapshot
import workloads
from conftest import save_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
STRICT = os.environ.get("REPRO_PERF_STRICT") == "1"
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
N_EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS",
                              workloads.N_TIMEOUT_EVENTS))
N_CYCLES = int(os.environ.get("REPRO_BENCH_ROUNDTRIPS",
                              workloads.N_ROUNDTRIPS))
N_DRIVER = int(os.environ.get("REPRO_BENCH_DRIVER_ROUNDTRIPS",
                              workloads.N_DRIVER_ROUNDTRIPS))

#: Maximum allowed regression of the telemetry-disabled tree against the
#: perf-baseline tree, measured interleaved.
DISABLED_OVERHEAD_TOLERANCE = 0.03

GATED_WORKLOADS = {
    "timeout_storm": ("events/s", lambda: workloads.run_timeout_storm(N_EVENTS)),
    "message_pingpong": ("roundtrips/s",
                         lambda: workloads.run_message_pingpong(N_CYCLES)),
}


def _git(*argv: str) -> str:
    return subprocess.check_output(("git", "-C", str(REPO_ROOT)) + argv,
                                   text=True).strip()


def _baseline_commit() -> str:
    """The commit that last refreshed the committed perf baseline."""
    sha = _git("log", "-n1", "--format=%H", "--", "BENCH_engine.json")
    if not sha:
        raise RuntimeError("BENCH_engine.json has no history")
    return sha


def _interleaved_medians(fn, baseline_src: str | None, rounds: int):
    """Alternate timed rounds of ``fn`` between the baseline checkout and
    the current tree; return (baseline_median, current_median)."""
    baseline_rates, current_rates = [], []
    for _ in range(rounds):
        if baseline_src is not None:
            baseline_rates.append(
                perf_snapshot._one_interleaved_round(baseline_src, fn))
        current_rates.append(perf_snapshot._one_interleaved_round(None, fn))
    current_rates.sort()
    current = current_rates[len(current_rates) // 2]
    if baseline_src is None:
        return None, current
    baseline_rates.sort()
    return baseline_rates[len(baseline_rates) // 2], current


def test_disabled_telemetry_within_3pct_of_baseline(artifact_dir):
    if not STRICT:
        pytest.skip("interleaved baseline gate only runs under "
                    "REPRO_PERF_STRICT=1")
    try:
        sha = _baseline_commit()
        worktree = tempfile.mkdtemp(prefix="repro-perf-baseline-")
        _git("worktree", "add", "--detach", worktree, sha)
    except (subprocess.CalledProcessError, RuntimeError) as exc:
        pytest.skip(f"baseline tree unavailable (shallow clone?): {exc}")
    baseline_src = str(pathlib.Path(worktree) / "src")
    lines = [f"Telemetry-disabled overhead vs perf-baseline tree "
             f"{sha[:12]} (interleaved, {ROUNDS} rounds):"]
    failures = []
    try:
        for name, (unit, fn) in GATED_WORKLOADS.items():
            base, current = _interleaved_medians(fn, baseline_src, ROUNDS)
            ratio = current / base
            lines.append(f"  {name:<18} baseline {base:12,.0f} {unit:<12} "
                         f"current {current:12,.0f}  ({ratio:.3f}x)")
            if ratio < 1.0 - DISABLED_OVERHEAD_TOLERANCE:
                failures.append(f"{name}: {current:,.0f} {unit} is "
                                f"{(1 - ratio) * 100:.1f}% below the "
                                f"baseline tree's {base:,.0f}")
    finally:
        subprocess.run(["git", "-C", str(REPO_ROOT), "worktree", "remove",
                        "--force", worktree], check=False)
    save_artifact(artifact_dir, "telemetry_overhead.txt", "\n".join(lines))
    assert not failures, "; ".join(failures)


def test_tracing_cost_is_reported(artifact_dir):
    def traced():
        return workloads.run_driver_pingpong(N_DRIVER, trace=True)

    def untraced():
        return workloads.run_driver_pingpong(N_DRIVER, trace=False)

    traced_rates, untraced_rates = [], []
    untraced()  # warm-up (imports, allocator)
    for _ in range(ROUNDS):
        untraced_rates.append(
            perf_snapshot._one_interleaved_round(None, untraced))
        traced_rates.append(perf_snapshot._one_interleaved_round(None, traced))
    untraced_rates.sort()
    traced_rates.sort()
    off = untraced_rates[len(untraced_rates) // 2]
    on = traced_rates[len(traced_rates) // 2]
    lines = [
        "Driver round trips with tracing on vs off (current tree, "
        f"interleaved, {ROUNDS} rounds of {N_DRIVER:,}):",
        f"  tracing off : {off:12,.0f} roundtrips/s",
        f"  tracing on  : {on:12,.0f} roundtrips/s  "
        f"({off / on:.2f}x cost to enable)",
    ]
    save_artifact(artifact_dir, "tracing_cost.txt", "\n".join(lines))
    assert off > 0 and on > 0
