"""Ablation A7: forecast-driven work migration (§3.1.1).

"If a scheduler predicts that a client will be slow based on previous
performance, it may choose to migrate that client's current workload to
a machine that it predicts will be faster" — the AppLeS heritage the
paper cites. The classic case where this matters is the straggler
end-game: a fixed batch of work units, one slow machine holding the last
unit hostage.

Setup: 5 fast clients + 1 very slow client, a finite batch of equal
units. Measured: the makespan (time to complete the whole batch) with
migration enabled vs disabled. Migrated units carry their progress
snapshot, so no work is lost in flight.
"""

from repro.core.services.logging import LoggingServer
from repro.core.services.scheduler import QueueWorkSource, SchedulerServer
from repro.core.simdriver import SimDriver
from repro.ramsey.client import ModelEngine, RamseyClient
from repro.ramsey.tasks import make_unit
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

N_UNITS = 12
FAST = 5
UNIT_OPS = 3e9  # ~10 min on a fast host, ~100 min on the slow one
FAST_SPEED = 5e6
SLOW_SPEED = 5e5


def run_batch(migration: bool, seed: int = 41) -> float:
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1)

    sh = Host(env, HostSpec(name="svc", speed=1e7,
                            load_model=ConstantLoad(1.0)), streams)
    net.add_host(sh)
    units = [make_unit(f"u{i}", 43, 5, heuristic="tabu", seed=i,
                       ops_budget=UNIT_OPS) for i in range(N_UNITS)]
    work = QueueWorkSource(units)
    sched = SchedulerServer(
        "sched", work, report_period=60, reap_period=240,
        migrate_fraction=0.3 if migration else 0.0,
        min_rate_samples=2)
    SimDriver(env, net, sh, "sched", sched, streams).start()
    logsrv = LoggingServer("log")
    SimDriver(env, net, sh, "log", logsrv, streams).start()

    for i in range(FAST + 1):
        slow = i == FAST
        h = Host(env, HostSpec(
            name=f"cli{i}", speed=SLOW_SPEED if slow else FAST_SPEED,
            load_model=ConstantLoad(1.0)), streams)
        net.add_host(h)
        h.start()
        client = RamseyClient(
            f"cli{i}", schedulers=["svc/sched"], engine=ModelEngine(),
            infra="unix", loggers=["svc/log"],
            work_period=60, report_period=60, seed=i)
        SimDriver(env, net, h, "cli", client, streams).start()

    # Step until the whole batch is complete.
    horizon = 48 * 3600.0
    while len(work.completed) < N_UNITS and env.now < horizon:
        env.run(until=env.now + 120)
    return env.now if len(work.completed) == N_UNITS else float("inf")


def test_forecast_driven_migration(benchmark, artifact_dir):
    without = run_batch(migration=False)
    with_migration = benchmark.pedantic(
        lambda: run_batch(migration=True), rounds=1, iterations=1)

    lines = [
        "Ablation A7: forecast-driven work migration (§3.1.1)",
        f"  (batch of {N_UNITS} equal units; {FAST} fast clients at "
        f"{FAST_SPEED:.0e} iops, 1 straggler at {SLOW_SPEED:.0e})",
        f"  migration disabled: batch makespan {without / 3600:.2f} h",
        f"  migration enabled : batch makespan {with_migration / 3600:.2f} h",
        f"  speedup: {without / with_migration:.2f}x",
        "",
        "The scheduler's NWS rate forecasts spot the straggler and move",
        "its unit (with its progress snapshot) to a faster home.",
    ]
    save_artifact(artifact_dir, "ablation_a7_migration.txt", "\n".join(lines))

    assert with_migration < without
    assert without / with_migration > 1.3
