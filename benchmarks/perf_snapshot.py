"""Refresh the repo-root ``BENCH_engine.json`` / ``BENCH_kernels.json``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/perf_snapshot.py
    PYTHONPATH=src python benchmarks/perf_snapshot.py --quick
    PYTHONPATH=src python benchmarks/perf_snapshot.py \
        --before-tree /path/to/seed-worktree/src

Without ``--before-tree`` the script measures the current tree and updates
each workload's ``after`` block, preserving the committed ``before`` block
(the seed measurement). With ``--before-tree`` it alternates rounds
between the two checkouts in a single process — interleaving defeats
machine-level noise (turbo, cache state) that makes separate runs
incomparable — and rewrites both blocks.

Run it after a perf-relevant change and commit the refreshed JSON: the
files are the repository's perf trajectory, PR over PR.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))  # for `import workloads` when run as a script
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import perfjson  # noqa: E402
import workloads  # noqa: E402

#: workload name -> (callable, unit, work items, which JSON file)
WORKLOADS = {
    "timeout_storm": (workloads.run_timeout_storm, "events/s",
                      workloads.N_TIMEOUT_EVENTS, "engine"),
    "windowed_storm": (workloads.run_windowed_storm, "events/s",
                       workloads.N_TIMEOUT_EVENTS, "engine"),
    "message_pingpong": (workloads.run_message_pingpong, "roundtrips/s",
                         workloads.N_ROUNDTRIPS, "engine"),
    "tabu_search": (workloads.run_tabu_search, "moves/s",
                    workloads.N_TABU_STEPS, "kernels"),
    "clique_recount": (workloads.run_clique_recount, "recounts/s",
                       workloads.N_RECOUNTS, "kernels"),
    "metrics_ingest": (workloads.run_metrics_ingest, "records/s",
                       workloads.N_INGEST_RECORDS, "kernels"),
    "codec_roundtrip": (workloads.run_codec_roundtrip, "messages/s",
                        workloads.N_CODEC_MESSAGES, "kernels"),
    "codec_decode": (workloads.run_codec_decode, "messages/s",
                     workloads.N_CODEC_MESSAGES, "kernels"),
}


def _purge_repro_modules() -> None:
    for name in [m for m in sys.modules if m.split(".")[0] == "repro"]:
        del sys.modules[name]


def _one_interleaved_round(tree: str | None, fn) -> float:
    """One timed round of ``fn`` against ``tree`` (None = current checkout).

    Each call swaps which ``repro`` is importable and purges the loaded
    modules, so the first (untimed) warm-up invocation pays the re-import
    and the timed invocation measures only the workload.
    """
    if tree is not None:
        sys.path.insert(0, tree)
    _purge_repro_modules()
    try:
        fn()  # warm-up: re-import after the module purge, heat caches
        t0 = time.perf_counter()
        items = fn()
        elapsed = time.perf_counter() - t0
        return items / elapsed
    finally:
        if tree is not None:
            sys.path.remove(tree)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--before-tree", metavar="SRC_DIR", default=None,
                        help="src/ dir of the baseline checkout to measure "
                             "interleaved with the current tree")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="3 rounds instead of 5 (CI smoke / sanity)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="allow overwriting a committed 'before' "
                             "baseline with a new one (required when "
                             "--before-tree re-measures the origin)")
    args = parser.parse_args(argv)
    rounds = 3 if args.quick else args.rounds
    if args.before_tree and not (
            pathlib.Path(args.before_tree) / "repro").is_dir():
        # Without this, a bad path silently falls through to the current
        # tree and records a bogus 1.0x baseline.
        parser.error(f"--before-tree {args.before_tree!r} has no repro/ "
                     "package (point it at the checkout's src/ directory)")

    existing = {
        "engine": perfjson.load(perfjson.ENGINE_JSON),
        "kernels": perfjson.load(perfjson.KERNELS_JSON),
    }
    out: dict[str, dict] = {"engine": {}, "kernels": {}}

    for name, (fn, unit, items, which) in WORKLOADS.items():
        if args.before_tree:
            # Alternate single rounds between the trees.
            before_rates, after_rates = [], []
            for _ in range(rounds):
                before_rates.append(
                    _one_interleaved_round(args.before_tree, fn))
                after_rates.append(_one_interleaved_round(None, fn))
            before_rates.sort()
            after_rates.sort()
            before = {
                "best": round(before_rates[-1], 1),
                "median": round(before_rates[len(before_rates) // 2], 1),
                "source": "baseline tree measured interleaved, same process",
            }
            after = {
                "best": round(after_rates[-1], 1),
                "median": round(after_rates[len(after_rates) // 2], 1),
            }
        else:
            fn()  # warm-up (imports, allocator, branch caches)
            after = perfjson.measure_rate(fn, rounds=rounds)
            prev = existing[which]
            before = (prev["workloads"].get(name, {}).get("before")
                      if prev else None)
        spec = {"unit": unit, "work_items": items, "rounds": rounds,
                "after": after}
        if before:
            spec["before"] = before
        out[which][name] = spec
        shown = f"{after['median']:,.0f} {unit} (best {after['best']:,.0f})"
        if before:
            shown += f"  [{after['median'] / before['median']:.2f}x vs before]"
        print(f"{name:18s} {shown}")

    for which, path in (("engine", perfjson.ENGINE_JSON),
                        ("kernels", perfjson.KERNELS_JSON)):
        conflicts = perfjson.baseline_conflicts(path, out[which])
        if conflicts and not args.rebaseline:
            parser.error(
                f"{path.name}: refusing to overwrite the committed "
                f"'before' baseline for {', '.join(conflicts)}; the "
                "before block anchors the whole perf trajectory. Rerun "
                "with --rebaseline to accept the new baseline.")
    perfjson.write(perfjson.ENGINE_JSON, out["engine"])
    perfjson.write(perfjson.KERNELS_JSON, out["kernels"])
    print(f"wrote {perfjson.ENGINE_JSON.name}, {perfjson.KERNELS_JSON.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
