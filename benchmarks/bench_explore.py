"""Refresh the repo-root ``BENCH_explore.json`` model-exploration curves.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_explore.py
    PYTHONPATH=src python benchmarks/bench_explore.py --quick --check

Benchmarks the EMEWS-style :class:`ExploreQueue` against a real gateway
process (the same ``HttpServer`` + ``GatewayCore`` + journal-backed
``WorkQueue`` stack ``repro explore`` deploys; the child also executes
evaluation units in its step loop, so results flow back):

* a **push** cell — one ``POST /jobs`` per task versus one ``POST
  /jobs/batch`` for the whole generation, quantifying the journal-flush
  amortization (satellite: ``specs/s`` single vs batch, speedup);
* a **pump** cell — sustained ME throughput: waves of evaluations
  pushed and popped through the queue; tasks/s and submit→pop p50/p99;
* a **storm** cell — the same pump while a :class:`GatewayStorm` of
  synthetic HTTP users hammers the same gateway (the ME must hold up on
  a *shared* control plane, not a private one);
* an **me** cell — a full :class:`HillClimber` round trip via
  :func:`run_driver` (generations of dependent batches), wall seconds
  per generation;
* a **sim** row — the deterministic twin run twice, byte-identical.

The gate (``--check``) asserts the acceptance floors: pump tasks/s,
submit→pop p99, batch speedup >= 1, and sim byte-determinism.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

EXPLORE_JSON = HERE.parent / "BENCH_explore.json"

#: Acceptance floors (see --check).
PUMP_TASKS_PER_S_FLOOR = 200.0
POP_P99_MS_CEILING = 500.0
BATCH_SPEEDUP_FLOOR = 2.0


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve_child(port: int, journal_path: str) -> int:
    """Child mode: one gateway process that also *executes* evaluation
    units between IO steps — a miniature one-process grid, so the bench
    measures the queue machinery rather than worker placement."""
    from repro.control import (FileJournal, GatewayCore, HttpServer,
                               WorkQueue, render_payload)
    from repro.core.services.kinds import registry
    from repro.explore.evals import execute_unit  # registers nothing
    from repro.explore import engine as _engine  # noqa: F401  (registers kind)

    work = WorkQueue(journal=FileJournal(journal_path), prefix="bench-ex")
    work.clock = time.monotonic
    core = GatewayCore("bench-ex-gw", work, started_at=time.monotonic())

    def app(request):
        status, payload, route = core.handle(
            request.method, request.path, request.body, time.monotonic())
        return render_payload(status, payload, route, close=request.close)

    last: Exception | None = None
    for _ in range(100):
        try:
            server = HttpServer("127.0.0.1", port, app)
            break
        except OSError as exc:
            last = exc
            time.sleep(0.05)
    else:
        raise SystemExit(f"gateway bind failed: {last}")
    while True:
        server.step(0.002)
        for _ in range(64):  # drain a bounded burst of work per IO step
            unit = work.next_unit()
            if unit is None:
                break
            kind = registry.kind_of(unit)
            if kind == "explore.eval":
                work.complete(str(unit["id"]), execute_unit(unit))
            else:  # push cells submit inert specs; finish them trivially
                work.complete(str(unit["id"]), {"bench": True})


class GatewayProcess:
    """Spawn one executing-gateway child on a fixed port + journal."""

    def __init__(self, port: int, journal: str) -> None:
        self.port = port
        self.journal = journal
        self.proc: subprocess.Popen | None = None

    def spawn(self) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, str(HERE / "bench_explore.py"),
             "--_serve", str(self.port), self.journal],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def wait_healthy(self, timeout: float = 15.0) -> None:
        from repro.control import GatewayClient, HttpError

        deadline = time.monotonic() + timeout
        with GatewayClient(f"127.0.0.1:{self.port}", timeout=2.0) as probe:
            while time.monotonic() < deadline:
                try:
                    probe.health()
                    return
                except HttpError:
                    time.sleep(0.1)
        raise RuntimeError("gateway never became healthy")

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait()

    def __enter__(self) -> "GatewayProcess":
        self.spawn()
        self.wait_healthy()
        return self

    def __exit__(self, *exc) -> None:
        self.kill()


def _specs(n: int, seed: int) -> list[dict]:
    from repro.explore import make_eval_spec

    return [make_eval_spec("sphere", {"x": i * 0.01, "y": -i * 0.02},
                           seed=seed, tag={"i": i})
            for i in range(n)]


def _push_cell(port: int, n: int, seed: int) -> dict:
    """Single POST /jobs per spec vs one POST /jobs/batch: the journal
    flush amortization, measured as accepted specs per second."""
    from repro.control import GatewayClient

    with GatewayClient(f"127.0.0.1:{port}", timeout=5.0) as client:
        specs = _specs(n, seed)
        t0 = time.monotonic()
        single_ids = [str(client.submit(spec)["id"]) for spec in specs]
        single_s = time.monotonic() - t0

        specs = _specs(n, seed + 1)
        t0 = time.monotonic()
        batch_ids = client.submit_batch(specs)
        batch_s = time.monotonic() - t0
    assert len(single_ids) == n and len(batch_ids) == n
    return {
        "cell": "push",
        "tasks": n,
        "single_s": round(single_s, 4),
        "batch_s": round(batch_s, 4),
        "single_specs_per_s": round(n / single_s, 1),
        "batch_specs_per_s": round(n / batch_s, 1),
        "batch_speedup": round(single_s / batch_s, 2),
    }


def _pump_cell(port: int, tasks: int, wave: int, seed: int,
               storm_clients: int = 0) -> dict:
    """Sustained ME throughput: push in waves, pop until drained.
    With ``storm_clients`` > 0 a synthetic HTTP storm shares the
    gateway for the whole cell."""
    from repro.control import GatewayClient, GatewayStorm
    from repro.explore import ExploreQueue

    storm = None
    if storm_clients:
        storm = GatewayStorm("127.0.0.1", port, clients=storm_clients,
                             seed=seed + 99)
    try:
        pump = (lambda: storm.step(0.001)) if storm is not None else None
        queue = ExploreQueue(
            GatewayClient(f"127.0.0.1:{port}", timeout=5.0),
            batch=True, poll=0.002, pump=pump)
        try:
            remaining = list(_specs(tasks, seed))
            t0 = time.monotonic()
            while remaining or queue.outstanding:
                if remaining and len(queue.outstanding) < wave:
                    queue.push_tasks(remaining[:wave])
                    del remaining[:wave]
                queue.pop_results(min_results=1, timeout=30.0)
            elapsed = time.monotonic() - t0
            stats = queue.stats()
        finally:
            queue.client.close()
    finally:
        if storm is not None:
            storm.quiesce(grace=2.0)
            storm.close()
    row = {
        "cell": "storm" if storm_clients else "pump",
        "tasks": tasks,
        "wave": wave,
        "duration_s": round(elapsed, 3),
        "tasks_per_s": round(tasks / elapsed, 1),
        "pop_p50_ms": round(
            _percentile(queue.pop_latencies_ms, 0.50), 2),
        "pop_p99_ms": round(
            _percentile(queue.pop_latencies_ms, 0.99), 2),
        "popped": stats["popped"],
    }
    if storm_clients:
        row["storm_clients"] = storm_clients
    return row


def _me_cell(port: int, seed: int, scale: float) -> dict:
    """A full iterative-ME round trip: HillClimber generations of
    dependent batches through the queue."""
    from repro.control import GatewayClient
    from repro.explore import ExploreQueue, make_driver, run_driver

    driver = make_driver("hill", seed=seed, fn="forecast",
                         ops_budget=1_000.0, scale=scale)
    queue = ExploreQueue(GatewayClient(f"127.0.0.1:{port}", timeout=5.0),
                         batch=True, poll=0.002)
    try:
        summary = run_driver(driver, queue, timeout=120.0, poll_timeout=10.0)
    finally:
        queue.client.close()
    rounds = len(summary.get("rounds") or ())
    return {
        "cell": "me",
        "algo": "hill",
        "evals": summary["evals"],
        "generations": summary.get("generations"),
        "duration_s": round(summary["elapsed"], 3),
        "evals_per_s": round(summary["evals"] / summary["elapsed"], 1),
        "s_per_generation": (round(summary["elapsed"] / rounds, 3)
                             if rounds else None),
        "timed_out": summary["timed_out"],
    }


def _sim_cell(seed: int) -> dict:
    """The deterministic twin, run twice: byte-identical or bust."""
    from repro.explore import run_sim_explore

    t0 = time.monotonic()
    a = run_sim_explore(seed=seed, algo="hill", duration=240.0, scale=0.5,
                        restart_after=5.0, corrupt_first=1)
    one = time.monotonic() - t0
    b = run_sim_explore(seed=seed, algo="hill", duration=240.0, scale=0.5,
                        restart_after=5.0, corrupt_first=1)
    identical = (json.dumps(a, sort_keys=True)
                 == json.dumps(b, sort_keys=True))
    return {
        "cell": "sim",
        "evals": a["driver"]["evals"],
        "violations": len(a["violations"]),
        "results_rejected": a["gateway"]["work"]["results_rejected"],
        "restarts": a["gateway"]["restarts"],
        "byte_identical": identical,
        "wall_s": round(one, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=400,
                        help="evaluations in the push/pump/storm cells")
    parser.add_argument("--wave", type=int, default=50,
                        help="max outstanding evaluations while pumping")
    parser.add_argument("--storm", type=int, default=50,
                        help="synthetic HTTP users in the storm cell")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="HillClimber scale in the me cell")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small cells (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the acceptance floors hold")
    parser.add_argument("--out", type=str, default=str(EXPLORE_JSON))
    parser.add_argument("--_serve", nargs=2, metavar=("PORT", "JOURNAL"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args._serve:
        return _serve_child(int(args._serve[0]), args._serve[1])

    tasks, storm, scale = args.tasks, args.storm, args.scale
    if args.quick:
        tasks = min(tasks, 120)
        storm = min(storm, 20)
        scale = min(scale, 0.5)

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-ex-") as tmp:
        port = _free_port()
        with GatewayProcess(port, os.path.join(tmp, "push.jsonl")):
            rows.append(_push_cell(port, tasks, seed=args.seed))
        print(f"push  {tasks:>5} specs: single "
              f"{rows[-1]['single_specs_per_s']:>8,.0f}/s, batch "
              f"{rows[-1]['batch_specs_per_s']:>8,.0f}/s "
              f"({rows[-1]['batch_speedup']:.1f}x)")

        port = _free_port()
        with GatewayProcess(port, os.path.join(tmp, "pump.jsonl")):
            rows.append(_pump_cell(port, tasks, args.wave,
                                   seed=args.seed + 1))
        print(f"pump  {tasks:>5} evals: "
              f"{rows[-1]['tasks_per_s']:>8,.1f} tasks/s, "
              f"pop p99 {rows[-1]['pop_p99_ms']:.1f} ms")

        port = _free_port()
        with GatewayProcess(port, os.path.join(tmp, "storm.jsonl")):
            rows.append(_pump_cell(port, tasks, args.wave,
                                   seed=args.seed + 2,
                                   storm_clients=storm))
        print(f"storm {tasks:>5} evals + {storm} HTTP users: "
              f"{rows[-1]['tasks_per_s']:>8,.1f} tasks/s, "
              f"pop p99 {rows[-1]['pop_p99_ms']:.1f} ms")

        port = _free_port()
        with GatewayProcess(port, os.path.join(tmp, "me.jsonl")):
            rows.append(_me_cell(port, seed=args.seed + 3, scale=scale))
        print(f"me    {rows[-1]['evals']:>5} evals over "
              f"{rows[-1]['generations']} generations: "
              f"{rows[-1]['duration_s']:.2f}s "
              f"({rows[-1]['s_per_generation']}s/generation)")

    rows.append(_sim_cell(seed=args.seed + 4))
    print(f"sim   {rows[-1]['evals']:>5} evals: byte_identical="
          f"{rows[-1]['byte_identical']}, "
          f"{rows[-1]['results_rejected']} rejected, "
          f"{rows[-1]['restarts']} restart(s)")

    report = {
        "bench": "explore",
        "floors": {
            "pump_tasks_per_s": PUMP_TASKS_PER_S_FLOOR,
            "pop_p99_ms": POP_P99_MS_CEILING,
            "batch_speedup": BATCH_SPEEDUP_FLOOR,
            "sim_byte_identical": True,
        },
        "rows": rows,
        "host_cpus": os.cpu_count(),
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote: {out_path}")

    if args.check:
        pump_row = next(r for r in rows if r["cell"] == "pump")
        push_row = next(r for r in rows if r["cell"] == "push")
        sim_row = next(r for r in rows if r["cell"] == "sim")
        me_row = next(r for r in rows if r["cell"] == "me")
        failures = []
        if pump_row["tasks_per_s"] < PUMP_TASKS_PER_S_FLOOR:
            failures.append(
                f"pump tasks/s {pump_row['tasks_per_s']:,.1f} < "
                f"floor {PUMP_TASKS_PER_S_FLOOR:,.1f}")
        if pump_row["pop_p99_ms"] > POP_P99_MS_CEILING:
            failures.append(
                f"pop p99 {pump_row['pop_p99_ms']:.1f} ms > "
                f"ceiling {POP_P99_MS_CEILING:.1f} ms")
        if push_row["batch_speedup"] < BATCH_SPEEDUP_FLOOR:
            failures.append(
                f"batch speedup {push_row['batch_speedup']:.2f}x < "
                f"floor {BATCH_SPEEDUP_FLOOR:.2f}x")
        if not sim_row["byte_identical"]:
            failures.append("sim twin runs were not byte-identical")
        if sim_row["violations"]:
            failures.append(
                f"sim twin reported {sim_row['violations']} violation(s)")
        if me_row["timed_out"]:
            failures.append("hill-climber round trip timed out")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("check: OK (floors hold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
