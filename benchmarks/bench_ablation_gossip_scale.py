"""Ablation A4: Gossip synchronization cost scaling (§2.3).

Paper: "Because each Gossip does a pair-wise comparison of application
component state, N^2 comparisons are required for N application
components. ... We believe that the prototype state-exchange protocol we
implemented for SC98 can be substantially optimized."

Three generations of the state-exchange protocol are implemented, and
this bench draws the whole curve — each design measured at the job it
does, state exchange, as the synchronized population doubles:

1. **SC98 pairwise** (``pairwise_compare=True``): every incoming record
   is compared against every other component's last-seen state —
   quadratic comparison growth;
2. **freshest-record full sync** (``sync_mode="full"``): one freshest
   record per type, and pool members ship their whole freshest map to a
   random peer each round — the receiving side pays one comparison per
   record per round, linear in registered state;
3. **digest/delta anti-entropy** (``sync_mode="digest"``, DESIGN §15):
   converged peers exchange root hashes and only diverged records are
   compared — comparison cost follows the *write rate* (divergence), not
   the population.

The assertions pin the three growth exponents: ~quadratic, ~linear, and
~flat (the digest curve's comparisons are dominated by the constant
churn of the fixed set of chatty writers, not by N).
"""

import numpy as np

from repro.core.component import Component
from repro.core.gossip import ComparatorRegistry, GossipAgent, GossipServer, StateStore
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

DURATION = 1800.0


class ChattyWorker(Component):
    """Writes fresh state before every poll, maximizing comparisons."""

    def __init__(self, name, well_known, mtype="STATE", chatty=True):
        super().__init__(name)
        self.well_known = well_known
        self.mtype = mtype
        self.chatty = chatty
        self.writes = 0

    def on_start(self, now):
        self.store = StateStore(self.contact)
        self.store.register(self.mtype, initial={"v": 0}, now=now)
        self.agent = GossipAgent(self.store, self.well_known, register_period=60)
        return self.agent.on_start(now, self.contact)

    def on_message(self, message, now):
        if message.mtype == "GOS_POLL" and self.chatty:
            self.writes += 1
            self.store.set_local(self.mtype, {"v": self.writes}, now)
        if GossipAgent.handles(message.mtype):
            return self.agent.on_message(message, now, self.contact)
        return []

    def on_timer(self, key, now):
        if GossipAgent.handles_timer(key):
            return self.agent.on_timer(key, now, self.contact)
        return []


def run_pool(n_components: int, pairwise: bool, seed: int = 9) -> int:
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1)
    gh = Host(env, HostSpec(name="gos0"), streams)
    net.add_host(gh)
    gossip = GossipServer("gos0", ["gos0/gossip"],
                          comparators=ComparatorRegistry(),
                          poll_period=30.0, sync_period=1e9,
                          pairwise_compare=pairwise)
    SimDriver(env, net, gh, "gossip", gossip, streams).start()
    for i in range(n_components):
        h = Host(env, HostSpec(name=f"w{i}"), streams)
        net.add_host(h)
        SimDriver(env, net, h, "app",
                  ChattyWorker(f"w{i}", ["gos0/gossip"]), streams).start()
    env.run(until=DURATION)
    return gossip.stats.comparisons


def run_sync_pool(n_components: int, sync_mode: str, seed: int = 9) -> int:
    """Pool-plane cost: two Gossips synchronize N registered state types
    (one per worker); a fixed handful of workers keep writing, the rest
    are quiet after one initial write. Returns the comparator invocations
    spent on the *sync plane* — the state-exchange cost under measure."""
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1)
    well_known = ["gos0/gossip", "gos1/gossip"]
    gossips = []
    for g in range(2):
        gh = Host(env, HostSpec(name=f"gos{g}"), streams)
        net.add_host(gh)
        gossip = GossipServer(f"gos{g}", well_known,
                              comparators=ComparatorRegistry(),
                              poll_period=30.0, sync_period=10.0,
                              sync_mode=sync_mode)
        SimDriver(env, net, gh, "gossip", gossip, streams).start()
        gossips.append(gossip)
    chatty = 4
    for i in range(n_components):
        h = Host(env, HostSpec(name=f"w{i}"), streams)
        net.add_host(h)
        SimDriver(env, net, h, "app",
                  ChattyWorker(f"w{i}", well_known, mtype=f"STATE_{i:03d}",
                               chatty=(i < chatty)), streams).start()
    env.run(until=DURATION)
    return sum(g.stats.sync_comparisons for g in gossips)


def growth_exponent(ns, counts):
    """Least-squares slope of log(count) vs log(n)."""
    return float(np.polyfit(np.log(ns), np.log(np.maximum(counts, 1)), 1)[0])


def test_gossip_comparison_scaling(benchmark, artifact_dir):
    ns = [4, 8, 16, 32]
    pairwise = [run_pool(n, pairwise=True) for n in ns]
    optimized = [run_pool(n, pairwise=False) for n in ns]
    full_sync = [run_sync_pool(n, sync_mode="full") for n in ns]
    digest = [run_sync_pool(n, sync_mode="digest") for n in ns]
    benchmark.pedantic(lambda: run_pool(16, pairwise=False),
                       rounds=1, iterations=1)

    exp_pair = growth_exponent(ns, pairwise)
    exp_opt = growth_exponent(ns, optimized)
    exp_full = growth_exponent(ns, full_sync)
    exp_digest = growth_exponent(ns, digest)

    lines = ["Ablation A4: gossip state-comparison scaling, three designs",
             f"  ({DURATION:.0f}s horizons)",
             "",
             "  poll plane (every component dirties state each poll):",
             "  N components | prototype (pairwise) | optimized (freshest)"]
    for n, p, o in zip(ns, pairwise, optimized):
        lines.append(f"  {n:>12} | {p:>20,} | {o:>19,}")
    lines.append("")
    lines.append("  sync plane (N registered types, 4 chatty writers):")
    lines.append("  N components | full-state sync | digest/delta")
    for n, f, d in zip(ns, full_sync, digest):
        lines.append(f"  {n:>12} | {f:>15,} | {d:>12,}")
    lines.append("")
    lines.append(f"  growth exponents: prototype ~N^{exp_pair:.2f}, "
                 f"freshest ~N^{exp_opt:.2f}, full-sync ~N^{exp_full:.2f}, "
                 f"digest ~N^{exp_digest:.2f}")
    lines.append("The paper's N^2 cost is real in the prototype design; the")
    lines.append("freshest-record optimization is linear; the digest/delta")
    lines.append("plane's cost follows divergence, not population.")
    save_artifact(artifact_dir, "ablation_a4_gossip_scale.txt", "\n".join(lines))

    assert exp_pair > 1.6, f"pairwise should be ~quadratic, got {exp_pair:.2f}"
    assert exp_opt < 1.4, f"optimized should be ~linear, got {exp_opt:.2f}"
    assert exp_full > 0.6, f"full sync should grow with state, got {exp_full:.2f}"
    assert exp_digest < 0.5, (
        f"digest cost should track divergence, not N, got {exp_digest:.2f}")
    assert exp_digest < exp_full < exp_pair
    assert all(f >= d for f, d in zip(full_sync, digest))
