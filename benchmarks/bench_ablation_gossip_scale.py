"""Ablation A4: Gossip synchronization cost scaling (§2.3).

Paper: "Because each Gossip does a pair-wise comparison of application
component state, N^2 comparisons are required for N application
components. ... We believe that the prototype state-exchange protocol we
implemented for SC98 can be substantially optimized."

Both designs are implemented: ``pairwise_compare=True`` replays the SC98
prototype; the default compares each incoming record against the single
freshest record. This bench measures comparison counts as the component
population doubles and verifies the prototype's quadratic growth against
the optimized design's linear growth.
"""

import numpy as np

from repro.core.component import Component
from repro.core.gossip import ComparatorRegistry, GossipAgent, GossipServer, StateStore
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

DURATION = 1800.0


class ChattyWorker(Component):
    """Writes fresh state before every poll, maximizing comparisons."""

    def __init__(self, name, well_known):
        super().__init__(name)
        self.well_known = well_known
        self.writes = 0

    def on_start(self, now):
        self.store = StateStore(self.contact)
        self.store.register("STATE", initial={"v": 0}, now=now)
        self.agent = GossipAgent(self.store, self.well_known, register_period=60)
        return self.agent.on_start(now, self.contact)

    def on_message(self, message, now):
        if message.mtype == "GOS_POLL":
            self.writes += 1
            self.store.set_local("STATE", {"v": self.writes}, now)
        if GossipAgent.handles(message.mtype):
            return self.agent.on_message(message, now, self.contact)
        return []

    def on_timer(self, key, now):
        if GossipAgent.handles_timer(key):
            return self.agent.on_timer(key, now, self.contact)
        return []


def run_pool(n_components: int, pairwise: bool, seed: int = 9) -> int:
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1)
    gh = Host(env, HostSpec(name="gos0"), streams)
    net.add_host(gh)
    gossip = GossipServer("gos0", ["gos0/gossip"],
                          comparators=ComparatorRegistry(),
                          poll_period=30.0, sync_period=1e9,
                          pairwise_compare=pairwise)
    SimDriver(env, net, gh, "gossip", gossip, streams).start()
    for i in range(n_components):
        h = Host(env, HostSpec(name=f"w{i}"), streams)
        net.add_host(h)
        SimDriver(env, net, h, "app",
                  ChattyWorker(f"w{i}", ["gos0/gossip"]), streams).start()
    env.run(until=DURATION)
    return gossip.stats.comparisons


def growth_exponent(ns, counts):
    """Least-squares slope of log(count) vs log(n)."""
    return float(np.polyfit(np.log(ns), np.log(np.maximum(counts, 1)), 1)[0])


def test_gossip_comparison_scaling(benchmark, artifact_dir):
    ns = [4, 8, 16, 32]
    pairwise = [run_pool(n, pairwise=True) for n in ns]
    optimized = [run_pool(n, pairwise=False) for n in ns]
    benchmark.pedantic(lambda: run_pool(16, pairwise=False),
                       rounds=1, iterations=1)

    exp_pair = growth_exponent(ns, pairwise)
    exp_opt = growth_exponent(ns, optimized)

    lines = ["Ablation A4: gossip state-comparison scaling",
             f"  ({DURATION:.0f}s, every component dirties state each poll)",
             "",
             "  N components | prototype (pairwise) | optimized (freshest)"]
    for n, p, o in zip(ns, pairwise, optimized):
        lines.append(f"  {n:>12} | {p:>20,} | {o:>19,}")
    lines.append("")
    lines.append(f"  growth exponents: prototype ~N^{exp_pair:.2f}, "
                 f"optimized ~N^{exp_opt:.2f}")
    lines.append("The paper's N^2 cost is real in the prototype design and")
    lines.append("removed by the optimization it anticipated.")
    save_artifact(artifact_dir, "ablation_a4_gossip_scale.txt", "\n".join(lines))

    assert exp_pair > 1.6, f"pairwise should be ~quadratic, got {exp_pair:.2f}"
    assert exp_opt < 1.4, f"optimized should be ~linear, got {exp_opt:.2f}"
    assert all(p >= o for p, o in zip(pairwise, optimized))
