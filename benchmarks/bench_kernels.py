"""Ramsey-kernel, metrics and codec throughput.

The compute side of the reproduction: tabu-search moves (the §3 search
heuristics' unit of progress), full clique recounts, perf-record
ingestion into the measurement plane, and lingua-franca codec round
trips. Together with ``bench_engine.py`` these are the repository's
perf-regression harness; ``benchmarks/perf_snapshot.py`` records the same
workloads to the repo-root ``BENCH_*.json`` trajectory files.

With ``REPRO_PERF_STRICT=1`` each bench fails if throughput regresses
more than 30% below the committed ``BENCH_kernels.json`` baseline.
"""

import os

import perfjson
from conftest import save_artifact
from workloads import (
    N_CODEC_MESSAGES,
    N_INGEST_RECORDS,
    N_RECOUNTS,
    N_TABU_STEPS,
    run_clique_recount,
    run_codec_decode,
    run_codec_roundtrip,
    run_metrics_ingest,
    run_tabu_search,
)

N_STEPS = int(os.environ.get("REPRO_BENCH_TABU_STEPS", N_TABU_STEPS))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
STRICT = os.environ.get("REPRO_PERF_STRICT") == "1"


def _maybe_enforce_baseline(workload: str, rate: float) -> None:
    if not STRICT:
        return
    problem = perfjson.check_regression(perfjson.KERNELS_JSON, workload, rate)
    assert problem is None, problem


def test_tabu_moves_throughput(benchmark, artifact_dir):
    benchmark.pedantic(run_tabu_search, args=(N_STEPS,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    moves_per_sec = N_STEPS / benchmark.stats["median"]
    lines = [
        "Ramsey tabu search on K_43 (R(5,5) target, 8 candidate probes):",
        f"  {moves_per_sec:,.0f} moves/s median "
        f"({N_STEPS} steps x {ROUNDS} rounds)",
    ]
    save_artifact(artifact_dir, "kernel_tabu_throughput.txt", "\n".join(lines))
    assert moves_per_sec > 50  # sanity floor
    _maybe_enforce_baseline("tabu_search", moves_per_sec)


def test_clique_recount_throughput(benchmark, artifact_dir):
    benchmark.pedantic(run_clique_recount, args=(N_RECOUNTS,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    recounts_per_sec = N_RECOUNTS / benchmark.stats["median"]
    lines = [
        "Full monochromatic-K_5 recount of a K_43 coloring:",
        f"  {recounts_per_sec:,.1f} recounts/s median",
    ]
    save_artifact(artifact_dir, "kernel_recount_throughput.txt",
                  "\n".join(lines))
    _maybe_enforce_baseline("clique_recount", recounts_per_sec)


def test_metrics_ingest_throughput(benchmark, artifact_dir):
    benchmark.pedantic(run_metrics_ingest, args=(N_INGEST_RECORDS,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    records_per_sec = N_INGEST_RECORDS / benchmark.stats["median"]
    lines = [
        "Perf-record ingestion into the TimeBuckets measurement plane:",
        f"  {records_per_sec:,.0f} records/s median "
        f"({N_INGEST_RECORDS:,} records x {ROUNDS} rounds)",
    ]
    save_artifact(artifact_dir, "metrics_ingest_throughput.txt",
                  "\n".join(lines))
    _maybe_enforce_baseline("metrics_ingest", records_per_sec)


def test_codec_roundtrip_throughput(benchmark, artifact_dir):
    benchmark.pedantic(run_codec_roundtrip, args=(N_CODEC_MESSAGES,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    msgs_per_sec = N_CODEC_MESSAGES / benchmark.stats["median"]
    lines = [
        "Lingua-franca encode+decode of a repeated control message:",
        f"  {msgs_per_sec:,.0f} messages/s median "
        f"({N_CODEC_MESSAGES:,} messages x {ROUNDS} rounds)",
    ]
    save_artifact(artifact_dir, "codec_throughput.txt", "\n".join(lines))
    _maybe_enforce_baseline("codec_roundtrip", msgs_per_sec)


def test_codec_decode_throughput(benchmark, artifact_dir):
    benchmark.pedantic(run_codec_decode, args=(N_CODEC_MESSAGES,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    msgs_per_sec = N_CODEC_MESSAGES / benchmark.stats["median"]
    lines = [
        "Lingua-franca decode-only (zero-copy deframe + parse):",
        f"  {msgs_per_sec:,.0f} messages/s median "
        f"({N_CODEC_MESSAGES:,} messages x {ROUNDS} rounds)",
    ]
    save_artifact(artifact_dir, "codec_decode_throughput.txt",
                  "\n".join(lines))
    _maybe_enforce_baseline("codec_decode", msgs_per_sec)
