"""§7: the four Computational-Grid criteria, quantified.

The paper closes by claiming EveryWare is the first system to meet
Foster & Kesselman's criteria — pervasive, dependable, consistent,
inexpensive — "and to demonstrate the degree to which they are met
quantitatively". This bench computes those quantities from the run.
"""

import numpy as np

from repro.experiments.metrics import coefficient_of_variation
from repro.experiments.sc98 import offset_to_clock

from conftest import save_artifact


def test_grid_criteria(benchmark, sc98_results, artifact_dir):
    world, results = sc98_results
    s = results.series
    skip = max(2, len(s.total_rate) // 12)

    def analyze():
        infra_count = sum(1 for v in s.rate_by_infra.values() if np.sum(v) > 0)
        # Dependable: fraction of measurement buckets (post-deployment)
        # during which the application delivered work.
        delivering = float(np.mean(s.total_rate[skip:] > 0))
        total_cv = coefficient_of_variation(s.total_rate, skip=skip)
        part_cvs = [coefficient_of_variation(v, skip=skip)
                    for v in s.rate_by_infra.values()]
        return infra_count, delivering, total_cv, part_cvs

    infra_count, delivering, total_cv, part_cvs = benchmark(analyze)

    speed_spread = [h.spec.speed for a in world.adapters for h in a.hosts]
    lines = [
        "Grid criteria (paper §7), quantified from this run:",
        f"  pervasive  : {infra_count}/7 infrastructures delivered cycles;",
        f"               host speeds span {min(speed_spread):,.0f} .. "
        f"{max(speed_spread):,.0f} iops (browser to Tera-MTA class)",
        f"  dependable : application delivered work in {delivering:.1%} of "
        f"5-min windows",
        f"  consistent : total CV {total_cv:.3f} vs per-infrastructure "
        f"median {np.median(part_cvs):.3f} / max {max(part_cvs):.3f}",
        "  inexpensive: zero dedicated resources — every host is shared,",
        "               reclaimable, and accessed as an unprivileged guest",
        "               (Condor reclamations alone: "
        f"{results.condor_reclamations})",
    ]
    save_artifact(artifact_dir, "grid_criteria.txt", "\n".join(lines))

    assert infra_count == 7
    assert delivering > 0.99
    assert total_cv < np.median(part_cvs)
    assert results.condor_reclamations > 0  # genuinely non-dedicated
