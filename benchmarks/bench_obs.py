"""Refresh the repo-root ``BENCH_obs.json`` observability-cost curves.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --quick --check

Two questions, two cell families:

* **trace cells** — the same ``GatewayStorm`` submission storm is run
  against a gateway child with end-to-end job tracing OFF and then ON
  (ingress span, journal/assign/done instants, TraceContext on every
  unit). The median of the per-round paired off/on throughput ratios
  is the price of tracing on the control plane's hot path; the gate
  caps it at 5% (12% under --quick, whose 8-second cells cannot
  resolve finer against CI scheduling noise).
* **flight cells** — an in-process ``FlightRecorder`` at ring
  capacities 1k and 10k is fed several rings' worth of spans, then
  sealed and recovered with ``load_flight``. Reported: spool
  throughput, seal/load latency, and on-disk dump size.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

OBS_JSON = HERE.parent / "BENCH_obs.json"

#: Acceptance ceiling: tracing may cost at most this much throughput.
TRACE_DELTA_PCT_CEILING = 5.0
#: The --quick ceiling is looser for the same reason net-smoke's floors
#: are: an 8-second cell on a shared (often single-core) CI box cannot
#: resolve the ~2% true cost against scheduling noise; the quick gate
#: exists to catch a gross regression (a span per request, an O(n) scan
#: on the submit path), not to re-measure the committed baseline.
QUICK_TRACE_DELTA_PCT_CEILING = 12.0
FLIGHT_CAPACITIES = (1_000, 10_000)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve_child(port: int, journal_path: str, trace: bool) -> int:
    """Child mode: one gateway process, tracing on or off."""
    from repro.control import (FileJournal, GatewayCore, HttpServer,
                               WorkQueue, render_payload)
    from repro.core.telemetry import Telemetry
    from repro.obs.jobtrace import ID_BLOCK

    telemetry = Telemetry(trace=True, id_base=ID_BLOCK) if trace else None
    work = WorkQueue(journal=FileJournal(journal_path), prefix="bench-job")
    work.clock = time.monotonic
    core = GatewayCore("bench-gw", work, telemetry=telemetry,
                       started_at=time.monotonic())

    def app(request):
        status, payload, route = core.handle(
            request.method, request.path, request.body, time.monotonic())
        return render_payload(status, payload, route, close=request.close)

    server = HttpServer("127.0.0.1", port, app)
    tracer = telemetry.tracer if telemetry is not None else None
    while True:
        server.step(0.05)
        if tracer is not None:
            # Model a healthy span shipper: everything taken, list bounded.
            tracer.trim(tracer.dropped + len(tracer.spans))


def _spawn_gateway(port: int, journal: str, trace: bool):
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(HERE / "bench_obs.py"), "--_serve",
         str(port), journal, str(int(trace))],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _wait_healthy(port: int, timeout: float = 15.0) -> None:
    from repro.control import GatewayClient, HttpError

    deadline = time.monotonic() + timeout
    with GatewayClient(f"127.0.0.1:{port}", timeout=2.0) as probe:
        while time.monotonic() < deadline:
            try:
                probe.health()
                return
            except HttpError:
                time.sleep(0.1)
    raise RuntimeError("gateway never became healthy")


def _trace_cells(clients: int, rounds: int, burst_s: float,
                 seed: int) -> list[dict]:
    """Storm two gateways — tracing off and on — in alternating bursts.

    Both children are alive for the whole measurement and each round
    flips which mode goes first, so machine-wide throughput drift (the
    dominant noise source on shared hosts) hits both modes equally
    instead of masquerading as tracing cost.
    """
    import signal

    from repro.control import GatewayStorm

    modes = ("trace-off", "trace-on")
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        ports = {m: _free_port() for m in modes}
        procs = {m: _spawn_gateway(ports[m],
                                   os.path.join(tmp, f"{m}.jsonl"),
                                   trace=(m == "trace-on"))
                 for m in modes}
        storms = {}
        try:
            for mode in modes:
                _wait_healthy(ports[mode])
                storms[mode] = GatewayStorm("127.0.0.1", ports[mode],
                                            clients=clients, seed=seed)
            totals = {m: {"submitted": 0, "elapsed": 0.0} for m in modes}
            rates = {m: [] for m in modes}
            seen = {m: 0 for m in modes}
            for rnd in range(rounds):
                order = modes if rnd % 2 == 0 else tuple(reversed(modes))
                for mode in order:
                    storm = storms[mode]
                    t0 = time.monotonic()
                    while time.monotonic() - t0 < burst_s:
                        storm.step(0.005)
                    elapsed = time.monotonic() - t0
                    burst = storm.stats.submitted - seen[mode]
                    totals[mode]["elapsed"] += elapsed
                    totals[mode]["submitted"] += burst
                    seen[mode] = storm.stats.submitted
                    rates[mode].append(round(burst / elapsed, 1))
            rows = []
            for mode in modes:
                storms[mode].quiesce(grace=3.0)
                stats = storms[mode].stats
                tot = totals[mode]
                rows.append({
                    "cell": mode,
                    "clients": clients,
                    "rounds": rounds,
                    "burst_s": burst_s,
                    "duration_s": round(tot["elapsed"], 3),
                    "submitted": tot["submitted"],
                    "errors": stats.errors,
                    "submissions_per_s": round(
                        tot["submitted"] / tot["elapsed"], 1)
                    if tot["elapsed"] else 0.0,
                    "submit_p50_ms": round(
                        _percentile(stats.submit_latencies, 0.50), 2),
                    "submit_p99_ms": round(
                        _percentile(stats.submit_latencies, 0.99), 2),
                    "round_submissions_per_s": rates[mode],
                })
            return rows
        finally:
            for storm in storms.values():
                storm.close()
            for proc in procs.values():
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait()


def _flight_cell(capacity: int) -> dict:
    from repro.core.telemetry import Telemetry
    from repro.obs.flight import FlightRecorder, flight_path, load_flight

    spans = capacity * 3  # enough to force rotation twice over
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        tel = Telemetry(trace=True, id_base=1_000_000)
        rec = FlightRecorder(flight_path(tmp, "bench", 0), telemetry=tel,
                             node="bench", capacity=capacity)
        t0 = time.perf_counter()
        for i in range(spans):
            span = tel.tracer.begin("job work", component="bench",
                                    start=float(i))
            tel.tracer.finish(span, float(i) + 0.5)
            if i % 100 == 99:
                rec.tick()
        spool_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        rec.seal("bench")
        seal_ms = (time.perf_counter() - t0) * 1e3

        size = sum(os.path.getsize(p) for p in (rec.path, rec.path + ".1")
                   if os.path.exists(p))
        t0 = time.perf_counter()
        dump = load_flight(rec.path)
        load_ms = (time.perf_counter() - t0) * 1e3
        return {
            "cell": "flight",
            "capacity": capacity,
            "spans_fed": spans,
            "spool_spans_per_s": round(spans / spool_s, 0),
            "rotations": rec.rotations,
            "seal_ms": round(seal_ms, 3),
            "load_ms": round(load_ms, 3),
            "dump_bytes": size,
            "spans_recovered": len(dump["spans"]) if dump else 0,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # 100 clients keeps the server at a stable operating point: deep
    # saturation (bench_gateway's domain) amplifies queueing noise far
    # beyond the per-request delta this bench is trying to resolve.
    parser.add_argument("--clients", type=int, default=100,
                        help="storm client count for the trace cells")
    parser.add_argument("--rounds", type=int, default=12,
                        help="alternating off/on burst rounds")
    parser.add_argument("--burst", type=float, default=1.0,
                        help="seconds per storm burst")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small storm, short cells (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the tracing-cost ceiling holds")
    parser.add_argument("--out", type=str, default=str(OBS_JSON))
    parser.add_argument("--_serve", nargs=3,
                        metavar=("PORT", "JOURNAL", "TRACE"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args._serve:
        return _serve_child(int(args._serve[0]), args._serve[1],
                            bool(int(args._serve[2])))

    clients, rounds, burst = args.clients, args.rounds, args.burst
    if args.quick:
        # Same total wall time as 8 x 0.5s but twice the alternations:
        # more paired rounds tightens the median the ceiling checks.
        clients = min(clients, 100)
        rounds = max(rounds, 16)
        burst = min(burst, 0.25)

    rows = _trace_cells(clients, rounds, burst, seed=args.seed)
    by_cell = {row["cell"]: row for row in rows}
    for row in rows:
        print(f"{row['cell']:<9} {clients:>4} clients: "
              f"{row['submissions_per_s']:>8,.0f} submissions/s "
              f"over {row['rounds']} x {row['burst_s']}s bursts, "
              f"submit p50 {row['submit_p50_ms']:.1f} ms")
    # The gate statistic is the MEDIAN of the per-round paired off/on
    # throughput ratios, not the ratio of the aggregates: a single
    # noisy burst (scheduler hiccup, page-cache writeback) moves the
    # aggregate by several percent but cannot move the median, which
    # is what lets an 8-second quick run hold a 5% ceiling without
    # flaking.
    pairs = zip(by_cell["trace-off"]["round_submissions_per_s"],
                by_cell["trace-on"]["round_submissions_per_s"])
    ratios = sorted(off / on for off, on in pairs if on)
    mid = len(ratios) // 2
    median = (ratios[mid] if len(ratios) % 2
              else (ratios[mid - 1] + ratios[mid]) / 2) if ratios else 1.0
    delta_pct = round(100.0 * (1.0 - 1.0 / median), 2)
    ceiling = (QUICK_TRACE_DELTA_PCT_CEILING if args.quick
               else TRACE_DELTA_PCT_CEILING)
    print(f"tracing cost: {delta_pct:+.1f}% submissions/s "
          f"(median of {len(ratios)} paired rounds, "
          f"ceiling {ceiling:.0f}%)")

    for capacity in FLIGHT_CAPACITIES:
        row = _flight_cell(capacity)
        rows.append(row)
        print(f"flight cap {capacity:>6}: "
              f"{row['spool_spans_per_s']:>9,.0f} spans/s spooled, "
              f"dump {row['dump_bytes'] / 1024:.0f} KiB, "
              f"seal {row['seal_ms']:.1f} ms, load {row['load_ms']:.1f} ms")

    report = {
        "bench": "obs",
        "ceilings": {"trace_delta_pct": ceiling},
        "trace_delta_pct": delta_pct,
        "rows": rows,
        "host_cpus": os.cpu_count(),
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote: {out_path}")

    if args.check:
        failures = []
        if delta_pct > ceiling:
            failures.append(
                f"tracing costs {delta_pct:.1f}% submissions/s > "
                f"ceiling {ceiling:.0f}%")
        for row in rows:
            if row["cell"] == "flight" and row["spans_recovered"] == 0:
                failures.append(
                    f"flight dump at capacity {row['capacity']} "
                    f"recovered no spans")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("check: OK (ceilings hold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
