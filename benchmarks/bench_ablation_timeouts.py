"""Ablation A1: dynamic time-out discovery vs static time-outs (§2.2).

Paper: "Using the alternative of statically determined time-outs, the
system frequently misjudged the availability (or lack thereof) of the
different EveryWare state-management servers causing needless retries
and dynamic reconfigurations" — especially as SCInet was reconfigured
on the fly.

Setup: components reached over a high-latency WAN with scheduled
congestion storms (response times swing 5-40x). The gossip pool either
forecasts per-component response times (dynamic) or trusts a fixed
default tuned for the quiet network (static). False evictions of
perfectly-live components are the reconfigurations the paper describes.
"""

from repro.core.component import Component
from repro.core.gossip import ComparatorRegistry, GossipAgent, GossipServer, StateStore
from repro.core.simdriver import SimDriver
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ComposedLoad, EventSchedule, MeanRevertingLoad, ScheduledEvent
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

DURATION = 3 * 3600.0


class SyncedWorker(Component):
    def __init__(self, name, well_known):
        super().__init__(name)
        self.well_known = well_known
        self.store = None
        self.agent = None

    def on_start(self, now):
        self.store = StateStore(self.contact)
        self.store.register("STATE", initial={"v": 0}, now=now)
        self.agent = GossipAgent(self.store, self.well_known, register_period=120)
        return self.agent.on_start(now, self.contact)

    def on_message(self, message, now):
        if GossipAgent.handles(message.mtype):
            return self.agent.on_message(message, now, self.contact)
        return []

    def on_timer(self, key, now):
        if GossipAgent.handles_timer(key):
            return self.agent.on_timer(key, now, self.contact)
        return []


def run_world(dynamic: bool, seed: int = 77):
    env = Environment()
    streams = RngStreams(seed=seed)
    # Congestion storms every ~20 min: latency inflates ~6x for 5 minutes.
    storms = [ScheduledEvent(s, s + 300, factor=0.15, ramp=120)
              for s in range(900, int(DURATION), 1200)]
    net = Network(
        env, streams,
        base_latency=4.0, jitter=0.4,
        congestion_model=ComposedLoad(
            MeanRevertingLoad(mean=0.9, sigma=0.002), EventSchedule(storms)),
    )
    net.start()

    gh = Host(env, HostSpec(name="gos0", site="west"), streams)
    net.add_host(gh)
    gossip = GossipServer(
        "gos0", ["gos0/gossip"], comparators=ComparatorRegistry(),
        poll_period=30.0,
        default_timeout=5.0,  # tuned for the quiet network's ~10s responses
        dead_factor=2.0,
        dynamic_timeouts=dynamic,
    )
    SimDriver(env, net, gh, "gossip", gossip, streams).start()

    workers = []
    for i in range(6):
        h = Host(env, HostSpec(name=f"w{i}", site="east"), streams)
        net.add_host(h)
        w = SyncedWorker(f"w{i}", ["gos0/gossip"])
        SimDriver(env, net, h, "app", w, streams).start()
        workers.append(w)

    env.run(until=DURATION)
    return gossip, workers


def test_dynamic_vs_static_timeouts(benchmark, artifact_dir):
    static_gossip, _ = run_world(dynamic=False)
    dynamic_gossip, _ = benchmark.pedantic(
        lambda: run_world(dynamic=True), rounds=1, iterations=1)

    static_evictions = static_gossip.stats.evictions
    dynamic_evictions = dynamic_gossip.stats.evictions

    lines = [
        "Ablation A1: dynamic time-out discovery vs static time-outs",
        f"  (6 live components over a stormy WAN, {DURATION / 3600:.0f} h)",
        f"  static time-outs : {static_evictions} false evictions of live "
        "components",
        f"  dynamic time-outs: {dynamic_evictions} false evictions",
        "",
        "Every false eviction forces de-registration, re-registration and",
        "responsibility reshuffling — the 'needless retries and dynamic",
        "reconfigurations' of §2.2.",
    ]
    save_artifact(artifact_dir, "ablation_a1_timeouts.txt", "\n".join(lines))

    # All components were alive throughout; any eviction is false.
    assert static_evictions > 0, "static run should misjudge availability"
    assert dynamic_evictions < static_evictions
