"""Ablation A6: heuristic search vs exhaustive enumeration (§3).

Paper: "There are 2^903 > 10^270 different two-colored graphs on 43
vertices which mak[es] it infeasible to try all possible colorings.
Therefore, we must use heuristic techniques."

This bench (a) exhaustively enumerates the coloring spaces that *are*
feasible (K_4, K_5) as ground truth, (b) shows the heuristics finding the
same witnesses in a vanishing fraction of the space, (c) extrapolates the
enumeration cost to the paper's K_43 target, and (d) measures the real
kernels' step throughput (the number the op counters meter).
"""

import math
import time

import numpy as np

from repro.ramsey.graphs import Coloring, OpCounter, count_mono_cliques
from repro.ramsey.heuristics import Annealing, MinConflicts, TabuSearch

from conftest import save_artifact


def exhaustive_count(k: int, n: int) -> tuple[int, int]:
    """(number of counter-examples, colorings tried) by full enumeration."""
    n_edges = k * (k - 1) // 2
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    hits = 0
    for bits in range(1 << n_edges):
        c = Coloring.from_edges(
            k, (edges[i] for i in range(n_edges) if (bits >> i) & 1))
        if count_mono_cliques(c, n) == 0:
            hits += 1
    return hits, 1 << n_edges


def test_heuristics_vs_exhaustive(benchmark, artifact_dir):
    # Ground truth on the feasible sizes.
    hits5, space5 = exhaustive_count(5, 3)
    hits6, space6 = exhaustive_count(6, 3)

    # Heuristic effort to find one witness on K_5.
    steps_needed = []
    for seed in range(10):
        s = TabuSearch(5, 3, np.random.default_rng(seed))
        s.run(max_steps=5000)
        assert s.found
        steps_needed.append(s.steps)

    # Tabu throughput on a paper-sized instance (the benchmark target).
    ops = OpCounter()
    search = TabuSearch(43, 5, np.random.default_rng(0), ops=ops, candidates=8)
    t0 = time.perf_counter()
    result = benchmark.pedantic(lambda: search.run(max_steps=30, target=-1),
                                rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0
    steps_per_sec = 30 / max(elapsed, 1e-9)

    n_edges_43 = 43 * 42 // 2
    lines = [
        "Ablation A6: heuristic search vs exhaustive enumeration",
        "",
        f"  K_5 (R(3)>5): {hits5}/{space5} colorings are counter-examples "
        f"({hits5 / space5:.2%})",
        f"  K_6 (R(3)=6): {hits6}/{space6} colorings are counter-examples "
        "(must be 0)",
        f"  tabu finds a K_5 witness in {np.mean(steps_needed):.0f} steps "
        f"(median {np.median(steps_needed):.0f}) — a vanishing fraction of "
        "the space",
        "",
        f"  the paper's target: K_43 has 2^{n_edges_43} ≈ "
        f"10^{n_edges_43 * math.log10(2):.0f} colorings",
        f"  at this machine's {steps_per_sec:,.0f} tabu steps/s, exhaustive "
        "enumeration",
        f"  would need ~10^{n_edges_43 * math.log10(2) - math.log10(max(steps_per_sec, 1)):.0f} "
        "seconds — hence heuristics + the Grid.",
    ]
    save_artifact(artifact_dir, "ablation_a6_heuristics.txt", "\n".join(lines))

    assert hits5 > 0  # pentagon-style witnesses exist
    assert hits6 == 0  # R(3,3) = 6: no K_6 witness, verified exhaustively
    assert np.mean(steps_needed) < 1000
    assert search.steps >= 30  # the K_43 kernel actually ran


def test_annealing_vs_tabu_effort(benchmark, artifact_dir):
    """Compare the heuristics' search effort on a mid-size instance
    (K_12, n=4): both must succeed; report steps and metered ops."""
    rows = []
    for name, cls in (("tabu", TabuSearch), ("anneal", Annealing),
                      ("minconf", MinConflicts)):
        steps, opses = [], []
        for seed in range(3):
            ops = OpCounter()
            s = cls(12, 4, np.random.default_rng(seed), ops=ops)
            s.run(max_steps=30_000)
            assert s.found, f"{name} failed on K_12 seed {seed}"
            steps.append(s.steps)
            opses.append(ops.ops)
        rows.append((name, np.mean(steps), np.mean(opses)))

    def tabu_once():
        s = TabuSearch(12, 4, np.random.default_rng(99))
        s.run(max_steps=30_000)
        return s.found

    assert benchmark.pedantic(tabu_once, rounds=1, iterations=1)

    lines = ["Heuristic effort on K_12 / n=4 (3 seeds each):"]
    for name, mean_steps, mean_ops in rows:
        lines.append(f"  {name:>7}: {mean_steps:>10,.0f} steps, "
                     f"{mean_ops:>14,.0f} metered ops")
    save_artifact(artifact_dir, "heuristic_effort.txt", "\n".join(lines))
