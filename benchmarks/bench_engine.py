"""Simulator substrate throughput.

Not a paper figure — an engineering number for this reproduction: how
many discrete events per second the substrate processes, and what one
EveryWare message round trip costs end-to-end (encode, route, deliver,
decode, reply). These bound how large an SC98-style scenario a given
machine can replay.

The workload sizes honor ``REPRO_BENCH_EVENTS`` / ``REPRO_BENCH_ROUNDTRIPS``
so the CI perf smoke can run reduced-N. With ``REPRO_PERF_STRICT=1`` each
bench also fails if its throughput regresses more than 30% below the
committed ``BENCH_engine.json`` baseline (rates are size-independent, so
reduced-N runs compare against the same baseline).
"""

import os

import perfjson
from conftest import save_artifact
from workloads import (
    N_ROUNDTRIPS,
    N_TIMEOUT_EVENTS,
    run_message_pingpong,
    run_timeout_storm,
    run_windowed_storm,
)

N_EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS", N_TIMEOUT_EVENTS))
N_CYCLES = int(os.environ.get("REPRO_BENCH_ROUNDTRIPS", N_ROUNDTRIPS))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
STRICT = os.environ.get("REPRO_PERF_STRICT") == "1"


def _maybe_enforce_baseline(workload: str, rate: float) -> None:
    if not STRICT:
        return
    problem = perfjson.check_regression(perfjson.ENGINE_JSON, workload, rate)
    assert problem is None, problem


def test_engine_event_throughput(benchmark, artifact_dir):
    benchmark.pedantic(run_timeout_storm, args=(N_EVENTS,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    events_per_sec = N_EVENTS / benchmark.stats["median"]
    best = N_EVENTS / benchmark.stats["min"]
    lines = [
        "Simulator throughput on this machine:",
        f"  bare timer events : {events_per_sec:,.0f} events/s median, "
        f"{best:,.0f} best ({N_EVENTS:,} events x {ROUNDS} rounds)",
    ]
    save_artifact(artifact_dir, "engine_throughput.txt", "\n".join(lines))
    assert events_per_sec > 10_000  # sanity floor, generous for any machine
    _maybe_enforce_baseline("timeout_storm", events_per_sec)


def test_windowed_run_throughput(benchmark, artifact_dir):
    """The parallel-DES row: the same timer storm through
    ``run_windowed`` (lookahead windows + a barrier per edge). The
    windowing skeleton must cost nearly nothing — it is pure
    checkpointing, ordering stays byte-identical to a plain run."""
    benchmark.pedantic(run_windowed_storm, args=(N_EVENTS,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    events_per_sec = N_EVENTS / benchmark.stats["median"]
    lines = [
        "Windowed (parallel-DES skeleton) throughput on this machine:",
        f"  windowed timer events : {events_per_sec:,.0f} events/s median "
        f"({N_EVENTS:,} events x {ROUNDS} rounds, one barrier per window)",
    ]
    save_artifact(artifact_dir, "windowed_throughput.txt", "\n".join(lines))
    assert events_per_sec > 10_000
    _maybe_enforce_baseline("windowed_storm", events_per_sec)


def test_message_roundtrip_throughput(benchmark, artifact_dir):
    benchmark.pedantic(run_message_pingpong, args=(N_CYCLES,),
                       rounds=ROUNDS, iterations=1, warmup_rounds=1)
    per_sec = N_CYCLES / benchmark.stats["median"]
    lines = [
        "Full lingua-franca round trips through the simulated network:",
        f"  {per_sec:,.0f} request/response cycles per wall second "
        f"({N_CYCLES:,} cycles x {ROUNDS} rounds, every one through the "
        "real codec)",
    ]
    save_artifact(artifact_dir, "message_throughput.txt", "\n".join(lines))
    _maybe_enforce_baseline("message_pingpong", per_sec)
