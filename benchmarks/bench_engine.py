"""Simulator substrate throughput.

Not a paper figure — an engineering number for this reproduction: how
many discrete events per second the substrate processes, and what one
EveryWare message round trip costs end-to-end (encode, route, deliver,
decode, reply). These bound how large an SC98-style scenario a given
machine can replay.
"""

from repro.core.linguafranca.endpoint import SimEndpoint
from repro.core.linguafranca.messages import Message
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.network import Address, Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

N_TIMEOUT_EVENTS = 200_000
N_ROUNDTRIPS = 5_000


def run_timeout_storm() -> float:
    env = Environment()

    def ticker(env, period):
        while True:
            yield env.timeout(period)

    for i in range(20):
        env.process(ticker(env, 1.0 + i * 0.01))
    env.run(until=N_TIMEOUT_EVENTS / 20)
    return env.now


def run_message_pingpong() -> int:
    env = Environment()
    streams = RngStreams(seed=1)
    net = Network(env, streams, jitter=0.0)
    for name in ("a", "b"):
        net.add_host(Host(env, HostSpec(name=name), streams))
    server = SimEndpoint(env, net, Address("b", "svc"))
    client = SimEndpoint(env, net, Address("a", "cli"))

    def server_proc(env):
        while True:
            msg = yield from server.recv(None)
            server.send(msg.sender, msg.reply("PONG", sender=server.contact))

    def client_proc(env):
        done = 0
        for i in range(N_ROUNDTRIPS):
            reply, _ = yield from client.request(
                "b/svc", Message(mtype="PING", sender="", body={"i": i}),
                timeout=10)
            if reply is not None:
                done += 1
        return done

    env.process(server_proc(env))
    proc = env.process(client_proc(env))
    env.run(until=proc)
    return proc.value


def test_engine_event_throughput(benchmark, artifact_dir):
    elapsed = benchmark.pedantic(run_timeout_storm, rounds=1, iterations=1)
    events_per_sec = N_TIMEOUT_EVENTS / benchmark.stats["mean"]
    lines = [
        "Simulator throughput on this machine:",
        f"  bare timer events : {events_per_sec:,.0f} events/s "
        f"({N_TIMEOUT_EVENTS:,} events)",
    ]
    save_artifact(artifact_dir, "engine_throughput.txt", "\n".join(lines))
    assert elapsed > 0
    assert events_per_sec > 10_000  # sanity floor, generous for any machine


def test_message_roundtrip_throughput(benchmark, artifact_dir):
    done = benchmark.pedantic(run_message_pingpong, rounds=1, iterations=1)
    per_sec = N_ROUNDTRIPS / benchmark.stats["mean"]
    lines = [
        "Full lingua-franca round trips through the simulated network:",
        f"  {per_sec:,.0f} request/response cycles per wall second "
        f"({N_ROUNDTRIPS:,} cycles, every one through the real codec)",
    ]
    save_artifact(artifact_dir, "message_throughput.txt", "\n".join(lines))
    assert done == N_ROUNDTRIPS
