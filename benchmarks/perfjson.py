"""Reading/writing the repo-root ``BENCH_*.json`` perf-trajectory files.

Schema (``repro-perf/1``)::

    {
      "schema": "repro-perf/1",
      "generated_by": "benchmarks/perf_snapshot.py",
      "workloads": {
        "<name>": {
          "unit": "events/s",
          "work_items": 200000,
          "rounds": 5,
          "before": {"best": ..., "median": ..., "source": "..."},
          "after":  {"best": ..., "median": ...},
          "speedup_median": 2.1
        }
      }
    }

``before`` is the seed-commit measurement (taken interleaved with the
current tree in one process; see ``perf_snapshot.py --before-tree``) and
is preserved across snapshot refreshes, so the file always shows the
trajectory relative to where the repository started. The CI perf smoke
compares a fresh reduced-N run against the committed ``after`` medians
and fails on a >30% regression.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Optional

SCHEMA = "repro-perf/1"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ENGINE_JSON = REPO_ROOT / "BENCH_engine.json"
KERNELS_JSON = REPO_ROOT / "BENCH_kernels.json"

#: CI fails when a workload's fresh median drops below this fraction of
#: the committed ``after`` median.
REGRESSION_TOLERANCE = 0.30


def measure_rate(workload: Callable[[], int], rounds: int = 5) -> dict:
    """Run ``workload`` ``rounds`` times; report items/s best and median."""
    rates = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        items = workload()
        elapsed = time.perf_counter() - t0
        rates.append(items / elapsed)
    rates.sort()
    return {
        "best": round(rates[-1], 1),
        "median": round(rates[len(rates) // 2], 1),
    }


def load(path: pathlib.Path) -> Optional[dict]:
    if not path.exists():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{path.name}: unknown schema {data.get('schema')!r}")
    return data


def write(path: pathlib.Path, workloads: dict) -> None:
    for spec in workloads.values():
        before = spec.get("before")
        after = spec.get("after")
        if before and after and before.get("median"):
            spec["speedup_median"] = round(
                after["median"] / before["median"], 2)
    payload = {
        "schema": SCHEMA,
        "generated_by": "benchmarks/perf_snapshot.py",
        "workloads": workloads,
    }
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")


def baseline_conflicts(path: pathlib.Path, workloads: dict) -> list[str]:
    """Workload names whose to-be-written ``before`` baseline differs from
    the committed one.

    The ``before`` block is the origin of the perf trajectory; rewriting
    it (e.g. an accidental ``--before-tree`` against the wrong checkout)
    silently re-anchors every speedup the file reports.
    ``perf_snapshot.py`` refuses to write a changed baseline unless
    ``--rebaseline`` is passed. New workloads and absent files never
    conflict."""
    committed = load(path)
    if committed is None:
        return []
    conflicts = []
    for name, spec in workloads.items():
        old = committed["workloads"].get(name, {}).get("before")
        new = spec.get("before")
        if old is None or new is None:
            continue
        if (old.get("median"), old.get("best")) != (
                new.get("median"), new.get("best")):
            conflicts.append(name)
    return sorted(conflicts)


def committed_after_median(path: pathlib.Path, workload: str) -> Optional[float]:
    """The committed baseline median for ``workload``, if recorded."""
    data = load(path)
    if data is None:
        return None
    spec = data["workloads"].get(workload)
    if spec is None or "after" not in spec:
        return None
    return float(spec["after"]["median"])


def check_regression(path: pathlib.Path, workload: str,
                     current_rate: float) -> Optional[str]:
    """Return an error string if ``current_rate`` regresses >30% below the
    committed baseline median, None if acceptable or no baseline exists."""
    baseline = committed_after_median(path, workload)
    if baseline is None:
        return None
    floor = baseline * (1.0 - REGRESSION_TOLERANCE)
    if current_rate < floor:
        return (f"{workload}: {current_rate:,.0f}/s is more than "
                f"{REGRESSION_TOLERANCE:.0%} below the committed baseline "
                f"median of {baseline:,.0f}/s (floor {floor:,.0f}/s)")
    return None
