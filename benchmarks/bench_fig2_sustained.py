"""Figure 2 + the §4.1 headline numbers: total sustained performance.

Regenerates the paper's 5-minute-average series for the twelve hours up
to the judging, checks the shape (pre-judging peak, 11:00 collapse,
recovery by the 11:10 demonstration), and records paper-vs-run headline
values. The benchmark times the figure regeneration (bucketing +
rendering) over the accumulated log records.
"""

import numpy as np

from repro.experiments import render_fig2, render_headlines
from repro.experiments.metrics import collect_rate_series
from repro.experiments.sc98 import clock_to_offset

from conftest import bench_scale, save_artifact


def test_fig2_sustained_performance(benchmark, sc98_results, artifact_dir):
    world, results = sc98_results
    cfg = results.config

    def regenerate():
        total, _ = collect_rate_series(
            world.core.loggers, start=0.0, width=cfg.bucket, n=cfg.n_buckets)
        return total

    total = benchmark(regenerate)
    assert np.allclose(total, results.series.total_rate)

    text = render_fig2(results) + "\n\n" + render_headlines(results)
    save_artifact(artifact_dir, "fig2_sustained.txt", text)

    scale = bench_scale()
    peak_t, peak = results.peak()
    dip = results.judging_dip()
    recovery = results.recovery()

    # Shape claims from §4.1, scale-aware on absolute values:
    # peak ~ 2.39e9 x scale (generous band: stochastic load).
    assert 0.55 * 2.39e9 * scale < peak < 1.45 * 2.39e9 * scale
    # The peak lands in the pre-judging test window, not overnight.
    # (paper: 09:51-09:56; we accept the late-morning surge window.)
    assert clock_to_offset(9, 20) <= peak_t <= clock_to_offset(10, 40)
    # Judging collapse: roughly halved (paper: 2.39 -> 1.1).
    assert dip < 0.62 * peak
    # Recovery by the demo: climbs well off the floor but below the peak
    # (paper: back to 2.0e9 of the 2.39e9 peak).
    assert recovery > 1.4 * dip
    assert recovery < 1.02 * peak
