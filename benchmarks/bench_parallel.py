"""Refresh the repo-root ``BENCH_parallel.json`` compute-plane curve.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick

Runs the tabu step-batch workload (K_43, the R(5,5) search target)
through the compute plane at 0/1/2/4 pool workers — 0 is the inline
lane, the serial substrate every simulation run uses by default — and
records aggregate kernel throughput (moves/s), speedup vs inline, and
the per-worker-count parity hash. The hash digests the complete final
search states (colorings, energies, tabu lists, RNG positions), so equal
hashes mean the pool produced *bit-identical* search trajectories, not
just similar quality.

Speedup composition: pool workers run the vectorized numpy batch kernels
while the inline lane runs the pure-Python reference path, so the curve
reflects vectorization x available cores. On a single-core host (CI)
the curve is flat across worker counts but still far above inline;
``host_cpus`` is recorded so readers can interpret the curve.

The gate (``--check``) asserts the acceptance floor: >= 2.5x aggregate
throughput at 4 workers vs the inline lane, with parity hashes matching
serial at every worker count.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

PARALLEL_JSON = HERE.parent / "BENCH_parallel.json"

#: Acceptance floor: aggregate moves/s at 4 workers vs the inline lane.
SPEEDUP_FLOOR = 2.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=str, default="0,1,2,4",
                        help="comma-separated pool sizes (0 = inline lane)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload, 1 round (CI smoke)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="best-of rounds per worker count")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless 4-worker speedup >= "
                             f"{SPEEDUP_FLOOR}x and parity holds")
    parser.add_argument("--out", type=str, default=str(PARALLEL_JSON))
    args = parser.parse_args(argv)

    from repro.parallel.scaling import run_scaling

    worker_counts = tuple(int(w) for w in args.workers.split(","))
    if args.quick:
        report = run_scaling(worker_counts=worker_counts, searches=2,
                             k=30, n=5, candidates=24, steps_per_batch=10,
                             batches=2, rounds=1)
    else:
        report = run_scaling(worker_counts=worker_counts, searches=4,
                             k=43, n=5, candidates=64, steps_per_batch=25,
                             batches=4, rounds=max(args.rounds, 1))

    print(f"{'workers':>8} {'moves/s':>12} {'speedup':>8} "
          f"{'parity':>18} {'fallbacks':>9}  {'worker wall s':>13}")
    for row in report["rows"]:
        walls = row.get("worker_wall_s") or []
        wall_col = ("/".join(f"{w:.2f}" for w in walls) if walls
                    else "(inline)")
        print(f"{row['workers']:>8} {row['moves_per_s']:>12,.0f} "
              f"{row['speedup_vs_inline']:>7.2f}x "
              f"{row['parity_hash']:>18} {row['fallbacks']:>9}  "
              f"{wall_col:>13}")
        if row.get("warning"):
            print(f"{'':>8} warning: {row['warning']}")
    print(f"parity: {'OK' if report['parity_ok'] else 'MISMATCH'} "
          f"(host cpus: {report['host_cpus']})")

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {out_path.name}")

    if not report["parity_ok"]:
        print("FAIL: pool and serial search states diverged", file=sys.stderr)
        return 1
    if args.check and not args.quick:
        by_workers = {row["workers"]: row for row in report["rows"]}
        top = by_workers.get(max(by_workers))
        if top["speedup_vs_inline"] < SPEEDUP_FLOOR:
            print(f"FAIL: {top['workers']}-worker speedup "
                  f"{top['speedup_vs_inline']:.2f}x is below the "
                  f"{SPEEDUP_FLOOR}x floor", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
