"""Seed robustness: the reproduced shapes are not one seed's luck.

Replays the SC98 scenario across independent seeds (small scale for
wall-time) and puts bootstrap confidence intervals on the shape
quantities the reproduction claims:

* dip ratio (judging dip / peak) — paper: 1.1/2.39 ≈ 0.46;
* recovery ratio (demo recovery / peak) — paper: 2.0/2.39 ≈ 0.84;
* smoothness: total CV below the median per-infrastructure CV.
"""

import numpy as np

from repro.experiments.stats import bootstrap_ci, seed_sweep

from conftest import save_artifact

SEEDS = [11, 23, 37, 51, 73]
PAPER_DIP_RATIO = 1.1 / 2.39
PAPER_RECOVERY_RATIO = 2.0 / 2.39


def test_shapes_hold_across_seeds(benchmark, artifact_dir):
    outcomes = benchmark.pedantic(
        lambda: seed_sweep(SEEDS, scale=0.15), rounds=1, iterations=1)

    dips = [o.dip_ratio for o in outcomes]
    recoveries = [o.recovery_ratio for o in outcomes]
    smooth = [o.total_cv < o.median_part_cv for o in outcomes]

    dip_pt, dip_lo, dip_hi = bootstrap_ci(dips)
    rec_pt, rec_lo, rec_hi = bootstrap_ci(recoveries)

    lines = [
        f"Seed robustness ({len(SEEDS)} seeds, scale 0.15, full 12 h window)",
        "",
        "  seed | dip/peak | recovery/peak | total CV < median part CV",
    ]
    for o, ok in zip(outcomes, smooth):
        lines.append(f"  {o.seed:>4} | {o.dip_ratio:8.3f} | "
                     f"{o.recovery_ratio:13.3f} | {ok}")
    lines += [
        "",
        f"  dip ratio      : {dip_pt:.3f}  (95% CI [{dip_lo:.3f}, {dip_hi:.3f}]; "
        f"paper {PAPER_DIP_RATIO:.3f})",
        f"  recovery ratio : {rec_pt:.3f}  (95% CI [{rec_lo:.3f}, {rec_hi:.3f}]; "
        f"paper {PAPER_RECOVERY_RATIO:.3f})",
    ]
    save_artifact(artifact_dir, "seed_robustness.txt", "\n".join(lines))

    # Every seed reproduces the qualitative story...
    assert all(d < 0.75 for d in dips), dips
    assert all(r > d for r, d in zip(recoveries, dips))
    assert all(smooth), "total must be smoother than its median part"
    # ...and the paper's ratios sit inside (or near) the sweep's spread.
    spread = max(dips) - min(dips)
    assert abs(dip_pt - PAPER_DIP_RATIO) < max(0.2, 2 * spread)
    assert abs(rec_pt - PAPER_RECOVERY_RATIO) < 0.25
