"""Figure 3a / 4a: delivered performance by infrastructure type.

The linear figure shows NT and Unix dominating with Condor next; the log
figure makes the whole seven-way spread visible — Java and NetSolve
contribute orders of magnitude less but contribute nonetheless, which is
the paper's point about harvesting *every* available resource.
"""

import numpy as np

from repro.experiments import render_fig3a
from repro.experiments.metrics import collect_rate_series

from conftest import save_artifact


def test_fig3a_rate_by_infrastructure(benchmark, sc98_results, artifact_dir):
    world, results = sc98_results
    cfg = results.config

    def regenerate():
        _, per_infra = collect_rate_series(
            world.core.loggers, start=0.0, width=cfg.bucket, n=cfg.n_buckets)
        return per_infra

    per_infra = benchmark(regenerate)

    text = render_fig3a(results) + "\n\n" + render_fig3a(results, log=True)
    save_artifact(artifact_dir, "fig3a_4a_by_infra.txt", text)

    means = {name: float(np.mean(series)) for name, series in per_infra.items()}

    # All seven infrastructures delivered cycles (pervasiveness).
    assert set(means) == {"unix", "condor", "nt", "globus", "legion",
                          "netsolve", "java"}
    assert all(v > 0 for v in means.values())

    # Ranking shape from Fig. 3a: the big pools dominate...
    assert means["unix"] > means["condor"]
    assert means["nt"] > means["condor"]
    assert means["condor"] > means["netsolve"]
    # ...and the volunteer/brokered tails are orders of magnitude smaller.
    assert means["netsolve"] < 0.1 * means["nt"]
    assert means["java"] < 0.1 * means["nt"]
    # Log-scale spread (Fig. 4a): >= 1.5 decades between top and bottom.
    assert max(means.values()) / min(means.values()) > 30
