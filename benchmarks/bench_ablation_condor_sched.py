"""Ablation A2: schedulers inside vs outside the Condor pool (§5.4).

Paper: "the overhead associated [with] managing the location transparency
of rapidly moving (birthing and dying) schedulers proved prohibitive ...
clients spent an appreciable amount of time simply locating a viable
server. We, therefore, opted for a more stable configuration in which the
Condor application clients only contacted schedulers that were located
outside of the Condor pools. Since scheduler failure occurred much less
frequently than resource reclamation, the overall performance improved."

Setup: a churning Condor pool of model clients. Configuration A places
the schedulers on dedicated hosts outside the pool; configuration B runs
them on Condor workstations, dying with every reclamation and restarting
when the machine idles again. Delivered ops and time-wasted-on-discovery
tell the story.
"""

from repro.core.services.logging import LoggingServer
from repro.core.services.scheduler import QueueWorkSource, SchedulerServer
from repro.core.simdriver import SimDriver
from repro.infra.condor import CondorPool
from repro.ramsey.client import ModelEngine, RamseyClient
from repro.ramsey.tasks import unit_generator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

DURATION = 4 * 3600.0
N_SCHEDULERS = 2


def run_world(schedulers_in_pool: bool, seed: int = 31):
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.2)
    net.start()

    svc = Host(env, HostSpec(name="svc", speed=1e7,
                             load_model=ConstantLoad(1.0)), streams)
    net.add_host(svc)
    logsrv = LoggingServer("log")
    SimDriver(env, net, svc, "log", logsrv, streams).start()

    # Short units (~5 min of work on these hosts): clients must return to
    # a live scheduler for new work, so scheduler availability matters —
    # exactly the §5.4 failure mode.
    work = QueueWorkSource(generator=unit_generator(43, 5, ops_budget=1e9))

    def make_scheduler(i):
        return SchedulerServer(f"sched{i}", work, report_period=60,
                               reap_period=120)

    clients = []

    def factory(host, infra, idx):
        client = RamseyClient(
            f"{infra}-{idx}",
            schedulers=list(sched_contacts),
            engine=ModelEngine(),
            infra=infra,
            loggers=["svc/log"],
            work_period=60,
            report_period=60,
            hello_retry=45,
            sched_dead_factor=2.0,
            seed=idx,
        )
        clients.append(client)
        return client

    pool = CondorPool(env, net, streams, factory, n_hosts=16,
                      idle_mean=900, busy_mean=1800, start_delay=15)

    if schedulers_in_pool:
        sched_contacts = []
        pool.deploy()
        # Schedulers live on (reclaimable) pool machines; like the paper's
        # stateless schedulers, they are resubmitted whenever the machine
        # idles again.
        for i in range(N_SCHEDULERS):
            host = pool.hosts[i]
            sched_contacts.append(f"{host.name}/sched")

            def keeper(host=host, i=i):
                while True:
                    if host.up:
                        driver = SimDriver(env, net, host, "sched",
                                           make_scheduler(i), streams)
                        process = driver.start()
                        yield process  # ends when the owner reclaims
                    yield env.timeout(30)

            env.process(keeper())
    else:
        sched_contacts = []
        for i in range(N_SCHEDULERS):
            h = Host(env, HostSpec(name=f"sched{i}", speed=1e7,
                                   load_model=ConstantLoad(1.0)), streams)
            net.add_host(h)
            SimDriver(env, net, h, "sched", make_scheduler(i), streams).start()
            sched_contacts.append(f"sched{i}/sched")
        pool.deploy()

    env.run(until=DURATION)
    delivered = sum(r.data["ops"] for r in logsrv.by_kind("perf"))
    switches = sum(c._sched_idx for c in clients)
    return delivered, switches, pool


def test_condor_scheduler_placement(benchmark, artifact_dir):
    in_ops, in_switches, in_pool = run_world(schedulers_in_pool=True)
    out_ops, out_switches, out_pool = benchmark.pedantic(
        lambda: run_world(schedulers_in_pool=False), rounds=1, iterations=1)

    lines = [
        "Ablation A2: scheduler placement for Condor clients (§5.4)",
        f"  ({DURATION / 3600:.0f} h, 16-workstation pool, "
        f"{N_SCHEDULERS} schedulers)",
        f"  schedulers IN the pool : {in_ops:,.0f} ops delivered, "
        f"{in_switches} scheduler switches, "
        f"{in_pool.reclamations} reclamations",
        f"  schedulers OUTSIDE     : {out_ops:,.0f} ops delivered, "
        f"{out_switches} scheduler switches, "
        f"{out_pool.reclamations} reclamations",
        "",
        f"  outside/inside delivered ratio: {out_ops / max(in_ops, 1):.2f}x",
        "Stable scheduler placement wins, as the paper found.",
    ]
    save_artifact(artifact_dir, "ablation_a2_condor_sched.txt", "\n".join(lines))

    assert out_ops > in_ops
    # Clients hunting for live schedulers is the in-pool pathology.
    assert in_switches > out_switches
