"""Figure 3b / 4b: host count by infrastructure type.

Shape: Condor is the largest pool (~120 machines at SC98) but churns as
owners reclaim; the NT Superclusters hold steady near their node count;
Java fluctuates with browser arrivals; NetSolve stays a handful.
"""

import numpy as np

from repro.experiments import render_fig3b

from conftest import bench_scale, save_artifact


def test_fig3b_host_count_by_infrastructure(benchmark, sc98_results, artifact_dir):
    world, results = sc98_results
    hosts = results.series.hosts_by_infra

    def regenerate():
        return world.sampler.counts_by_infra()

    counts = benchmark(regenerate)

    text = render_fig3b(results) + "\n\n" + render_fig3b(results, log=True)
    save_artifact(artifact_dir, "fig3b_4b_hosts.txt", text)

    scale = bench_scale()
    maxima = {name: float(np.max(series)) for name, series in hosts.items()}
    assert set(maxima) == {"unix", "condor", "nt", "globus", "legion",
                           "netsolve", "java"}

    # Condor's pool is the biggest; NT next (96 nodes at scale 1).
    assert maxima["condor"] >= maxima["nt"] * 0.75
    assert maxima["condor"] > maxima["legion"]
    assert maxima["nt"] > maxima["globus"]
    assert maxima["netsolve"] <= max(3 * scale, 1) + 0.5

    # Condor churns: its active count varies much more than NT's
    # (steady-state cluster vs owner-reclaimed workstations).
    skip = len(results.series.times) // 6
    condor = hosts["condor"][skip:]
    nt = hosts["nt"][skip:]
    assert condor.std() / max(condor.mean(), 1e-9) > nt.std() / max(nt.mean(), 1e-9)

    # Java fluctuates between near-zero and its crowd peaks.
    java = hosts["java"]
    assert java.max() > 0
    assert java.min() < 0.5 * java.max()
