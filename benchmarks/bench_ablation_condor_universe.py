"""Ablation A8: Condor vanilla vs standard universe (§5.4).

"The guest process is either checkpointed and migrated to a workstation
of the same type, or killed." SC98 ran vanilla (the pool was too
heterogeneous for same-type migration), accepting that every reclamation
discards the guest's progress since its last application-level
checkpoint. This bench quantifies the cost of that choice on a
homogeneous-typed pool: unit completions in fixed time, vanilla vs
standard.
"""

from repro.core.services.logging import LoggingServer
from repro.core.services.scheduler import QueueWorkSource, SchedulerServer
from repro.core.simdriver import SimDriver
from repro.infra.condor import CondorPool
from repro.ramsey.client import ModelEngine, RamseyClient
from repro.ramsey.tasks import unit_generator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

DURATION = 8 * 3600.0
UNIT_OPS = 1.5e9  # ~450 s of work on an idle pool machine


def run_pool(universe: str, seed: int = 19):
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1)
    svc = Host(env, HostSpec(name="svc", speed=1e7,
                             load_model=ConstantLoad(1.0)), streams)
    net.add_host(svc)
    work = QueueWorkSource(generator=unit_generator(43, 5, ops_budget=UNIT_OPS))
    sched = SchedulerServer("sched", work, report_period=60, reap_period=120,
                            migrate_fraction=0.0)  # isolate the universes
    SimDriver(env, net, svc, "sched", sched, streams).start()
    logsrv = LoggingServer("log")
    SimDriver(env, net, svc, "log", logsrv, streams).start()

    def factory(host, infra, idx):
        return RamseyClient(f"{infra}-{idx}", schedulers=["svc/sched"],
                            engine=ModelEngine(), infra=infra,
                            loggers=["svc/log"], work_period=60,
                            report_period=60, seed=idx)

    pool = CondorPool(env, net, streams, factory, n_hosts=12,
                      idle_mean=900, busy_mean=600, start_delay=15,
                      universe=universe, n_types=2)
    pool.deploy()
    env.run(until=DURATION)
    return sched.stats.units_completed, pool


def test_condor_universe_ablation(benchmark, artifact_dir):
    vanilla_done, vanilla_pool = run_pool("vanilla")
    standard_done, standard_pool = benchmark.pedantic(
        lambda: run_pool("standard"), rounds=1, iterations=1)

    lines = [
        "Ablation A8: Condor vanilla vs standard universe (§5.4)",
        f"  ({DURATION / 3600:.0f} h, 12 workstations in 2 type classes, "
        f"~{UNIT_OPS / 3.3e6 / 60:.0f}-minute units)",
        f"  vanilla : {vanilla_done} units completed "
        f"({vanilla_pool.reclamations} reclamations, progress lost each time)",
        f"  standard: {standard_done} units completed "
        f"({standard_pool.reclamations} reclamations, "
        f"{standard_pool.checkpoint_migrations} checkpoint migrations, "
        f"{standard_pool.checkpoints_lost} lost)",
        f"  standard/vanilla completions: "
        f"{standard_done / max(vanilla_done, 1):.2f}x",
        "",
        "SC98 accepted vanilla's losses because the pool spanned machine",
        "types; EveryWare's Gossip/persistent checkpointing recovered the",
        "state that mattered at the application level instead.",
    ]
    save_artifact(artifact_dir, "ablation_a8_condor_universe.txt",
                  "\n".join(lines))

    assert standard_pool.checkpoint_migrations > 0
    assert standard_done > vanilla_done
