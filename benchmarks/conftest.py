"""Shared fixtures for the figure/table benchmarks.

The SC98 scenario is simulated once per session at ``REPRO_BENCH_SCALE``
(default 0.25 of the real host counts — set 1.0 for the full ~350-host
run; ~4 minutes of wall time) over the paper's full 12-hour window.
Figure benches extract and render from the shared results, and write
their artifacts under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

import os
import pathlib

import pytest

from repro.experiments import SC98Config, build_sc98

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def sc98_results():
    cfg = SC98Config(scale=bench_scale(), seed=1998)
    world = build_sc98(cfg)
    results = world.run()
    return world, results


@pytest.fixture(scope="session")
def artifact_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / name).write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}")
