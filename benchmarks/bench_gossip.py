"""Refresh the repo-root ``BENCH_gossip.json`` pool-scale curves.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_gossip.py
    PYTHONPATH=src python benchmarks/bench_gossip.py --quick --check
    PYTHONPATH=src python benchmarks/bench_gossip.py --full   # adds 4096

Exercises the digest/delta anti-entropy sync plane (DESIGN §15) on
:mod:`repro.experiments.bigpool` worlds:

* **convergence** cells — a pre-converged pool takes one fresh write;
  measured: sync rounds until every member's digest root agrees again
  (the epidemic-spread claim: O(log pool)), per-node sync bytes per
  round (the flat-cost claim: O(divergence), not O(pool) or O(state)),
  and delivered messages per wall-second;
* **state-size** cells — per-node bytes/round for the digest plane vs
  the pre-§15 full-state plane as the registered state grows; full-state
  sync pays O(state) every round, the digest plane does not;
* a **determinism** cell — the 64-host scenario runs twice with the same
  seed and must produce byte-identical state exports.

The gate (``--check``) asserts the acceptance floors: convergence within
``1.5*log2(N) + 4`` rounds at every size, per-node bytes/round at 1,024
hosts within 1.5x of the 64-host cell, full-state bytes growing at least
3x over the state sweep while digest bytes stay within 1.5x, and the
same-seed exports identical.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

GOSSIP_JSON = HERE.parent / "BENCH_gossip.json"

#: Acceptance floors (see --check).
CONVERGENCE_ROUNDS_FACTOR = 1.5  # rounds <= factor * log2(N) + slack
CONVERGENCE_ROUNDS_SLACK = 4.0
BYTES_FLAT_RATIO = 1.5  # per-node bytes/round, largest pool vs smallest
FULL_STATE_GROWTH_FLOOR = 3.0  # old path must grow with state...
DIGEST_STATE_RATIO = 1.5  # ...while the digest path stays flat


def _convergence_cell(n_hosts: int, seed: int = 11,
                      warm: float = 30.0) -> dict:
    from repro.experiments.bigpool import (build_pool, inject_write,
                                           run_until_converged)

    wall0 = time.monotonic()
    pool = build_pool(n_hosts=n_hosts, n_sites=min(16, max(n_hosts // 8, 2)),
                      seed=seed)
    pool.run(until=warm)
    base_bytes = sum(g.stats.bytes_sent for g in pool.servers)
    base_rounds = sum(g.stats.digest_rounds for g in pool.servers)
    inject_write(pool)
    result = run_until_converged(pool, deadline=200.0 * math.log2(n_hosts))
    wall = time.monotonic() - wall0
    servers = pool.servers
    n = len(servers)
    rounds = (sum(g.stats.digest_rounds for g in servers) - base_rounds) / n
    spent = sum(g.stats.bytes_sent for g in servers) - base_bytes
    return {
        "cell": "convergence",
        "n_hosts": n_hosts,
        "converged": result["converged"],
        "rounds": round(result["rounds"], 2),
        "sim_time_s": round(result["time"], 1),
        "bytes_per_node_round": round(spent / n / max(rounds, 1.0), 1),
        "events_per_s": round(pool.network.stats.delivered / max(wall, 1e-9)),
        "bytes_saved": sum(g.stats.bytes_saved for g in servers),
        "wall_s": round(wall, 2),
    }


def _steady_bytes(n_hosts: int, n_records: int, sync_mode: str,
                  horizon: float = 120.0, seed: int = 11) -> float:
    """Per-node sync-plane bytes per round over a converged steady run."""
    from repro.experiments.bigpool import build_pool

    pool = build_pool(n_hosts=n_hosts, n_sites=max(n_hosts // 8, 2),
                      n_records=n_records, sync_mode=sync_mode, seed=seed)
    pool.run(until=horizon)
    servers = pool.servers
    n = len(servers)
    spent = sum(g.stats.bytes_sent for g in servers)
    if sync_mode == "digest":
        rounds = sum(g.stats.digest_rounds for g in servers) / n
    else:
        rounds = sum(g.stats.syncs_sent for g in servers) / n
    return spent / n / max(rounds, 1.0)


def _state_size_cell(n_hosts: int, n_records: int) -> dict:
    return {
        "cell": "state-size",
        "n_hosts": n_hosts,
        "n_records": n_records,
        "digest_bytes_per_node_round": round(
            _steady_bytes(n_hosts, n_records, "digest"), 1),
        "full_bytes_per_node_round": round(
            _steady_bytes(n_hosts, n_records, "full"), 1),
    }


def _determinism_cell(n_hosts: int = 64) -> dict:
    from repro.experiments.bigpool import (build_pool, export_json,
                                           inject_write, run_until_converged)

    exports = []
    for _ in range(2):
        pool = build_pool(n_hosts=n_hosts, n_sites=8, seed=23)
        pool.run(until=30.0)
        inject_write(pool)
        run_until_converged(pool, deadline=600.0)
        exports.append(export_json(pool))
    return {
        "cell": "determinism",
        "n_hosts": n_hosts,
        "export_bytes": len(exports[0]),
        "identical": exports[0] == exports[1],
    }


def _check(report: dict) -> list[str]:
    failures: list[str] = []
    conv = [row for row in report["cells"] if row["cell"] == "convergence"]
    for row in conv:
        if not row["converged"]:
            failures.append(f"{row['n_hosts']} hosts: did not converge")
            continue
        ceiling = (CONVERGENCE_ROUNDS_FACTOR * math.log2(row["n_hosts"])
                   + CONVERGENCE_ROUNDS_SLACK)
        if row["rounds"] > ceiling:
            failures.append(
                f"{row['n_hosts']} hosts: {row['rounds']} rounds "
                f"> {ceiling:.1f} (c*log N)")
    if len(conv) >= 2:
        lo, hi = conv[0], conv[-1]
        ratio = (hi["bytes_per_node_round"]
                 / max(lo["bytes_per_node_round"], 1e-9))
        if ratio > BYTES_FLAT_RATIO:
            failures.append(
                f"bytes/node/round grew {ratio:.2f}x from "
                f"{lo['n_hosts']} to {hi['n_hosts']} hosts "
                f"(ceiling {BYTES_FLAT_RATIO}x)")
    state = [row for row in report["cells"] if row["cell"] == "state-size"]
    if len(state) >= 2:
        lo, hi = state[0], state[-1]
        full_growth = (hi["full_bytes_per_node_round"]
                       / max(lo["full_bytes_per_node_round"], 1e-9))
        digest_growth = (hi["digest_bytes_per_node_round"]
                         / max(lo["digest_bytes_per_node_round"], 1e-9))
        if full_growth < FULL_STATE_GROWTH_FLOOR:
            failures.append(
                f"full-state bytes grew only {full_growth:.2f}x over the "
                f"state sweep (expected O(state), >= "
                f"{FULL_STATE_GROWTH_FLOOR}x)")
        if digest_growth > DIGEST_STATE_RATIO:
            failures.append(
                f"digest bytes grew {digest_growth:.2f}x over the state "
                f"sweep (ceiling {DIGEST_STATE_RATIO}x)")
    det = [row for row in report["cells"] if row["cell"] == "determinism"]
    for row in det:
        if not row["identical"]:
            failures.append("same-seed runs produced different exports")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small pools only (64/256); skip 1024")
    parser.add_argument("--full", action="store_true",
                        help="add the 4096-host convergence cell")
    parser.add_argument("--check", action="store_true",
                        help="assert acceptance floors after measuring")
    parser.add_argument("--out", type=pathlib.Path, default=GOSSIP_JSON)
    args = parser.parse_args(argv)

    sizes = [64, 256] if args.quick else [64, 256, 1024]
    if args.full:
        sizes.append(4096)
    cells: list[dict] = []
    for n in sizes:
        row = _convergence_cell(n)
        cells.append(row)
        print(f"convergence {n:>5} hosts: rounds={row['rounds']} "
              f"bytes/node/round={row['bytes_per_node_round']} "
              f"events/s={row['events_per_s']:,} wall={row['wall_s']}s")
    state_pool = 64
    for n_records in ([32, 128] if args.quick else [32, 128, 512]):
        row = _state_size_cell(state_pool, n_records)
        cells.append(row)
        print(f"state-size {n_records:>4} records: "
              f"digest={row['digest_bytes_per_node_round']} "
              f"full={row['full_bytes_per_node_round']} bytes/node/round")
    det = _determinism_cell()
    cells.append(det)
    print(f"determinism: identical={det['identical']} "
          f"({det['export_bytes']} export bytes)")

    report = {
        "bench": "gossip-pool-scale",
        "floors": {
            "convergence_rounds": f"<= {CONVERGENCE_ROUNDS_FACTOR}*log2(N)"
                                  f" + {CONVERGENCE_ROUNDS_SLACK}",
            "bytes_flat_ratio": BYTES_FLAT_RATIO,
            "full_state_growth_floor": FULL_STATE_GROWTH_FLOOR,
            "digest_state_ratio": DIGEST_STATE_RATIO,
        },
        "cells": cells,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        failures = _check(report)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print("all gossip floors hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
