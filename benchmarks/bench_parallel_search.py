"""The §2.3 open question, quantified: tightly synchronized parallel
codes under Grid performance fluctuation.

"It is an interesting and open research question whether large-scale,
tightly synchronized application implementations will be able to extract
performance from Computational Grids, particularly if the Grid resource
performance fluctuates as much as it did during SC98."

The §6 parallel tabu search is exactly such a code: one barrier per
move. This bench runs it over three network regimes — quiet LAN, WAN,
and a stormy SC98-style WAN — and measures barrier throughput and
straggler-closed rounds. The barrier's sensitivity to the *slowest*
evaluator is the quantified answer.
"""

from repro.core.simdriver import SimDriver
from repro.ramsey.parallel import ParallelEvaluator, ParallelTabuCoordinator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ComposedLoad, EventSchedule, MeanRevertingLoad, ScheduledEvent
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

ROUNDS = 150
N_EVALS = 4


def run_regime(base_latency: float, jitter: float, storms: bool, seed: int = 8):
    env = Environment()
    streams = RngStreams(seed=seed)
    congestion = None
    if storms:
        # Short, frequent storms: the whole run lasts well under a minute
        # of simulated time at WAN latencies.
        events = [ScheduledEvent(s, s + 15, factor=0.15, ramp=5)
                  for s in range(10, 7200, 35)]
        congestion = ComposedLoad(
            MeanRevertingLoad(mean=0.85, sigma=0.003), EventSchedule(events))
    net = Network(env, streams, base_latency=base_latency, jitter=jitter,
                  congestion_model=congestion, congestion_period=2.0)
    net.start()

    contacts = []
    for i in range(N_EVALS):
        h = Host(env, HostSpec(name=f"eval{i}", site=f"site{i}"), streams)
        net.add_host(h)
        SimDriver(env, net, h, "eval", ParallelEvaluator(f"eval{i}"),
                  streams).start()
        contacts.append(f"eval{i}/eval")
    ch = Host(env, HostSpec(name="coord", site="home"), streams)
    net.add_host(ch)
    # K_6 / n=3 cannot terminate early, so every regime does ROUNDS barriers.
    coord = ParallelTabuCoordinator("coord", 6, 3, contacts,
                                    candidates_per_eval=8, seed=seed,
                                    tenure=4,  # K_6 has only 15 edges
                                    max_rounds=ROUNDS, default_timeout=10.0)
    SimDriver(env, net, ch, "coord", coord, streams).start()
    env.run(until=4 * 3600.0)
    assert coord.rounds_closed == ROUNDS
    assert coord.finished_at is not None
    return {
        "sim_seconds": coord.finished_at,
        "rounds_per_sec": ROUNDS / max(coord.finished_at, 1e-9),
        "stragglers": coord.straggler_rounds,
        "moves": coord.moves_applied,
    }


def test_synchronized_parallel_code_vs_fluctuation(benchmark, artifact_dir):
    lan = run_regime(base_latency=0.002, jitter=0.05, storms=False)
    wan = run_regime(base_latency=0.08, jitter=0.3, storms=False)
    stormy = benchmark.pedantic(
        lambda: run_regime(base_latency=0.08, jitter=0.3, storms=True),
        rounds=1, iterations=1)

    lines = [
        "Tightly synchronized parallel search under fluctuation (§2.3/§6)",
        f"  ({N_EVALS} evaluators, {ROUNDS} barrier rounds, K_6/n=3)",
        "",
        "  regime      | rounds/s | straggler rounds | moves",
    ]
    for name, r in (("quiet LAN", lan), ("WAN", wan), ("stormy WAN", stormy)):
        lines.append(f"  {name:>11} | {r['rounds_per_sec']:8.2f} | "
                     f"{r['stragglers']:>16} | {r['moves']:>5}")
    lines += [
        "",
        "Each barrier waits for the slowest evaluator: WAN latency alone",
        "cuts round throughput by an order of magnitude, and congestion",
        "storms force time-out-closed (straggler) rounds — the price the",
        "paper anticipated for tightly coupled Grid codes.",
    ]
    save_artifact(artifact_dir, "parallel_sync_cost.txt", "\n".join(lines))

    assert lan["rounds_per_sec"] > 5 * wan["rounds_per_sec"]
    assert stormy["rounds_per_sec"] <= wan["rounds_per_sec"] * 1.05
    # Despite everything, the search keeps making moves in every regime.
    assert min(r["moves"] for r in (lan, wan, stormy)) > ROUNDS * 0.5
