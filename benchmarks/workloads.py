"""Perf-harness workloads: the repository's hot paths, as callables.

Each function performs one measurable unit of work and returns the number
of work items completed; callers (the pytest benches, ``perf_snapshot.py``
and the CI perf smoke) time the call and report ``items / elapsed``.

All ``repro`` imports happen inside the functions so that
``perf_snapshot.py --before-tree`` can re-point ``sys.path`` at another
checkout (e.g. the seed commit in a git worktree) and measure both trees
interleaved in one process — the only reliable way to compare throughput
on a noisy machine.
"""

from __future__ import annotations

N_TIMEOUT_EVENTS = 200_000
N_ROUNDTRIPS = 5_000
N_DRIVER_ROUNDTRIPS = 3_000
N_TABU_STEPS = 200
N_RECOUNTS = 20
N_INGEST_RECORDS = 200_000
N_CODEC_MESSAGES = 50_000


def run_timeout_storm(n_events: int = N_TIMEOUT_EVENTS) -> int:
    """Bare timer events through the DES engine (20 free-running tickers)."""
    from repro.simgrid.engine import Environment

    env = Environment()

    def ticker(env, period):
        while True:
            yield env.timeout(period)

    for i in range(20):
        env.process(ticker(env, 1.0 + i * 0.01))
    env.run(until=n_events / 20)
    return n_events


def run_windowed_storm(n_events: int = N_TIMEOUT_EVENTS,
                       window: float = 50.0) -> int:
    """The timer storm through ``run_windowed`` — the parallel-DES
    synchronization skeleton: lookahead-sized windows with a barrier
    call at every edge. Measures what the windowing machinery costs on
    top of a plain run (ordering is byte-identical by contract).

    On a tree that predates ``run_windowed`` (perf_snapshot
    ``--before-tree``) this degrades to the plain run — the comparison
    is then exactly the windowing overhead.
    """
    from repro.simgrid.engine import Environment

    env = Environment()

    def ticker(env, period):
        while True:
            yield env.timeout(period)

    for i in range(20):
        env.process(ticker(env, 1.0 + i * 0.01))
    until = n_events / 20
    barriers = [0]

    def barrier(edge):
        barriers[0] += 1

    if hasattr(env, "run_windowed"):
        env.run_windowed(until=until, window=window, barrier=barrier)
        assert barriers[0] >= until / window
    else:  # pragma: no cover - only under --before-tree
        env.run(until=until)
    return n_events


def run_message_pingpong(n: int = N_ROUNDTRIPS) -> int:
    """Full request/response cycles through network, endpoint and codec."""
    from repro.core.linguafranca.endpoint import SimEndpoint
    from repro.core.linguafranca.messages import Message
    from repro.simgrid.engine import Environment
    from repro.simgrid.host import Host, HostSpec
    from repro.simgrid.network import Address, Network
    from repro.simgrid.rand import RngStreams

    env = Environment()
    streams = RngStreams(seed=1)
    net = Network(env, streams, jitter=0.0)
    for name in ("a", "b"):
        net.add_host(Host(env, HostSpec(name=name), streams))
    server = SimEndpoint(env, net, Address("b", "svc"))
    client = SimEndpoint(env, net, Address("a", "cli"))

    def server_proc(env):
        while True:
            msg = yield from server.recv(None)
            server.send(msg.sender, msg.reply("PONG", sender=server.contact))

    def client_proc(env):
        done = 0
        for i in range(n):
            reply, _ = yield from client.request(
                "b/svc", Message(mtype="PING", sender="", body={"i": i}),
                timeout=10)
            if reply is not None:
                done += 1
        return done

    env.process(server_proc(env))
    proc = env.process(client_proc(env))
    env.run(until=proc)
    assert proc.value == n
    return n


def run_driver_pingpong(n: int = N_DRIVER_ROUNDTRIPS, trace: bool = False) -> int:
    """Request/response cycles through the component driver — the path
    the observability layer instruments (telemetry counters, optional
    span begin/finish per send, recv and timer)."""
    from repro.core.component import Component, Send
    from repro.core.linguafranca.messages import Message
    from repro.core.simdriver import SimDriver
    from repro.core.telemetry import Telemetry
    from repro.simgrid.engine import Environment
    from repro.simgrid.host import Host, HostSpec
    from repro.simgrid.network import Network
    from repro.simgrid.rand import RngStreams

    class Ping(Component):
        def __init__(self):
            super().__init__("ping")
            self.left = n

        def on_start(self, now):
            return [Send("b/pong", Message(mtype="PING", sender=self.contact,
                                           body={}))]

        def on_message(self, message, now):
            self.left -= 1
            if self.left <= 0:
                return []
            return [Send("b/pong", Message(mtype="PING", sender=self.contact,
                                           body={}))]

    class Pong(Component):
        def on_message(self, message, now):
            return [Send(message.sender,
                         message.reply("PONG", sender=self.contact))]

    env = Environment()
    streams = RngStreams(seed=1)
    net = Network(env, streams, jitter=0.0)
    hosts = {name: Host(env, HostSpec(name=name), streams)
             for name in ("a", "b")}
    for h in hosts.values():
        net.add_host(h)
    telemetry = Telemetry(trace=trace)
    net.attach_telemetry(telemetry)
    ping = Ping()
    SimDriver(env, net, hosts["b"], "pong", Pong("pong"), streams,
              telemetry=telemetry).start()
    SimDriver(env, net, hosts["a"], "cli", ping, streams,
              telemetry=telemetry).start()
    env.run()
    assert ping.left == 0
    return n


def run_tabu_search(steps: int = N_TABU_STEPS) -> int:
    """Tabu-search moves on the K_43 R(5,5) problem (§3 heuristics)."""
    import numpy as np

    from repro.ramsey.graphs import OpCounter
    from repro.ramsey.heuristics import TabuSearch

    search = TabuSearch(43, 5, np.random.default_rng(0),
                        ops=OpCounter(), candidates=8)
    search.run(max_steps=steps, target=-1)
    return steps


def run_clique_recount(reps: int = N_RECOUNTS) -> int:
    """Full monochromatic-K_5 recounts of a random K_43 coloring."""
    import numpy as np

    from repro.ramsey.graphs import Coloring, OpCounter, count_mono_cliques

    coloring = Coloring.random(43, np.random.default_rng(7))
    ops = OpCounter()
    for _ in range(reps):
        count_mono_cliques(coloring, 5, ops)
    return reps


def run_metrics_ingest(n: int = N_INGEST_RECORDS) -> int:
    """Perf-record ingestion into TimeBuckets (batched when available)."""
    import numpy as np

    from repro.experiments.metrics import TimeBuckets

    rng = np.random.default_rng(3)
    ts = rng.uniform(0.0, 1000.0, n)
    values = rng.uniform(0.0, 10.0, n)
    buckets = TimeBuckets(0.0, 10.0, 100)
    add_many = getattr(buckets, "add_many", None)
    if add_many is not None:
        add_many(ts, values)
    else:  # pre-batching trees: one scalar add per record
        add = buckets.add
        for t, v in zip(ts, values):
            add(t, v)
    return n


def run_codec_roundtrip(n: int = N_CODEC_MESSAGES) -> int:
    """Encode+decode of a periodically re-sent (identical) control message."""
    from repro.core.linguafranca.messages import Message

    for _ in range(n):
        msg = Message(mtype="GOS_HEARTBEAT", sender="h1/gossip",
                      body={"seq": 42, "load": 0.5})
        Message.decode(msg.encode())
    return n


def run_codec_decode(n: int = N_CODEC_MESSAGES) -> int:
    """Decode-only of a pre-encoded stream — isolates the zero-copy
    deframe+parse path (single-packet and TCP-style stream decoder)."""
    from repro.core.linguafranca.messages import Message
    from repro.core.linguafranca.packets import PacketDecoder

    wire = Message(mtype="SCHED_POLL", sender="h1/sched",
                   body={"queue": "ramsey", "depth": 17}).encode()
    half = n // 2
    for _ in range(half):
        Message.decode(wire)
    decoder = PacketDecoder()
    next_record = getattr(decoder, "next_record", None)
    if next_record is not None:
        for _ in range(n - half):
            decoder.feed(wire)
            next_record(Message.from_parts)
    else:  # pre-zero-copy trees: copy out, then parse
        for _ in range(n - half):
            decoder.feed(wire)
            mtype, payload = decoder.next_packet()
            Message.from_parts(mtype, payload)
    return n
