"""§5.6 numbers: interpreted vs JIT-compiled Java applet performance.

Paper (300 MHz Pentium II): 111,616 iops interpreted; 12,109,720 iops
JIT-compiled — a ~108.5x gap that made every browser worth harvesting
anyway. The host-class table carries those exact values; this bench
verifies the ratio survives end-to-end (through hosts, clients, and the
delivered-ops accounting) and additionally measures the *real* search
kernel's throughput on this machine for calibration context.
"""

import numpy as np
import pytest

from repro.infra.speeds import JAVA_INTERP_IOPS, JAVA_JIT_IOPS, speed_for
from repro.ramsey.graphs import OpCounter
from repro.ramsey.heuristics import TabuSearch

from conftest import save_artifact


def test_java_interp_vs_jit(benchmark, artifact_dir):
    # Real kernel throughput on this machine (context, not a claim).
    ops = OpCounter()
    search = TabuSearch(17, 4, np.random.default_rng(0), ops=ops)

    def run_slice():
        search.run(max_steps=200, target=-1)
        return ops.ops

    benchmark.pedantic(run_slice, rounds=3, iterations=1)
    measured_ops = ops.ops

    ratio = JAVA_JIT_IOPS / JAVA_INTERP_IOPS
    lines = [
        "Java applet performance (paper §5.6, 300 MHz Pentium II):",
        f"  interpreted : {JAVA_INTERP_IOPS:>12,.0f} iops (paper: 111,616)",
        f"  JIT-compiled: {JAVA_JIT_IOPS:>12,.0f} iops (paper: 12,109,720)",
        f"  ratio       : {ratio:.1f}x",
        "",
        f"real tabu kernel on this machine: {measured_ops:,} metered integer",
        "ops across the benchmark slices (K_17, n=4).",
    ]
    save_artifact(artifact_dir, "java_interp_jit.txt", "\n".join(lines))

    assert JAVA_INTERP_IOPS == 111_616.0
    assert JAVA_JIT_IOPS == 12_109_720.0
    assert ratio == pytest.approx(108.5, rel=0.01)
    # The host classes expose exactly these values.
    assert speed_for("java_interp") == JAVA_INTERP_IOPS
    assert speed_for("java_jit") == JAVA_JIT_IOPS
    # Even the JIT browser is slower than the big iron, as in Fig. 4a.
    assert JAVA_JIT_IOPS < speed_for("unix_mpp_node")
    assert measured_ops > 0
