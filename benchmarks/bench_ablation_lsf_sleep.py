"""Ablation A5: the NT/LSF startup-sleep trade-off (§5.5).

Paper: workers slept a randomized interval at startup so a burst of new
workers would not stampede a scheduler; LSF interpreted the idle sleep as
death and reclaimed the processor. "We reduced the sleep time duration,
sacrificing our goal of reduced scheduler load, in order to effectively
use the Supercluster processors."

This bench runs the NT adapter with the pre-fix (long sleeps) and
post-fix (short sleeps) configurations and measures both sides of the
trade: LSF kills + deployment latency versus the instantaneous burst of
client hellos hitting the scheduler.
"""

from repro.core.services.logging import LoggingServer
from repro.core.services.scheduler import QueueWorkSource, SchedulerServer
from repro.core.simdriver import SimDriver
from repro.infra.nt import NTSupercluster
from repro.ramsey.client import ModelEngine, RamseyClient
from repro.ramsey.tasks import unit_generator
from repro.simgrid.engine import Environment
from repro.simgrid.host import Host, HostSpec
from repro.simgrid.load import ConstantLoad
from repro.simgrid.network import Network
from repro.simgrid.rand import RngStreams

from conftest import save_artifact

N_NODES = 48
KILL_THRESHOLD = 45.0


def run_cluster(startup_sleep_max: float, seed: int = 17):
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1)
    svc = Host(env, HostSpec(name="svc", speed=1e7,
                             load_model=ConstantLoad(1.0)), streams)
    net.add_host(svc)
    work = QueueWorkSource(generator=unit_generator(43, 5, ops_budget=1e12))
    sched = SchedulerServer("sched", work, report_period=60)
    hello_times = []
    original = sched.on_message

    def instrumented(message, now):
        if message.mtype == "SCH_HELLO":
            hello_times.append(now)
        return original(message, now)

    sched.on_message = instrumented
    SimDriver(env, net, svc, "sched", sched, streams).start()
    logsrv = LoggingServer("log")
    SimDriver(env, net, svc, "log", logsrv, streams).start()

    def factory(host, infra, idx):
        return RamseyClient(f"nt-{idx}", schedulers=["svc/sched"],
                            engine=ModelEngine(), infra=infra,
                            loggers=["svc/log"], work_period=60,
                            report_period=60, seed=idx)

    nt = NTSupercluster(env, net, streams, factory, clusters={"ncsa": N_NODES},
                        startup_sleep_max=startup_sleep_max,
                        lsf_kill_threshold=KILL_THRESHOLD, mtbf=1e12)
    nt.deploy()

    # Time until every node runs a worker.
    full_at = [None]

    def watcher():
        while nt.active_host_count() < N_NODES:
            yield env.timeout(5)
        full_at[0] = env.now

    env.process(watcher())
    env.run(until=3600)

    burst = max(
        sum(1 for t in hello_times if w <= t < w + 10)
        for w in range(0, 3600, 10)
    ) if hello_times else 0
    return nt.lsf_kills, full_at[0], burst


def test_lsf_sleep_tradeoff(benchmark, artifact_dir):
    long_kills, long_full, long_burst = run_cluster(startup_sleep_max=180.0)
    short_kills, short_full, short_burst = benchmark.pedantic(
        lambda: run_cluster(startup_sleep_max=20.0), rounds=1, iterations=1)

    lines = [
        "Ablation A5: NT/LSF startup sleep (kill threshold "
        f"{KILL_THRESHOLD:.0f}s, {N_NODES} nodes)",
        f"  long sleeps (U[0,180]s, pre-fix) : {long_kills} LSF kills, "
        f"full deployment at {long_full and f'{long_full:.0f}s'}, "
        f"max {long_burst} hellos/10s",
        f"  short sleeps (U[0,20]s, the fix) : {short_kills} LSF kills, "
        f"full deployment at {short_full and f'{short_full:.0f}s'}, "
        f"max {short_burst} hellos/10s",
        "",
        "The fix trades scheduler-load smoothing (bigger hello burst) for",
        "actually keeping the Supercluster processors, as the paper chose.",
    ]
    save_artifact(artifact_dir, "ablation_a5_lsf_sleep.txt", "\n".join(lines))

    assert long_kills > 0
    assert short_kills == 0
    assert short_full is not None
    assert long_full is None or short_full < long_full
    # The sacrificed goal: short sleeps concentrate scheduler load.
    assert short_burst >= long_burst
